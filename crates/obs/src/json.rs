//! A minimal JSON value type with a stable writer and a strict parser.
//!
//! This exists so `RunReport` can serialize without external dependencies.
//! The writer emits keys in the order given (reports use `BTreeMap`s, so
//! output is deterministic), renders integral numbers without a fractional
//! part, and uses Rust's shortest-round-trip formatting for the rest —
//! `parse(write(v))` reproduces `v` exactly for every value a report
//! produces.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; integral values are written without a decimal point.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved by the writer.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: a number from anything convertible to `f64`.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integral number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's fields, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document; trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    assert!(n.is_finite(), "JSON cannot represent {n}");
    if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the error.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        // self.pos is at the 'u'.
        self.pos += 1;
        let first = self.hex4()?;
        let cp = if (0xd800..0xdc00).contains(&first) {
            // Surrogate pair.
            if !self.eat_keyword("\\u") {
                return Err(self.err("unpaired surrogate"));
            }
            let second = self.hex4()?;
            if !(0xdc00..0xe000).contains(&second) {
                return Err(self.err("invalid low surrogate"));
            }
            0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00)
        } else {
            first
        };
        char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_string_compact()).unwrap(), v);
        }
    }

    #[test]
    fn round_trips_nested() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::Num(1.0), Json::Null])),
            ("s".into(), Json::str("line\n\"quoted\" \\ tab\t")),
            ("f".into(), Json::Num(0.125)),
            ("big".into(), Json::Num(1e18)),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn parses_unicode_escapes() {
        let v = Json::parse("\"\\u00e9 \\ud83e\\udd80\"").unwrap();
        assert_eq!(v, Json::str("é 🦀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn integral_numbers_have_no_decimal_point() {
        assert_eq!(Json::Num(42.0).to_string_compact(), "42");
        assert_eq!(Json::Num(2.5).to_string_compact(), "2.5");
    }
}
