//! Event-level tracing: a bounded ring buffer of begin/end/instant events
//! with monotonic timestamps, trace/span IDs and parent links, plus an
//! exporter to Chrome trace-event JSON (loadable in Perfetto or
//! `chrome://tracing`).
//!
//! The log is **off by default and free when off**: a disabled
//! [`TraceLog`] is a `None` and every record call is a single branch, so
//! the deterministic pipeline is bit-identical with tracing disabled.
//! When enabled (explicitly or via the `OHA_TRACE` env knob) events go
//! into a fixed-capacity ring that drops its *oldest* events on overflow
//! and counts the drops — a long-lived daemon can keep tracing forever in
//! bounded memory and still export the most recent window.
//!
//! ID scheme: `trace_id` groups every event of one logical request (a
//! pipeline run, an `analyze` frame); `span_id` is unique per begin/end
//! pair; `parent` is the enclosing span's ID (0 = root). `tid` is a
//! per-registry virtual track so concurrent workers render as separate
//! rows in the viewer, regardless of OS thread reuse.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Json;

/// Environment variable enabling tracing: unset, empty or `0` means off;
/// a number greater than one is used as the ring capacity; anything else
/// enables the default capacity.
pub const TRACE_ENV: &str = "OHA_TRACE";

/// Default ring capacity (events, not bytes).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// What a trace event marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A span opened (`ph: "B"`).
    Begin,
    /// A span closed (`ph: "E"`).
    End,
    /// A point event (`ph: "i"`).
    Instant,
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the log's epoch.
    pub ts_ns: u64,
    /// Begin / end / instant.
    pub kind: TraceEventKind,
    /// Event name — span paths use the same `/`-joined form as
    /// [`MetricsRegistry`](crate::MetricsRegistry) span stats.
    pub name: String,
    /// Groups all events of one logical request; 0 = untraced context.
    pub trace_id: u64,
    /// Unique per begin/end pair (0 for instants without a span).
    pub span_id: u64,
    /// Enclosing span's ID; 0 = root.
    pub parent: u64,
    /// Virtual track for the viewer (one per registry/worker).
    pub tid: u64,
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

#[derive(Debug)]
struct Shared {
    epoch: Instant,
    capacity: usize,
    ring: Mutex<Ring>,
    next_id: AtomicU64,
    next_tid: AtomicU64,
}

/// A clonable handle to a shared trace ring. The default handle is
/// disabled; all record calls are no-ops costing one branch.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    shared: Option<Arc<Shared>>,
}

impl TraceLog {
    /// A disabled log (records nothing).
    pub fn disabled() -> Self {
        TraceLog { shared: None }
    }

    /// An enabled log holding at most `capacity` events (oldest dropped
    /// first; a zero capacity is bumped to 1).
    pub fn enabled(capacity: usize) -> Self {
        TraceLog {
            shared: Some(Arc::new(Shared {
                epoch: Instant::now(),
                capacity: capacity.max(1),
                ring: Mutex::new(Ring {
                    events: VecDeque::new(),
                    dropped: 0,
                }),
                next_id: AtomicU64::new(1),
                next_tid: AtomicU64::new(1),
            })),
        }
    }

    /// Builds a log from the [`TRACE_ENV`] knob: disabled when unset,
    /// empty or `"0"`; ring capacity N when set to a number N > 1;
    /// default capacity otherwise (e.g. `OHA_TRACE=1`).
    pub fn from_env() -> Self {
        match std::env::var(TRACE_ENV) {
            Err(_) => TraceLog::disabled(),
            Ok(v) => {
                let v = v.trim();
                if v.is_empty() || v == "0" {
                    TraceLog::disabled()
                } else {
                    match v.parse::<usize>() {
                        Ok(n) if n > 1 => TraceLog::enabled(n),
                        _ => TraceLog::enabled(DEFAULT_TRACE_CAPACITY),
                    }
                }
            }
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Allocates a fresh trace ID (for one logical request). Returns 0
    /// when disabled.
    pub fn next_trace_id(&self) -> u64 {
        match &self.shared {
            Some(s) => s.next_id.fetch_add(1, Ordering::Relaxed),
            None => 0,
        }
    }

    /// Allocates a fresh virtual track ID. Returns 0 when disabled.
    pub fn alloc_tid(&self) -> u64 {
        match &self.shared {
            Some(s) => s.next_tid.fetch_add(1, Ordering::Relaxed),
            None => 0,
        }
    }

    fn push(&self, event: TraceEvent) {
        if let Some(s) = &self.shared {
            let mut ring = s.ring.lock().expect("trace ring poisoned");
            if ring.events.len() >= s.capacity {
                ring.events.pop_front();
                ring.dropped += 1;
            }
            ring.events.push_back(event);
        }
    }

    fn now_ns(&self) -> u64 {
        match &self.shared {
            Some(s) => u64::try_from(s.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
            None => 0,
        }
    }

    /// Records a span open and returns its fresh span ID (0 when
    /// disabled).
    pub fn begin(&self, name: &str, trace_id: u64, parent: u64, tid: u64) -> u64 {
        match &self.shared {
            None => 0,
            Some(s) => {
                let span_id = s.next_id.fetch_add(1, Ordering::Relaxed);
                self.push(TraceEvent {
                    ts_ns: self.now_ns(),
                    kind: TraceEventKind::Begin,
                    name: name.to_string(),
                    trace_id,
                    span_id,
                    parent,
                    tid,
                });
                span_id
            }
        }
    }

    /// Records the close of span `span_id` (pass the name and links from
    /// the matching [`begin`](TraceLog::begin)).
    pub fn end(&self, name: &str, trace_id: u64, span_id: u64, parent: u64, tid: u64) {
        if self.shared.is_some() {
            self.push(TraceEvent {
                ts_ns: self.now_ns(),
                kind: TraceEventKind::End,
                name: name.to_string(),
                trace_id,
                span_id,
                parent,
                tid,
            });
        }
    }

    /// Records a point event under the current span.
    pub fn instant(&self, name: &str, trace_id: u64, parent: u64, tid: u64) {
        if self.shared.is_some() {
            self.push(TraceEvent {
                ts_ns: self.now_ns(),
                kind: TraceEventKind::Instant,
                name: name.to_string(),
                trace_id,
                span_id: 0,
                parent,
                tid,
            });
        }
    }

    /// A snapshot of the ring, oldest event first (empty when disabled).
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.shared {
            Some(s) => s
                .ring
                .lock()
                .expect("trace ring poisoned")
                .events
                .iter()
                .cloned()
                .collect(),
            None => Vec::new(),
        }
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        match &self.shared {
            Some(s) => s.ring.lock().expect("trace ring poisoned").dropped,
            None => 0,
        }
    }

    /// Exports the ring as a Chrome trace-event JSON document (the
    /// `{"traceEvents": [...]}` object form), loadable in Perfetto or
    /// `chrome://tracing`. Timestamps are microseconds from the log's
    /// epoch; `pid` is fixed at 1 and `tid` is the virtual track. The
    /// trace/span/parent links ride along in each event's `args`.
    pub fn to_chrome_json(&self) -> Json {
        let events = self.events();
        let items = events
            .iter()
            .map(|e| {
                let ph = match e.kind {
                    TraceEventKind::Begin => "B",
                    TraceEventKind::End => "E",
                    TraceEventKind::Instant => "i",
                };
                let mut fields = vec![
                    ("name".to_string(), Json::str(&e.name)),
                    ("ph".to_string(), Json::str(ph)),
                    ("ts".to_string(), Json::Num(e.ts_ns as f64 / 1000.0)),
                    ("pid".to_string(), Json::Num(1.0)),
                    ("tid".to_string(), Json::Num(e.tid as f64)),
                ];
                if e.kind == TraceEventKind::Instant {
                    // Perfetto requires a scope on instant events.
                    fields.push(("s".to_string(), Json::str("t")));
                }
                fields.push((
                    "args".to_string(),
                    Json::Obj(vec![
                        ("trace".to_string(), Json::Num(e.trace_id as f64)),
                        ("span".to_string(), Json::Num(e.span_id as f64)),
                        ("parent".to_string(), Json::Num(e.parent as f64)),
                    ]),
                ));
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            ("traceEvents".to_string(), Json::Arr(items)),
            ("displayTimeUnit".to_string(), Json::str("ms")),
            (
                "otherData".to_string(),
                Json::Obj(vec![
                    ("producer".to_string(), Json::str("oha-trace")),
                    (
                        "dropped_events".to_string(),
                        Json::Num(self.dropped() as f64),
                    ),
                ]),
            ),
        ])
    }

    /// Writes the Chrome trace JSON to `path`.
    pub fn write_chrome_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_chrome_json().to_string_compact())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let log = TraceLog::disabled();
        assert!(!log.is_enabled());
        assert_eq!(log.begin("x", 1, 0, 1), 0);
        log.end("x", 1, 0, 0, 1);
        log.instant("y", 1, 0, 1);
        assert_eq!(log.next_trace_id(), 0);
        assert_eq!(log.alloc_tid(), 0);
        assert!(log.events().is_empty());
    }

    #[test]
    fn begin_end_pair_shares_a_span_id() {
        let log = TraceLog::enabled(16);
        let trace = log.next_trace_id();
        let tid = log.alloc_tid();
        let outer = log.begin("optft", trace, 0, tid);
        let inner = log.begin("optft/profile", trace, outer, tid);
        log.instant("cache-hit", trace, inner, tid);
        log.end("optft/profile", trace, inner, outer, tid);
        log.end("optft", trace, outer, 0, tid);

        let events = log.events();
        assert_eq!(events.len(), 5);
        assert_ne!(outer, inner);
        assert_eq!(events[0].kind, TraceEventKind::Begin);
        assert_eq!(events[1].parent, outer);
        assert_eq!(events[2].kind, TraceEventKind::Instant);
        assert_eq!(events[3].span_id, inner);
        assert_eq!(events[4].kind, TraceEventKind::End);
        assert!(
            events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
            "timestamps are monotone"
        );
        assert!(events.iter().all(|e| e.trace_id == trace));
    }

    #[test]
    fn ring_drops_oldest_on_overflow() {
        let log = TraceLog::enabled(3);
        for i in 0..5 {
            log.instant(&format!("e{i}"), 1, 0, 1);
        }
        let events = log.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "e2", "oldest events evicted first");
        assert_eq!(log.dropped(), 2);
    }

    #[test]
    fn chrome_export_is_valid_json_with_linked_args() {
        let log = TraceLog::enabled(16);
        let trace = log.next_trace_id();
        let tid = log.alloc_tid();
        let span = log.begin("work", trace, 0, tid);
        log.instant("tick", trace, span, tid);
        log.end("work", trace, span, 0, tid);

        let text = log.to_chrome_json().to_string_compact();
        let doc = Json::parse(&text).expect("export must be parseable JSON");
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 3);
        let begin = &events[0];
        assert_eq!(begin.get("ph").and_then(Json::as_str), Some("B"));
        assert_eq!(
            begin
                .get("args")
                .and_then(|a| a.get("span"))
                .and_then(Json::as_u64),
            Some(span)
        );
        let instant = &events[1];
        assert_eq!(instant.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(instant.get("s").and_then(Json::as_str), Some("t"));
        let end = &events[2];
        assert_eq!(end.get("ph").and_then(Json::as_str), Some("E"));
        assert_eq!(
            doc.get("otherData")
                .and_then(|o| o.get("dropped_events"))
                .and_then(Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn env_knob_parses_capacity() {
        // Serialize env access within this test only; other tests don't
        // read TRACE_ENV.
        let prev = std::env::var(TRACE_ENV).ok();
        std::env::remove_var(TRACE_ENV);
        assert!(!TraceLog::from_env().is_enabled());
        std::env::set_var(TRACE_ENV, "0");
        assert!(!TraceLog::from_env().is_enabled());
        std::env::set_var(TRACE_ENV, "1");
        assert!(TraceLog::from_env().is_enabled());
        std::env::set_var(TRACE_ENV, "4096");
        let log = TraceLog::from_env();
        assert!(log.is_enabled());
        for i in 0..5000 {
            log.instant(&format!("e{i}"), 1, 0, 1);
        }
        assert_eq!(log.events().len(), 4096, "numeric value sets capacity");
        match prev {
            Some(v) => std::env::set_var(TRACE_ENV, v),
            None => std::env::remove_var(TRACE_ENV),
        }
    }
}
