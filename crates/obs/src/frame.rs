//! Thread-safe metric ingestion for parallel sections.
//!
//! The [`MetricsRegistry`](crate::MetricsRegistry) is deliberately
//! single-threaded (`Rc`-based handles keep attached counters one add).
//! Parallel sections — the `oha-par` profiling pool, the benchmark
//! workload fan-out — instead record into one of two `Send` sinks and
//! merge into the registry afterwards:
//!
//! - **Sharded**: each worker owns a plain [`MetricsFrame`] (or a whole
//!   worker-local registry snapshot via
//!   [`MetricsRegistry::frame`](crate::MetricsRegistry::frame)) and the
//!   coordinator absorbs the frames *in task input order* with
//!   [`MetricsRegistry::absorb`](crate::MetricsRegistry::absorb). This is
//!   the deterministic path: same inputs, same merged registry, whatever
//!   the thread count.
//! - **Mutex-merged**: workers share one [`SyncFrame`] and the coordinator
//!   absorbs it once at the end. Counter totals stay deterministic
//!   (addition commutes); series element order follows completion order,
//!   so this path suits counters-only instrumentation.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::hist::Histogram;
use crate::registry::SpanStat;

/// A detachable, `Send + Sync` bundle of metric deltas: counters, gauges,
/// series, span statistics and histograms, mergeable into another frame
/// or into a [`MetricsRegistry`](crate::MetricsRegistry).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsFrame {
    pub(crate) counters: BTreeMap<String, u64>,
    pub(crate) gauges: BTreeMap<String, f64>,
    pub(crate) series: BTreeMap<String, Vec<f64>>,
    pub(crate) spans: BTreeMap<String, SpanStat>,
    pub(crate) hists: BTreeMap<String, Histogram>,
}

impl MetricsFrame {
    /// An empty frame.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to counter `name`.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Adds one to counter `name`.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of counter `name` (0 if never written).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Appends `value` to series `name`.
    pub fn push_series(&mut self, name: &str, value: f64) {
        self.series.entry(name.to_string()).or_default().push(value);
    }

    /// Records one completed span entry of `elapsed` under `path`.
    pub fn add_span(&mut self, path: &str, elapsed: Duration) {
        let stat = self.spans.entry(path.to_string()).or_default();
        stat.total += elapsed;
        stat.count += 1;
    }

    /// Records `value` into the histogram `name`.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.hists
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Records a duration (as nanoseconds) into the histogram `name`.
    pub fn observe_duration(&mut self, name: &str, d: Duration) {
        self.hists
            .entry(name.to_string())
            .or_default()
            .record_duration(d);
    }

    /// A copy of the histogram `name`, if present.
    pub fn hist(&self, name: &str) -> Option<Histogram> {
        self.hists.get(name).cloned()
    }

    /// Whether the frame carries no data at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.series.is_empty()
            && self.spans.is_empty()
            && self.hists.is_empty()
    }

    /// Folds `other` into `self`: counters, span stats and histograms
    /// add, series append (`other`'s elements after `self`'s), gauges
    /// last-write-wins.
    pub fn merge(&mut self, other: &MetricsFrame) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, vs) in &other.series {
            self.series.entry(k.clone()).or_default().extend(vs);
        }
        for (k, s) in &other.spans {
            let stat = self.spans.entry(k.clone()).or_default();
            stat.total += s.total;
            stat.count += s.count;
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }
}

/// The mutex-merged ingestion path: a clonable, `Send + Sync` handle to a
/// shared [`MetricsFrame`]. Workers record through cheap locked mutators;
/// the coordinator drains with [`SyncFrame::take`] and absorbs the result
/// into a registry.
#[derive(Clone, Debug, Default)]
pub struct SyncFrame {
    inner: Arc<Mutex<MetricsFrame>>,
}

impl SyncFrame {
    /// An empty shared frame.
    pub fn new() -> Self {
        Self::default()
    }

    fn with<T>(&self, f: impl FnOnce(&mut MetricsFrame) -> T) -> T {
        f(&mut self.inner.lock().expect("metrics frame poisoned"))
    }

    /// Adds `n` to counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        self.with(|fr| fr.add(name, n));
    }

    /// Adds one to counter `name`.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Sets gauge `name`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.with(|fr| fr.set_gauge(name, value));
    }

    /// Appends `value` to series `name`. Element order across threads
    /// follows lock-acquisition order; prefer per-worker frames when
    /// series order must be reproducible.
    pub fn push_series(&self, name: &str, value: f64) {
        self.with(|fr| fr.push_series(name, value));
    }

    /// Records one completed span entry under `path`.
    pub fn add_span(&self, path: &str, elapsed: Duration) {
        self.with(|fr| fr.add_span(path, elapsed));
    }

    /// Records `value` into the histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        self.with(|fr| fr.observe(name, value));
    }

    /// Records a duration (as nanoseconds) into the histogram `name`.
    pub fn observe_duration(&self, name: &str, d: Duration) {
        self.with(|fr| fr.observe_duration(name, d));
    }

    /// Folds a worker-local frame in (one lock per worker instead of one
    /// per event).
    pub fn merge(&self, frame: &MetricsFrame) {
        self.with(|fr| fr.merge(frame));
    }

    /// Drains the accumulated frame, leaving the shared frame empty.
    pub fn take(&self) -> MetricsFrame {
        self.with(std::mem::take)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn frame_mutators_and_merge() {
        let mut a = MetricsFrame::new();
        assert!(a.is_empty());
        a.add("hits", 2);
        a.inc("hits");
        a.set_gauge("g", 1.0);
        a.push_series("s", 1.0);
        a.add_span("p", Duration::from_millis(2));

        let mut b = MetricsFrame::new();
        b.add("hits", 10);
        b.set_gauge("g", 2.0);
        b.push_series("s", 2.0);
        b.add_span("p", Duration::from_millis(3));

        a.merge(&b);
        assert_eq!(a.counter_value("hits"), 13);
        assert_eq!(a.gauges["g"], 2.0);
        assert_eq!(a.series["s"], [1.0, 2.0]);
        assert_eq!(a.spans["p"].count, 2);
        assert_eq!(a.spans["p"].total, Duration::from_millis(5));
    }

    #[test]
    fn histograms_shard_and_absorb() {
        let mut a = MetricsFrame::new();
        a.observe("lat", 10);
        a.observe_duration("lat", Duration::from_nanos(20));
        let mut b = MetricsFrame::new();
        b.observe("lat", 1 << 40);
        a.merge(&b);
        let merged = a.hist("lat").unwrap();
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.max(), 1 << 40);

        let reg = MetricsRegistry::new();
        reg.absorb(&a);
        assert_eq!(reg.hist("lat").unwrap(), merged);
        assert!(!a.is_empty());
    }

    #[test]
    fn registry_frame_absorb_round_trip() {
        let src = MetricsRegistry::new();
        src.add("x", 7);
        src.set_gauge("g", 0.5);
        src.push_series("s", 1.0);
        src.span("work").finish();

        let dst = MetricsRegistry::new();
        dst.add("x", 1);
        dst.absorb(&src.frame());
        assert_eq!(dst.counter_value("x"), 8);
        assert_eq!(dst.gauge_value("g"), Some(0.5));
        assert_eq!(dst.series_values("s"), [1.0]);
        assert_eq!(dst.span_stat("work").unwrap().count, 1);
    }

    #[test]
    fn sharded_absorb_is_order_deterministic() {
        // Two "workers" record frames; absorbing in input order yields the
        // same registry bytes no matter which worker finished first.
        let worker = |id: u64| {
            let mut f = MetricsFrame::new();
            f.add("runs", 1);
            f.push_series("seen", id as f64);
            f
        };
        let reg = MetricsRegistry::new();
        for frame in [worker(0), worker(1), worker(2)] {
            reg.absorb(&frame);
        }
        assert_eq!(reg.counter_value("runs"), 3);
        assert_eq!(reg.series_values("seen"), [0.0, 1.0, 2.0]);
    }

    #[test]
    fn sync_frame_merges_across_threads() {
        let shared = SyncFrame::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let shared = shared.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        shared.inc("events");
                    }
                });
            }
        });
        let frame = shared.take();
        assert_eq!(frame.counter_value("events"), 400);
        assert!(shared.take().is_empty(), "take drains the shared frame");

        let reg = MetricsRegistry::new();
        reg.absorb(&frame);
        assert_eq!(reg.counter_value("events"), 400);
    }
}
