//! Shared workload scaffolding: parameters, input corpora and IR helpers.

use oha_ir::Operand::{Const, Reg as R};
use oha_ir::{
    BinOp, BlockId, CmpOp, FuncId, FunctionBuilder, InstId, Operand, Program, ProgramBuilder, Reg,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Size/corpus knobs shared by every workload generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadParams {
    /// Work-size scale (loop trip counts grow with this).
    pub scale: u32,
    /// Profiling corpus size.
    pub num_profiling: usize,
    /// Testing corpus size.
    pub num_testing: usize,
    /// Base RNG seed for input generation.
    pub seed: u64,
}

impl WorkloadParams {
    /// A configuration small enough for unit tests (sub-second per
    /// benchmark).
    pub fn small() -> Self {
        Self {
            scale: 4,
            num_profiling: 6,
            num_testing: 6,
            seed: 0xbe9c4,
        }
    }

    /// The configuration the figure/table harness uses.
    pub fn benchmark() -> Self {
        Self {
            scale: 220,
            num_profiling: 96,
            num_testing: 12,
            seed: 0xbe9c4,
        }
    }
}

impl Default for WorkloadParams {
    fn default() -> Self {
        Self::small()
    }
}

/// A benchmark: its program plus matched input corpora.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name (paper's spelling).
    pub name: &'static str,
    /// The program under analysis.
    pub program: Program,
    /// Profiling corpus (drives likely-invariant learning).
    pub profiling_inputs: Vec<Vec<i64>>,
    /// Testing corpus (same distribution, fresh seeds).
    pub testing_inputs: Vec<Vec<i64>>,
    /// Slice endpoints (output instructions), for the C suite.
    pub endpoints: Vec<InstId>,
    /// A small out-of-distribution corpus: inputs exercising behaviour the
    /// profiling distribution (almost) never produces. Used by the
    /// rollback-cost experiment; empty when the benchmark has no natural
    /// cold feature.
    pub adversarial_inputs: Vec<Vec<i64>>,
}

impl Workload {
    /// All `output` instructions of `main`, the default slice endpoints.
    pub(crate) fn main_outputs(program: &Program) -> Vec<InstId> {
        let main = program.entry();
        program
            .inst_ids()
            .filter(|&i| {
                program.func_of_inst(i) == main
                    && matches!(program.inst(i).kind, oha_ir::InstKind::Output { .. })
            })
            .collect()
    }
}

/// Generates `n` input vectors from a per-input closure.
pub(crate) fn corpus(
    seed: u64,
    n: usize,
    mut gen: impl FnMut(&mut StdRng) -> Vec<i64>,
) -> Vec<Vec<i64>> {
    (0..n)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64).wrapping_mul(0x9e37));
            gen(&mut rng)
        })
        .collect()
}

/// An open `for i in 0..count` loop; pair with [`end_loop`].
pub(crate) struct Loop {
    pub head: BlockId,
    pub exit: BlockId,
    pub i: Reg,
}

pub(crate) fn begin_loop(f: &mut FunctionBuilder, count: Operand) -> Loop {
    let head = f.block();
    let body = f.block();
    let exit = f.block();
    let i = f.copy(Const(0));
    f.jump(head);
    f.select(head);
    let c = f.cmp(CmpOp::Lt, R(i), count);
    f.branch(R(c), body, exit);
    f.select(body);
    Loop { head, exit, i }
}

pub(crate) fn end_loop(f: &mut FunctionBuilder, l: &Loop) {
    let next = f.bin(BinOp::Add, R(l.i), Const(1));
    f.copy_to(l.i, R(next));
    f.jump(l.head);
    f.select(l.exit);
}

/// Declares and defines a pool of `n` mutually-calling helper functions.
///
/// `helper_i(x)` bottoms out at `x <= 0`, otherwise calls
/// `helper_{(i+2) % n}(x - 9)` and — on a rare input-dependent path —
/// `helper_{(i+3) % n}(x - 11)`. The static call structure is a dense web
/// (every context-sensitive analysis must clone chains through the pool for
/// each entry point), while dynamic recursion stays shallow. This is the
/// context-space inflator behind the Table 2 / Figure 11 benchmarks.
pub(crate) fn helper_pool(pb: &mut ProgramBuilder, prefix: &str, n: usize) -> Vec<FuncId> {
    let ids: Vec<FuncId> = (0..n)
        .map(|i| pb.declare(&format!("{prefix}_{i}"), 1))
        .collect();
    for i in 0..n {
        let mut f = pb.function(&format!("{prefix}_{i}"), 1);
        let x = f.param(0);
        let stop = f.block();
        let go = f.block();
        let pos = f.cmp(CmpOp::Gt, R(x), Const(0));
        f.branch(R(pos), go, stop);
        f.select(stop);
        f.ret(Some(R(x)));
        f.select(go);
        // Clamp the argument so dynamic recursion depth stays below 8
        // levels no matter what callers pass in.
        let x2 = f.bin(BinOp::And, R(x), Const(63));
        let mixed = f.bin(BinOp::Xor, R(x2), Const(i as i64 * 3 + 1));
        let next = f.bin(BinOp::Sub, R(x2), Const(9));
        let a = f.call(ids[(i + 2) % n], vec![R(next)]);
        let acc = f.bin(BinOp::Add, R(mixed), R(a));
        // Rare second branch: x divisible by 13.
        let rem = f.bin(BinOp::Rem, R(x2), Const(13));
        let rare = f.cmp(CmpOp::Eq, R(rem), Const(0));
        let deep = f.block();
        let done = f.block();
        f.branch(R(rare), deep, done);
        f.select(deep);
        let next2 = f.bin(BinOp::Sub, R(x2), Const(11));
        let b = f.call(ids[(i + 3) % n], vec![R(next2)]);
        let acc2 = f.bin(BinOp::Add, R(acc), R(b));
        f.copy_to(acc, R(acc2));
        f.jump(done);
        f.select(done);
        f.ret(Some(R(acc)));
        pb.finish_function(f);
    }
    ids
}

/// Emits a chain of arithmetic "work" ending in a register (compute-bound
/// filler whose length scales analysis-irrelevant cost).
pub(crate) fn compute_chain(f: &mut FunctionBuilder, seedv: Operand, len: u32) -> Reg {
    let mut cur = f.copy(seedv);
    for k in 0..len {
        let op = match k % 4 {
            0 => BinOp::Add,
            1 => BinOp::Mul,
            2 => BinOp::Xor,
            _ => BinOp::Sub,
        };
        cur = f.bin(op, R(cur), Const(i64::from(k) * 7 + 3));
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_ir::ProgramBuilder;
    use rand::Rng;

    #[test]
    fn corpus_is_deterministic_but_varied() {
        let a = corpus(1, 4, |rng| vec![rng.gen_range(0..100)]);
        let b = corpus(1, 4, |rng| vec![rng.gen_range(0..100)]);
        assert_eq!(a, b, "same seed, same corpus");
        let c = corpus(2, 4, |rng| vec![rng.gen_range(0..100)]);
        assert_ne!(a, c, "different seed, different corpus");
        assert!(a.iter().collect::<std::collections::HashSet<_>>().len() > 1);
    }

    #[test]
    fn loop_helper_runs_count_times() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        let n = f.input();
        let acc = f.copy(Const(0));
        let l = begin_loop(&mut f, R(n));
        let next = f.bin(BinOp::Add, R(acc), Const(2));
        f.copy_to(acc, R(next));
        end_loop(&mut f, &l);
        f.output(R(acc));
        f.ret(None);
        let main = pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        let r = oha_interp::Machine::new(&p, oha_interp::MachineConfig::default())
            .run(&[5], &mut oha_interp::NoopTracer);
        assert_eq!(r.output_values(), vec![10]);
    }
}
