//! Synthetic benchmark programs mirroring the paper's evaluation suites.
//!
//! The paper evaluates OptFT on DaCapo/JavaGrande multithreaded benchmarks
//! and OptSlice on common C desktop/server applications. Neither suite can
//! run on this crate's IR, so each benchmark is replaced by a generator
//! that reproduces the *structural property* the paper attributes to it —
//! the property that determines how the analyses behave:
//!
//! **Java suite** ([`java_suite`], race detection):
//!
//! | Benchmark | Structural property modelled |
//! |---|---|
//! | `sor`, `sparse`, `series`, `crypt`, `lufact` | provably race-free: singleton spawns in `main`, per-thread allocations, read-only shared input |
//! | `lusearch`, `luindex`, `pmd`, `raytracer`, `moldyn` | lock-guarded sharing + worker spawns hidden in helpers + cold paths — the invariants (guarding locks, singleton threads, LUC) pay off |
//! | `sunflow`, `montecarlo` | loop-spawned fork-join/barrier phases with unlocked phase data — lockset-style detectors cannot help (paper §6.2) |
//! | `batik` | single helper thread + a large cold error/format region (LUC-dominated) |
//! | `xalan` | compute/output heavy with few shared memory accesses — every detector is already cheap |
//!
//! **C suite** ([`c_suite`], backward slicing):
//!
//! | Benchmark | Structural property modelled |
//! |---|---|
//! | `nginx` | event loop, handler dispatch table, large cold error paths, I/O-wait flavour |
//! | `redis` | command dispatch through function pointers, per-command heap structures |
//! | `perl` | interpreter with one generic value record holding ints *and* pointers *and* function pointers — points-to poison |
//! | `vim` | a large command table with deep helper chains — sound CS analysis explodes, likely-used contexts rescue it |
//! | `sphinx` | staged numeric pipeline |
//! | `go` | input-driven search with a long-tailed path distribution — invariants converge slowly (Figure 7/8) |
//! | `zlib` | small tight compression kernel |
//!
//! Every workload carries matched profiling/testing corpora drawn from the
//! same input distribution (fresh seeds), the way §6.1 builds its corpora.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod c_suite_impl;
mod common;
mod java_suite_impl;

pub use common::{Workload, WorkloadParams};

/// The DaCapo/JavaGrande stand-ins (OptFT's benchmarks).
pub mod java_suite {
    pub use crate::java_suite_impl::{
        all, batik, crypt, lufact, luindex, lusearch, moldyn, montecarlo, pmd, raytracer, series,
        sor, sparse, sunflow, xalan,
    };
}

/// The C application stand-ins (OptSlice's benchmarks).
pub mod c_suite {
    pub use crate::c_suite_impl::{all, go, nginx, perl, redis, sphinx, vim, zlib};
}
