//! The DaCapo/JavaGrande stand-ins (race-detection benchmarks).
//!
//! Four structural templates cover the suite; each benchmark instantiates a
//! template with its own kernel, sharing mix and cold-path behaviour (see
//! the crate docs for the mapping).

use oha_ir::Operand::{Const, Reg as R};
use oha_ir::{BinOp, CmpOp, Program, ProgramBuilder};
use rand::Rng;

use crate::common::{begin_loop, compute_chain, corpus, end_loop, Workload, WorkloadParams};

/// All fourteen benchmarks.
pub fn all(params: &WorkloadParams) -> Vec<Workload> {
    vec![
        lusearch(params),
        pmd(params),
        raytracer(params),
        moldyn(params),
        sunflow(params),
        montecarlo(params),
        batik(params),
        xalan(params),
        luindex(params),
        sor(params),
        sparse(params),
        series(params),
        crypt(params),
        lufact(params),
    ]
}

/// Knobs for the lock-guarded worker-pool template.
struct PoolSpec {
    name: &'static str,
    /// Shared fields updated under the lock per iteration.
    locked_fields: u32,
    /// Read-only shared fields read per iteration.
    readonly_reads: u32,
    /// Per-iteration thread-local scratch stores.
    local_ops: u32,
    /// Length of the per-iteration local compute chain.
    compute: u32,
    /// Indirect rule dispatch through a function-pointer global.
    rule_dispatch: bool,
    /// Spawn directly from `main` (statically provable singletons and
    /// fork-join ordering) or hide the spawns in a helper (only the
    /// likely-singleton-thread invariant recovers the pruning).
    spawn_in_main: bool,
    /// Probability (per mille) that an input triggers the workers' cold
    /// path, whose unlocked writes poison the sound analysis (LUC).
    cold_per_mille: u32,
}

/// Template 1 — worker pool with lock-guarded shared state.
///
/// Two *distinct* worker functions keep their scratch allocations apart for
/// the points-to analysis (thread-local work is provably race-free). Each
/// iteration: read-only index loads, scratch stores, a lock-guarded update
/// of the shared accumulator, optional indirect rule dispatch. A rare
/// input-triggered cold block writes the read-only index *unlocked*: the
/// sound analysis must therefore keep every index load instrumented, while
/// LUC predication prunes both.
fn pool_program(spec: &PoolSpec) -> Program {
    let mut pb = ProgramBuilder::new();
    let index = pb.global("index", spec.readonly_reads + 1);
    let shared = pb.global("shared", spec.locked_fields);
    let lk = pb.global("lk", 1);
    let rules = pb.global("rules", 2);
    let worker_a = pb.declare("worker_a", 1);
    let worker_b = pb.declare("worker_b", 1);
    let rule_a = pb.declare("rule_a", 1);
    let rule_b = pb.declare("rule_b", 1);
    let run_pool = pb.declare("run_pool", 1);

    // main: read config, initialize the index, run the pool, report.
    let mut m = pb.function("main", 0);
    let work = m.input();
    let mode = m.input();
    let ix = m.addr_global(index);
    m.store(R(ix), 0, R(mode)); // the cold-path flag
    for f in 0..spec.readonly_reads {
        let v = m.bin(BinOp::Add, R(work), Const(i64::from(f) * 11));
        m.store(R(ix), f + 1, R(v));
    }
    if spec.rule_dispatch {
        let ra = m.addr_func(rule_a);
        let rb = m.addr_func(rule_b);
        let rg = m.addr_global(rules);
        m.store(R(rg), 0, R(ra));
        m.store(R(rg), 1, R(rb));
    }
    if spec.spawn_in_main {
        let t1 = m.spawn(worker_a, R(work));
        let t2 = m.spawn(worker_b, R(work));
        m.join(R(t1));
        m.join(R(t2));
    } else {
        m.call_void(run_pool, vec![R(work)]);
    }
    let sh = m.addr_global(shared);
    let total = m.load(R(sh), 0);
    m.output(R(total));
    m.ret(None);
    let main = pb.finish_function(m);

    // run_pool: the helper-hidden spawns (each singleton per run, but only
    // profiling can know that).
    let mut rp = pb.function("run_pool", 1);
    let w = rp.param(0);
    let t1 = rp.spawn(worker_a, R(w));
    let t2 = rp.spawn(worker_b, R(w));
    rp.join(R(t1));
    rp.join(R(t2));
    rp.ret(None);
    pb.finish_function(rp);

    // Two structurally identical but distinct worker functions.
    for wname in ["worker_a", "worker_b"] {
        let mut wf = pb.function(wname, 1);
        let iters = wf.param(0);
        let ix = wf.addr_global(index);
        let sh = wf.addr_global(shared);
        let lka = wf.addr_global(lk);
        let scratch = wf.alloc(spec.local_ops.max(1));
        let l = begin_loop(&mut wf, R(iters));
        // Read-only index loads.
        let mut mix = wf.copy(R(l.i));
        for f in 0..spec.readonly_reads {
            let v = wf.load(R(ix), f + 1);
            let nx = wf.bin(BinOp::Add, R(mix), R(v));
            mix = nx;
        }
        // Cold path: unlocked index writes, guarded by the flag.
        let flag = wf.load(R(ix), 0);
        let cold = wf.block();
        let warm = wf.block();
        let is_cold = wf.cmp(CmpOp::Eq, R(flag), Const(13));
        wf.branch(R(is_cold), cold, warm);
        wf.select(cold);
        for f in 0..spec.readonly_reads {
            let poison = wf.bin(BinOp::Xor, R(mix), Const(i64::from(f)));
            wf.store(R(ix), f + 1, R(poison));
        }
        wf.jump(warm);
        wf.select(warm);
        // Thread-local scratch work.
        let local = compute_chain(&mut wf, R(mix), spec.compute);
        for f in 0..spec.local_ops {
            wf.store(R(scratch), f, R(local));
        }
        let back = wf.load(R(scratch), 0);
        // Lock-guarded shared accumulation.
        wf.lock(R(lka));
        for f in 0..spec.locked_fields {
            let v = wf.load(R(sh), f);
            let v1 = wf.bin(BinOp::Add, R(v), R(back));
            wf.store(R(sh), f, R(v1));
        }
        wf.unlock(R(lka));
        if spec.rule_dispatch {
            let rg = wf.addr_global(rules);
            let sel = wf.bin(BinOp::And, R(l.i), Const(1));
            let pick_b = wf.block();
            let do_call = wf.block();
            let fp = wf.load(R(rg), 0);
            wf.branch(R(sel), pick_b, do_call);
            wf.select(pick_b);
            wf.load_to(fp, R(rg), 1);
            wf.jump(do_call);
            wf.select(do_call);
            wf.call_indirect_void(R(fp), vec![R(local)]);
        }
        end_loop(&mut wf, &l);
        wf.ret(None);
        pb.finish_function(wf);
    }

    // The rules: pure compute on their argument.
    for name in ["rule_a", "rule_b"] {
        let mut rf = pb.function(name, 1);
        let arg = rf.param(0);
        let v = compute_chain(&mut rf, R(arg), 3);
        rf.ret(Some(R(v)));
        pb.finish_function(rf);
    }

    pb.finish(main).unwrap()
}

fn pool_workload(spec: PoolSpec, params: &WorkloadParams) -> Workload {
    let program = pool_program(&spec);
    let scale = params.scale;
    let cold = spec.cold_per_mille;
    let gen = move |rng: &mut rand::rngs::StdRng| {
        let work = i64::from(scale) * rng.gen_range(2..6);
        let mode = if rng.gen_range(0..1000) < cold { 13 } else { 0 };
        vec![work, mode]
    };
    let adversarial = corpus(params.seed ^ 0x0dd, 3, move |rng| {
        vec![i64::from(scale) * rng.gen_range(2..6), 13]
    });
    Workload {
        name: spec.name,
        endpoints: Workload::main_outputs(&program),
        profiling_inputs: corpus(params.seed, params.num_profiling, gen),
        adversarial_inputs: adversarial,
        testing_inputs: corpus(params.seed ^ 0xdead, params.num_testing, gen),
        program,
    }
}

/// `lusearch`: text-search worker pool, lock-heavy, small cold region.
pub fn lusearch(params: &WorkloadParams) -> Workload {
    pool_workload(
        PoolSpec {
            name: "lusearch",
            locked_fields: 3,
            readonly_reads: 2,
            local_ops: 2,
            compute: 4,
            rule_dispatch: false,
            spawn_in_main: true,
            cold_per_mille: 0,
        },
        params,
    )
}

/// `pmd`: source-analysis pool with indirect rule dispatch.
pub fn pmd(params: &WorkloadParams) -> Workload {
    pool_workload(
        PoolSpec {
            name: "pmd",
            locked_fields: 2,
            readonly_reads: 1,
            local_ops: 1,
            compute: 6,
            rule_dispatch: true,
            spawn_in_main: false,
            cold_per_mille: 0,
        },
        params,
    )
}

/// `luindex`: indexing pool, more locked state, rare cold path in testing.
pub fn luindex(params: &WorkloadParams) -> Workload {
    pool_workload(
        PoolSpec {
            name: "luindex",
            locked_fields: 4,
            readonly_reads: 1,
            local_ops: 2,
            compute: 3,
            rule_dispatch: false,
            spawn_in_main: false,
            cold_per_mille: 25,
        },
        params,
    )
}

/// `moldyn`: molecular dynamics — bigger locked force accumulation.
pub fn moldyn(params: &WorkloadParams) -> Workload {
    pool_workload(
        PoolSpec {
            name: "moldyn",
            locked_fields: 6,
            readonly_reads: 3,
            local_ops: 3,
            compute: 5,
            rule_dispatch: false,
            spawn_in_main: true,
            cold_per_mille: 0,
        },
        params,
    )
}

/// `raytracer`: scene reads + per-thread framebuffer writes dominated by
/// compute, with a lock-guarded progress counter.
pub fn raytracer(params: &WorkloadParams) -> Workload {
    pool_workload(
        PoolSpec {
            name: "raytracer",
            locked_fields: 1,
            readonly_reads: 4,
            local_ops: 4,
            compute: 8,
            rule_dispatch: false,
            spawn_in_main: true,
            cold_per_mille: 0,
        },
        params,
    )
}

/// Template 2 — loop-spawned fork-join phases with unlocked phase data
/// (the `sunflow`/`montecarlo` shape the lockset detector cannot optimize,
/// §6.2).
fn forkjoin_program(tasks_per_phase: u32, compute: u32) -> Program {
    let mut pb = ProgramBuilder::new();
    let phase_data = pb.global("phase_data", 2);
    let results = pb.global("results", 2);
    let lk = pb.global("lk", 1);
    let task = pb.declare("task", 1);

    let mut m = pb.function("main", 0);
    let phases = m.input();
    let pd = m.addr_global(phase_data);
    let res = m.addr_global(results);
    let lp = begin_loop(&mut m, R(phases));
    // Main writes the phase data unlocked (workers of the previous phase
    // have been joined, but the loop-carried spawn site defeats static
    // MHP).
    let seed = m.bin(BinOp::Mul, R(lp.i), Const(17));
    m.store(R(pd), 0, R(seed));
    m.store(R(pd), 1, R(lp.i));
    // Spawn a small barrier of tasks and join them all.
    let mut handles = Vec::new();
    for _ in 0..tasks_per_phase {
        handles.push(m.spawn(task, R(lp.i)));
    }
    for h in handles {
        m.join(R(h));
    }
    end_loop(&mut m, &lp);
    let total = m.load(R(res), 0);
    m.output(R(total));
    m.ret(None);
    let main = pb.finish_function(m);

    let mut tf = pb.function("task", 1);
    let sc = tf.alloc(2);
    let pd = tf.addr_global(phase_data);
    let res = tf.addr_global(results);
    let lka = tf.addr_global(lk);
    let a = tf.load(R(pd), 0);
    let b = tf.load(R(pd), 1);
    let mix = tf.bin(BinOp::Add, R(a), R(b));
    let v = compute_chain(&mut tf, R(mix), compute);
    tf.store(R(sc), 0, R(v));
    let v2 = tf.load(R(sc), 0);
    tf.lock(R(lka));
    let r = tf.load(R(res), 0);
    let r1 = tf.bin(BinOp::Add, R(r), R(v2));
    tf.store(R(res), 0, R(r1));
    tf.unlock(R(lka));
    tf.ret(None);
    pb.finish_function(tf);

    pb.finish(main).unwrap()
}

fn forkjoin_workload(
    name: &'static str,
    tasks: u32,
    compute: u32,
    params: &WorkloadParams,
) -> Workload {
    let program = forkjoin_program(tasks, compute);
    // Each phase spawns `tasks` threads; keep the total thread count sane.
    let scale = (params.scale / 6).max(2);
    let gen = move |rng: &mut rand::rngs::StdRng| vec![i64::from(scale) * rng.gen_range(1..4)];
    Workload {
        name,
        endpoints: Workload::main_outputs(&program),
        profiling_inputs: corpus(params.seed + 7, params.num_profiling, gen),
        adversarial_inputs: Vec::new(),
        testing_inputs: corpus(params.seed ^ 0xf00d, params.num_testing, gen),
        program,
    }
}

/// `sunflow`: barrier-style rendering phases.
pub fn sunflow(params: &WorkloadParams) -> Workload {
    forkjoin_workload("sunflow", 3, 8, params)
}

/// `montecarlo`: fork-join simulation batches.
pub fn montecarlo(params: &WorkloadParams) -> Workload {
    forkjoin_workload("montecarlo", 2, 5, params)
}

/// `batik`: one helper thread plus a large cold format/error region whose
/// unlocked stores poison the sound analysis (LUC's showcase).
pub fn batik(params: &WorkloadParams) -> Workload {
    let mut pb = ProgramBuilder::new();
    let doc = pb.global("doc", 6);
    let lk = pb.global("lk", 1);
    let rasterize = pb.declare("rasterize", 1);
    let start = pb.declare("start", 1);

    let mut m = pb.function("main", 0);
    let size = m.input();
    let mode = m.input();
    let d = m.addr_global(doc);
    m.store(R(d), 4, R(size));
    // Large cold region: unusual SVG features.
    let cold = m.block();
    let hot = m.block();
    let is_cold = m.cmp(CmpOp::Eq, R(mode), Const(42));
    m.branch(R(is_cold), cold, hot);
    m.select(cold);
    for f in 0..4 {
        let v = compute_chain(&mut m, R(mode), 5);
        m.store(R(d), f, R(v));
        let nb = m.block();
        m.jump(nb);
        m.select(nb);
    }
    m.jump(hot);
    m.select(hot);
    m.call_void(start, vec![R(size)]);
    let l0 = m.load(R(d), 0);
    let l1 = m.load(R(d), 1);
    let s = m.bin(BinOp::Add, R(l0), R(l1));
    m.output(R(s));
    m.ret(None);
    let main = pb.finish_function(m);

    let mut st = pb.function("start", 1);
    let t = st.spawn(rasterize, R(st.param(0)));
    st.join(R(t));
    st.ret(None);
    pb.finish_function(st);

    let mut rf = pb.function("rasterize", 1);
    let n = rf.param(0);
    let d = rf.addr_global(doc);
    let lka = rf.addr_global(lk);
    let l = begin_loop(&mut rf, R(n));
    let v0 = rf.load(R(d), 0);
    let v1 = rf.load(R(d), 1);
    let mix = rf.bin(BinOp::Xor, R(v0), R(v1));
    let px = compute_chain(&mut rf, R(mix), 4);
    rf.lock(R(lka));
    let acc = rf.load(R(d), 5);
    let acc1 = rf.bin(BinOp::Add, R(acc), R(px));
    rf.store(R(d), 5, R(acc1));
    rf.unlock(R(lka));
    end_loop(&mut rf, &l);
    rf.ret(None);
    pb.finish_function(rf);

    let program = pb.finish(main).unwrap();
    let scale = params.scale;
    let gen = move |rng: &mut rand::rngs::StdRng| {
        let mode = if rng.gen_range(0..1000) < 5 { 42 } else { 0 };
        vec![i64::from(scale) * rng.gen_range(2..6), mode]
    };
    let adversarial = corpus(params.seed ^ 0x0dd, 3, move |rng| {
        vec![i64::from(scale) * rng.gen_range(2..6), 42]
    });
    Workload {
        name: "batik",
        endpoints: Workload::main_outputs(&program),
        profiling_inputs: corpus(params.seed + 11, params.num_profiling, gen),
        adversarial_inputs: adversarial,
        testing_inputs: corpus(params.seed ^ 0xabcd, params.num_testing, gen),
        program,
    }
}

/// `xalan`: transform dominated by pure compute and output — every
/// detector variant is already near the baseline.
pub fn xalan(params: &WorkloadParams) -> Workload {
    let mut pb = ProgramBuilder::new();
    let stats = pb.global("stats", 1);
    let lk = pb.global("lk", 1);
    let transform = pb.declare("transform", 1);

    let mut m = pb.function("main", 0);
    let docs = m.input();
    let l = begin_loop(&mut m, R(docs));
    let t = m.spawn(transform, R(l.i));
    m.join(R(t));
    end_loop(&mut m, &l);
    let sa = m.addr_global(stats);
    let v = m.load(R(sa), 0);
    m.output(R(v));
    m.ret(None);
    let main = pb.finish_function(m);

    let mut tf = pb.function("transform", 1);
    let x = tf.param(0);
    let v = compute_chain(&mut tf, R(x), 40);
    let lka = tf.addr_global(lk);
    let sa = tf.addr_global(stats);
    tf.lock(R(lka));
    let s = tf.load(R(sa), 0);
    let s1 = tf.bin(BinOp::Add, R(s), R(v));
    tf.store(R(sa), 0, R(s1));
    tf.unlock(R(lka));
    tf.output(R(v));
    tf.ret(None);
    pb.finish_function(tf);

    let program = pb.finish(main).unwrap();
    // One thread per document; bound the count.
    let scale = (params.scale / 5).max(2);
    let gen = move |rng: &mut rand::rngs::StdRng| vec![i64::from(scale) * rng.gen_range(1..3)];
    Workload {
        name: "xalan",
        endpoints: Workload::main_outputs(&program),
        profiling_inputs: corpus(params.seed + 13, params.num_profiling, gen),
        adversarial_inputs: Vec::new(),
        testing_inputs: corpus(params.seed ^ 0x7777, params.num_testing, gen),
        program,
    }
}

/// Kernels for the provably race-free template.
#[derive(Clone, Copy, Debug)]
enum Kernel {
    /// Stencil sweeps (successive over-relaxation).
    Sor,
    /// Gather/scatter over fixed offsets (sparse matmult).
    Sparse,
    /// Pure term evaluation (Fourier series).
    Series,
    /// Xor/rotate rounds (IDEA encryption).
    Crypt,
    /// Row elimination (LU factorization).
    Lufact,
}

/// Template 3 — the statically race-free five: two singleton spawns in
/// `main` (provably single-instance), *per-thread worker functions* so the
/// points-to analysis keeps the two threads' buffers apart, read-only
/// shared config written before the spawns, per-thread result globals read
/// back after dominating joins.
fn racefree_program(kernel: Kernel) -> Program {
    let mut pb = ProgramBuilder::new();
    let config = pb.global("config", 2);
    let res_a = pb.global("result_a", 1);
    let res_b = pb.global("result_b", 1);
    let worker_a = pb.declare("worker_a", 1);
    let worker_b = pb.declare("worker_b", 1);

    let mut m = pb.function("main", 0);
    let n = m.input();
    let cfg = m.addr_global(config);
    m.store(R(cfg), 0, R(n));
    let twice = m.bin(BinOp::Mul, R(n), Const(2));
    m.store(R(cfg), 1, R(twice));
    let t1 = m.spawn(worker_a, R(n));
    let t2 = m.spawn(worker_b, R(n));
    m.join(R(t1));
    m.join(R(t2));
    let ra = m.addr_global(res_a);
    let rb = m.addr_global(res_b);
    let r1 = m.load(R(ra), 0);
    let r2 = m.load(R(rb), 0);
    let sum = m.bin(BinOp::Add, R(r1), R(r2));
    m.output(R(sum));
    m.ret(None);
    let main = pb.finish_function(m);

    for (wname, res) in [("worker_a", res_a), ("worker_b", res_b)] {
        let mut w = pb.function(wname, 1);
        let iters = w.param(0);
        let buf = w.alloc(6);
        let cfg = w.addr_global(config);
        let shared0 = w.load(R(cfg), 0);
        let l = begin_loop(&mut w, R(iters));
        emit_kernel(&mut w, kernel, buf, shared0, l.i);
        end_loop(&mut w, &l);
        let out = w.load(R(buf), 0);
        let ra = w.addr_global(res);
        w.store(R(ra), 0, R(out));
        w.ret(None);
        pb.finish_function(w);
    }

    pb.finish(main).unwrap()
}

/// Emits one iteration of a race-free kernel body operating on `buf`.
fn emit_kernel(
    w: &mut oha_ir::FunctionBuilder,
    kernel: Kernel,
    buf: oha_ir::Reg,
    shared0: oha_ir::Reg,
    i: oha_ir::Reg,
) {
    match kernel {
        Kernel::Sor => {
            // Stencil: fields 0..4 averaged with neighbours.
            for f in 0..4u32 {
                let a = w.load(R(buf), f);
                let b = w.load(R(buf), f + 1);
                let s = w.bin(BinOp::Add, R(a), R(b));
                let relaxed = w.bin(BinOp::Div, R(s), Const(2));
                w.store(R(buf), f, R(relaxed));
            }
        }
        Kernel::Sparse => {
            // Gather from scattered fields, accumulate into field 0.
            let mut acc = w.load(R(buf), 0);
            for &f in &[2u32, 4, 1, 3] {
                let v = w.load(R(buf), f);
                acc = w.bin(BinOp::Add, R(acc), R(v));
            }
            let scaled = w.bin(BinOp::Mul, R(acc), R(shared0));
            w.store(R(buf), 0, R(scaled));
        }
        Kernel::Series => {
            // Mostly pure computation, one store per term.
            let term = compute_chain(w, R(i), 10);
            let old = w.load(R(buf), 0);
            let s = w.bin(BinOp::Add, R(old), R(term));
            w.store(R(buf), 0, R(s));
        }
        Kernel::Crypt => {
            // Xor/add rounds over two fields.
            let a = w.load(R(buf), 1);
            let k = w.bin(BinOp::Xor, R(a), R(shared0));
            let r1 = w.bin(BinOp::Mul, R(k), Const(2654435761));
            let r2 = w.bin(BinOp::Xor, R(r1), Const(0x5a5a));
            w.store(R(buf), 1, R(r2));
            let old = w.load(R(buf), 0);
            let s = w.bin(BinOp::Add, R(old), R(r2));
            w.store(R(buf), 0, R(s));
        }
        Kernel::Lufact => {
            // Triangular elimination over fields 1..4 with a pivot.
            let pivot = w.load(R(buf), 1);
            for f in 2..5u32 {
                let v = w.load(R(buf), f);
                let scaled = w.bin(BinOp::Mul, R(v), R(pivot));
                let red = w.bin(BinOp::Sub, R(scaled), R(shared0));
                w.store(R(buf), f, R(red));
            }
            let old = w.load(R(buf), 0);
            let s = w.bin(BinOp::Add, R(old), R(pivot));
            w.store(R(buf), 0, R(s));
        }
    }
}

fn racefree_workload(name: &'static str, kernel: Kernel, params: &WorkloadParams) -> Workload {
    let program = racefree_program(kernel);
    let scale = params.scale;
    let gen = move |rng: &mut rand::rngs::StdRng| vec![i64::from(scale) * rng.gen_range(2..6)];
    Workload {
        name,
        endpoints: Workload::main_outputs(&program),
        profiling_inputs: corpus(params.seed + 17, params.num_profiling, gen),
        adversarial_inputs: Vec::new(),
        testing_inputs: corpus(params.seed ^ 0x1234, params.num_testing, gen),
        program,
    }
}

/// `sor`: successive over-relaxation (statically race-free).
pub fn sor(params: &WorkloadParams) -> Workload {
    racefree_workload("sor", Kernel::Sor, params)
}

/// `sparse`: sparse matrix multiply (statically race-free).
pub fn sparse(params: &WorkloadParams) -> Workload {
    racefree_workload("sparse", Kernel::Sparse, params)
}

/// `series`: Fourier series (statically race-free).
pub fn series(params: &WorkloadParams) -> Workload {
    racefree_workload("series", Kernel::Series, params)
}

/// `crypt`: IDEA encryption (statically race-free).
pub fn crypt(params: &WorkloadParams) -> Workload {
    racefree_workload("crypt", Kernel::Crypt, params)
}

/// `lufact`: LU factorization (statically race-free).
pub fn lufact(params: &WorkloadParams) -> Workload {
    racefree_workload("lufact", Kernel::Lufact, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_interp::{Machine, MachineConfig, NoopTracer, Termination};

    #[test]
    fn every_benchmark_builds_and_runs() {
        let params = WorkloadParams::small();
        let suite = all(&params);
        assert_eq!(suite.len(), 14);
        for w in &suite {
            assert!(!w.profiling_inputs.is_empty());
            for input in w.profiling_inputs.iter().chain(&w.testing_inputs) {
                let r =
                    Machine::new(&w.program, MachineConfig::default()).run(input, &mut NoopTracer);
                assert_eq!(
                    r.status,
                    Termination::Exited,
                    "{} diverged on {input:?}",
                    w.name
                );
                assert!(r.steps > 0);
            }
        }
    }

    #[test]
    fn names_are_unique_and_paper_spelled() {
        let params = WorkloadParams::small();
        let names: Vec<&str> = all(&params).iter().map(|w| w.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for expected in [
            "lusearch",
            "pmd",
            "raytracer",
            "moldyn",
            "sunflow",
            "montecarlo",
            "batik",
            "xalan",
            "luindex",
            "sor",
            "sparse",
            "series",
            "crypt",
            "lufact",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn multithreaded_benchmarks_spawn_threads() {
        let params = WorkloadParams::small();
        for w in all(&params) {
            let r = Machine::new(&w.program, MachineConfig::default())
                .run(&w.testing_inputs[0], &mut NoopTracer);
            assert!(r.num_threads >= 2, "{} never spawned", w.name);
        }
    }
}
