//! Prints one workload's program in IR text form, for feeding the
//! analysis daemon through `oha-client --program` (ci.sh's store-smoke
//! stage) or for eyeballing what a suite generator emits.
//!
//! Usage: `print_workload <name> [--benchmark]`
//! Names are the suite names (`lusearch`, `vim`, `zlib`, …); the scale
//! defaults to the unit-test `WorkloadParams::small()`.

use oha_ir::print_program;
use oha_workloads::{c_suite, java_suite, Workload, WorkloadParams};

fn all(params: &WorkloadParams) -> Vec<Workload> {
    java_suite::all(params)
        .into_iter()
        .chain(c_suite::all(params))
        .collect()
}

fn main() {
    let mut name = None;
    let mut benchmark = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--benchmark" => benchmark = true,
            "--small" => benchmark = false,
            "--help" | "-h" => {
                eprintln!("usage: print_workload <name> [--benchmark]");
                return;
            }
            other if name.is_none() && !other.starts_with('-') => name = Some(other.to_string()),
            other => {
                eprintln!("error: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let params = if benchmark {
        WorkloadParams::benchmark()
    } else {
        WorkloadParams::small()
    };
    let workloads = all(&params);
    let Some(name) = name else {
        eprintln!(
            "usage: print_workload <name> [--benchmark]\nnames: {}",
            workloads
                .iter()
                .map(|w| w.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    };
    match workloads.iter().find(|w| w.name == name) {
        Some(w) => print!("{}", print_program(&w.program)),
        None => {
            eprintln!(
                "error: no workload named {name:?}; have: {}",
                workloads
                    .iter()
                    .map(|w| w.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            std::process::exit(2);
        }
    }
}
