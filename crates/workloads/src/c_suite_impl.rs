//! The C application stand-ins (backward-slicing benchmarks).

use oha_ir::Operand::{Const, Reg as R};
use oha_ir::{BinOp, CmpOp, FuncId, ProgramBuilder};
use rand::rngs::StdRng;
use rand::Rng;

use crate::common::{
    begin_loop, compute_chain, corpus, end_loop, helper_pool, Workload, WorkloadParams,
};

/// All seven benchmarks.
pub fn all(params: &WorkloadParams) -> Vec<Workload> {
    vec![
        nginx(params),
        redis(params),
        perl(params),
        vim(params),
        sphinx(params),
        go(params),
        zlib(params),
    ]
}

/// Builds a command-stream input: `[n, cmd_1, arg_1, …, cmd_n, arg_n]`.
/// Command ids are drawn from a long-tailed distribution over `ncmds`
/// commands with the given tail weight (larger = more rare commands).
fn command_stream(rng: &mut StdRng, n: i64, ncmds: i64, tail_per_cent: u32) -> Vec<i64> {
    let mut v = vec![n];
    for _ in 0..n {
        let cmd = if rng.gen_range(0..100) < tail_per_cent {
            rng.gen_range(0..ncmds) // uniform tail
        } else {
            rng.gen_range(0..2.min(ncmds)) // two hot commands
        };
        v.push(cmd);
        v.push(rng.gen_range(0..100));
    }
    v
}

/// `nginx`: an event loop dispatching requests through a handler table,
/// with a large cold error path and an "I/O wait" phase whose values never
/// reach the response (so a precise slicer can skip tracing it).
pub fn nginx(params: &WorkloadParams) -> Workload {
    const NMODULES: usize = 12;
    let mut pb = ProgramBuilder::new();
    let conf = pb.global("conf", 4);
    let handlers = pb.global("handlers", 3 + NMODULES as u32);
    let response = pb.global("response", 2);
    let h_static = pb.declare("handle_static", 1);
    let h_dynamic = pb.declare("handle_dynamic", 1);
    let h_error = pb.declare("handle_error", 1);
    let io_wait = pb.declare("io_wait", 1);
    // Shared buffer-pool wrapper (the Figure 3 pattern).
    let pool_alloc = pb.declare("buf_alloc", 1);
    let modules: Vec<FuncId> = (0..NMODULES)
        .map(|i| pb.declare(&format!("module_{i}"), 1))
        .collect();

    let mut m = pb.function("main", 0);
    let hs = m.addr_global(handlers);
    let f0 = m.addr_func(h_static);
    let f1 = m.addr_func(h_dynamic);
    let f2 = m.addr_func(h_error);
    m.store(R(hs), 0, R(f0));
    m.store(R(hs), 1, R(f1));
    m.store(R(hs), 2, R(f2));
    for (i, &md) in modules.iter().enumerate() {
        let fp = m.addr_func(md);
        m.store(R(hs), 3 + i as u32, R(fp));
    }
    let cf = m.addr_global(conf);
    m.store(R(cf), 0, Const(8080));
    let mode = m.input();
    let n = m.input();
    let l = begin_loop(&mut m, R(n));
    let cmd = m.input();
    let arg = m.input();
    let iostat = m.call(io_wait, vec![R(arg)]);
    let resp0 = m.addr_global(response);
    m.store(R(resp0), 1, R(iostat));
    // Select the handler: 0/1 hot, anything >= 2 is the error path.
    let pick1 = m.block();
    let pick2 = m.block();
    let dispatch = m.block();
    let fp = m.load(R(hs), 0);
    let is0 = m.cmp(CmpOp::Eq, R(cmd), Const(0));
    m.branch(R(is0), dispatch, pick1);
    m.select(pick1);
    let is1 = m.cmp(CmpOp::Eq, R(cmd), Const(1));
    m.load_to(fp, R(hs), 1);
    m.branch(R(is1), dispatch, pick2);
    m.select(pick2);
    m.load_to(fp, R(hs), 2);
    // Module handlers: statically reachable (the branch condition depends
    // on the request), dynamically never taken by the input distribution.
    let modsel = m.block();
    let moddone = m.block();
    let wants_module = m.cmp(CmpOp::Gt, R(cmd), Const(100));
    m.branch(R(wants_module), modsel, moddone);
    m.select(modsel);
    for i in 0..NMODULES as u32 {
        m.load_to(fp, R(hs), 3 + i);
        let nb = m.block();
        m.jump(nb);
        m.select(nb);
    }
    m.jump(moddone);
    m.select(moddone);
    m.jump(dispatch);
    m.select(dispatch);
    let body = m.call_indirect(R(fp), vec![R(arg)]);
    let resp = m.addr_global(response);
    let acc = m.load(R(resp), 0);
    let acc1 = m.bin(BinOp::Add, R(acc), R(body));
    m.store(R(resp), 0, R(acc1));
    end_loop(&mut m, &l);
    let resp = m.addr_global(response);
    let out = m.load(R(resp), 0);
    // Diagnostic merge: only a never-used mode folds the I/O bookkeeping
    // into the response — the sound slicer must still trace it.
    let diag = m.block();
    let fin = m.block();
    let outm = m.copy(R(out));
    let is_diag = m.cmp(CmpOp::Eq, R(mode), Const(5));
    m.branch(R(is_diag), diag, fin);
    m.select(diag);
    let st = m.load(R(resp), 1);
    let merged = m.bin(BinOp::Add, R(outm), R(st));
    m.copy_to(outm, R(merged));
    m.jump(fin);
    m.select(fin);
    m.output(R(outm));
    m.ret(None);
    let main = pb.finish_function(m);

    // Handlers.
    let mut f = pb.function("handle_static", 1);
    let a = f.param(0);
    let cf = f.addr_global(conf);
    let port = f.load(R(cf), 0);
    let v = f.bin(BinOp::Add, R(a), R(port));
    let v = compute_chain(&mut f, R(v), 4);
    f.ret(Some(R(v)));
    pb.finish_function(f);

    let mut f = pb.function("buf_alloc", 1);
    let o = f.alloc(2);
    f.store(R(o), 0, R(f.param(0)));
    f.ret(Some(R(o)));
    pb.finish_function(f);

    let mut f = pb.function("handle_dynamic", 1);
    let a = f.param(0);
    let page = f.call(pool_alloc, vec![R(a)]);
    let x = f.load(R(page), 0);
    let v = compute_chain(&mut f, R(x), 6);
    f.ret(Some(R(v)));
    pb.finish_function(f);

    // The cold error handler: a chain of blocks touching config state.
    let mut f = pb.function("handle_error", 1);
    let a = f.param(0);
    let cf = f.addr_global(conf);
    let mut cur = a;
    for field in 1..4u32 {
        let x = f.load(R(cf), field);
        let y = f.bin(BinOp::Add, R(x), R(cur));
        f.store(R(cf), field, R(y));
        cur = y;
        let nb = f.block();
        f.jump(nb);
        f.select(nb);
    }
    f.ret(Some(R(cur)));
    pb.finish_function(f);

    // Cold module handlers: each enters the helper pool at its own points.
    let pool = helper_pool(&mut pb, "ngx_util", 8);
    for (i, &md) in modules.iter().enumerate() {
        let _ = md;
        let mut f = pb.function(&format!("module_{i}"), 1);
        let a = f.param(0);
        let r1 = f.call(pool[i % pool.len()], vec![R(a)]);
        let r2 = f.call(pool[(i * 5 + 2) % pool.len()], vec![R(r1)]);
        f.ret(Some(R(r2)));
        pb.finish_function(f);
    }

    // I/O wait: a long compute chain whose result only matters to the
    // diagnostic mode.
    let mut f = pb.function("io_wait", 1);
    let a = f.param(0);
    let v = compute_chain(&mut f, R(a), 30);
    let scratch = f.call(pool_alloc, vec![R(v)]);
    f.store(R(scratch), 0, R(v));
    let back = f.load(R(scratch), 0);
    f.ret(Some(R(back)));
    pb.finish_function(f);

    let program = pb.finish(main).unwrap();
    let scale = params.scale;
    let gen = move |rng: &mut StdRng| {
        // Commands 0/1 hot; ≥2 (error) ~1%. The diagnostic mode never
        // appears in either corpus.
        let n = i64::from(scale) * rng.gen_range(2..5);
        let mut v = vec![0, n];
        for _ in 0..n {
            let cmd = if rng.gen_range(0..1000) < 10 {
                2
            } else {
                rng.gen_range(0..2)
            };
            v.push(cmd);
            v.push(rng.gen_range(0..50));
        }
        v
    };
    let adversarial = corpus(params.seed ^ 0x0dd, 3, move |rng| {
        let n = i64::from(scale) * rng.gen_range(2..4);
        let mut v = vec![0, n];
        for _ in 0..n {
            v.push(150); // module-handler request: never in the distribution
            v.push(rng.gen_range(0..50));
        }
        v
    });
    Workload {
        name: "nginx",
        endpoints: Workload::main_outputs(&program),
        profiling_inputs: corpus(params.seed + 23, params.num_profiling, gen),
        adversarial_inputs: adversarial,
        testing_inputs: corpus(params.seed ^ 0x4141, params.num_testing, gen),
        program,
    }
}

/// `redis`: a key-value command loop with indirect dispatch and per-slot
/// heap records.
pub fn redis(params: &WorkloadParams) -> Workload {
    const NEXTRA: usize = 13; // registered admin commands, never issued
    let mut pb = ProgramBuilder::new();
    let table = pb.global("table", 4); // 4 key slots holding record pointers
    let cmds = pb.global("cmds", 3 + NEXTRA as u32);
    let reply = pb.global("reply", 1);
    let c_set = pb.declare("cmd_set", 1);
    let c_get = pb.declare("cmd_get", 1);
    let c_flush = pb.declare("cmd_flush", 1);
    // The arena wrapper: every object comes from this one allocation site
    // (the paper's Figure 3 `my_malloc` pattern) — context-insensitive
    // analysis merges all its clients, heap cloning separates them.
    let arena = pb.declare("arena_alloc", 1);
    let extras: Vec<FuncId> = (0..NEXTRA)
        .map(|i| pb.declare(&format!("cmd_admin_{i}"), 1))
        .collect();

    let mut m = pb.function("main", 0);
    let cg = m.addr_global(cmds);
    let f0 = m.addr_func(c_set);
    let f1 = m.addr_func(c_get);
    let f2 = m.addr_func(c_flush);
    m.store(R(cg), 0, R(f0));
    m.store(R(cg), 1, R(f1));
    m.store(R(cg), 2, R(f2));
    for (i, &ex) in extras.iter().enumerate() {
        let fp = m.addr_func(ex);
        m.store(R(cg), 3 + i as u32, R(fp));
    }
    let n = m.input();
    let l = begin_loop(&mut m, R(n));
    let cmd = m.input();
    let arg = m.input();
    let sel2 = m.block();
    let sel3 = m.block();
    let admin = m.block();
    let dispatch = m.block();
    let fp = m.load(R(cg), 0);
    let is0 = m.cmp(CmpOp::Eq, R(cmd), Const(0));
    m.branch(R(is0), dispatch, sel2);
    m.select(sel2);
    m.load_to(fp, R(cg), 1);
    let is1 = m.cmp(CmpOp::Eq, R(cmd), Const(1));
    m.branch(R(is1), dispatch, sel3);
    m.select(sel3);
    m.load_to(fp, R(cg), 2);
    let is_admin = m.cmp(CmpOp::Gt, R(cmd), Const(50));
    m.branch(R(is_admin), admin, dispatch);
    m.select(admin);
    for i in 0..NEXTRA as u32 {
        m.load_to(fp, R(cg), 3 + i);
        let nb = m.block();
        m.jump(nb);
        m.select(nb);
    }
    m.jump(dispatch);
    m.select(dispatch);
    m.call_indirect_void(R(fp), vec![R(arg)]);
    end_loop(&mut m, &l);
    let rp = m.addr_global(reply);
    let out = m.load(R(rp), 0);
    m.output(R(out));
    m.ret(None);
    let main = pb.finish_function(m);

    // arena_alloc: the shared allocation wrapper.
    let mut f = pb.function("arena_alloc", 1);
    let o = f.alloc(2);
    f.store(R(o), 0, R(f.param(0)));
    f.ret(Some(R(o)));
    pb.finish_function(f);

    // cmd_set: allocate a record through the arena and hang it on a slot
    // (slot = arg & 3, expressed as a 4-way branch since fields are
    // constant).
    let mut f = pb.function("cmd_set", 1);
    let a = f.param(0);
    let rec = f.call(arena, vec![R(a)]);
    let hashed = compute_chain(&mut f, R(a), 14);
    f.store(R(rec), 1, R(hashed));
    let tb = f.addr_global(table);
    let slot = f.bin(BinOp::And, R(a), Const(3));
    let mut next_check = f.block();
    let done = f.block();
    for s in 0..4u32 {
        let is = f.cmp(CmpOp::Eq, R(slot), Const(i64::from(s)));
        let store_b = f.block();
        f.branch(R(is), store_b, next_check);
        f.select(store_b);
        f.store(R(tb), s, R(rec));
        f.jump(done);
        f.select(next_check);
        if s < 3 {
            next_check = f.block();
        } else {
            f.jump(done);
        }
    }
    f.select(done);
    f.ret(None);
    pb.finish_function(f);

    // cmd_get: read a slot's record into the reply accumulator; the
    // response scratch buffer comes from the same arena, so only heap
    // cloning can tell its stores apart from the records.
    let mut f = pb.function("cmd_get", 1);
    let a = f.param(0);
    let scratch = f.call(arena, vec![Const(0)]);
    let key = compute_chain(&mut f, R(a), 5);
    f.store(R(scratch), 0, R(key));
    let tb = f.addr_global(table);
    let rp = f.addr_global(reply);
    let slot = f.bin(BinOp::And, R(a), Const(3));
    let mut next_check = f.block();
    let done = f.block();
    let val = f.copy(Const(0));
    for s in 0..4u32 {
        let is = f.cmp(CmpOp::Eq, R(slot), Const(i64::from(s)));
        let read_b = f.block();
        f.branch(R(is), read_b, next_check);
        f.select(read_b);
        let rec = f.load(R(tb), s);
        let has = f.cmp(CmpOp::Ne, R(rec), Const(0));
        let deref = f.block();
        f.branch(R(has), deref, done);
        f.select(deref);
        f.load_to(val, R(rec), 0);
        // Debug verification path: fold in the stored hash. Arguments
        // never exceed 900, so this is likely-unreachable code — but the
        // hot hashed-field stores are in the *sound* slice because of it.
        let verify = f.cmp(CmpOp::Gt, R(a), Const(900));
        let vb = f.block();
        f.branch(R(verify), vb, done);
        f.select(vb);
        let h = f.load(R(rec), 1);
        let mixed = f.bin(BinOp::Add, R(val), R(h));
        f.copy_to(val, R(mixed));
        f.jump(done);
        f.select(next_check);
        if s < 3 {
            next_check = f.block();
        } else {
            f.jump(done);
        }
    }
    f.select(done);
    let acc = f.load(R(rp), 0);
    let acc1 = f.bin(BinOp::Add, R(acc), R(val));
    f.store(R(rp), 0, R(acc1));
    f.ret(None);
    pb.finish_function(f);

    // cmd_flush (cold): clears every slot.
    let mut f = pb.function("cmd_flush", 1);
    let tb = f.addr_global(table);
    for s in 0..4u32 {
        f.store(R(tb), s, Const(0));
    }
    f.ret(None);
    pb.finish_function(f);

    // Admin commands: dead at runtime, alive to the analysis.
    let pool = helper_pool(&mut pb, "rds_util", 8);
    for (i, &ex) in extras.iter().enumerate() {
        let _ = ex;
        let mut f = pb.function(&format!("cmd_admin_{i}"), 1);
        let a = f.param(0);
        let r1 = f.call(pool[i % pool.len()], vec![R(a)]);
        let r2 = f.call(pool[(i * 3 + 1) % pool.len()], vec![R(r1)]);
        f.output(R(r2));
        f.ret(None);
        pb.finish_function(f);
    }

    let program = pb.finish(main).unwrap();
    let scale = params.scale;
    let gen = move |rng: &mut StdRng| {
        let n = i64::from(scale) * rng.gen_range(2..5);
        let mut v = vec![n];
        for _ in 0..n {
            // set/get hot, flush ~0.7%.
            let cmd = if rng.gen_range(0..1000) < 7 {
                2
            } else {
                rng.gen_range(0..2)
            };
            v.push(cmd);
            v.push(rng.gen_range(0..64));
        }
        v
    };
    let adversarial = corpus(params.seed ^ 0x0dd, 3, move |rng| {
        let n = i64::from(scale) * rng.gen_range(2..4);
        let mut v = vec![n];
        for _ in 0..n {
            v.push(77); // admin command: never in the distribution
            v.push(rng.gen_range(0..64));
        }
        v
    });
    Workload {
        name: "redis",
        endpoints: Workload::main_outputs(&program),
        profiling_inputs: corpus(params.seed + 29, params.num_profiling, gen),
        adversarial_inputs: adversarial,
        testing_inputs: corpus(params.seed ^ 0x5151, params.num_testing, gen),
        program,
    }
}

/// `perl`: a bytecode interpreter whose single generic value record holds
/// integers, pointers and function pointers alike — the points-to poison
/// the paper calls out ("Perl is an interpreter that has a generic
/// variable structure type", §5.2.2).
pub fn perl(params: &WorkloadParams) -> Workload {
    const NOPS: usize = 16; // 6 real opcode handlers + 10 dead extensions
    let mut pb = ProgramBuilder::new();
    let optable = pb.global("optable", NOPS as u32);
    // acc cell ptr, env ptr, op count, env-holds-code flag
    let state = pb.global("state", 4);
    let ops: Vec<FuncId> = (0..NOPS)
        .map(|i| pb.declare(&format!("op_{i}"), 1))
        .collect();
    let newcell = pb.declare("newcell", 1);

    let mut m = pb.function("main", 0);
    let ot = m.addr_global(optable);
    for (i, &op) in ops.iter().enumerate() {
        let fp = m.addr_func(op);
        m.store(R(ot), i as u32, R(fp));
    }
    let st = m.addr_global(state);
    let acc0 = m.call(newcell, vec![Const(0)]);
    m.store(R(st), 0, R(acc0));
    let env = m.call(newcell, vec![Const(1)]);
    m.store(R(st), 1, R(env));
    let mode = m.input();
    let n = m.input();
    let l = begin_loop(&mut m, R(n));
    let opcode = m.input();
    let arg = m.input();
    // Clamp the opcode and fetch the handler: an NOPS-way selection.
    let mut next = m.block();
    let run = m.block();
    let fp = m.load(R(ot), 0);
    for i in 0..NOPS as u32 {
        let is = m.cmp(CmpOp::Eq, R(opcode), Const(i64::from(i)));
        let set_b = m.block();
        m.branch(R(is), set_b, next);
        m.select(set_b);
        m.load_to(fp, R(ot), i);
        m.jump(run);
        m.select(next);
        if i < NOPS as u32 - 1 {
            next = m.block();
        } else {
            m.jump(run);
        }
    }
    m.select(run);
    m.call_indirect_void(R(fp), vec![R(arg)]);
    end_loop(&mut m, &l);
    let accp = m.load(R(st), 0);
    let out = m.load(R(accp), 0);
    let diag = m.block();
    let fin = m.block();
    let outm = m.copy(R(out));
    let is_diag = m.cmp(CmpOp::Eq, R(mode), Const(11));
    m.branch(R(is_diag), diag, fin);
    m.select(diag);
    let ticks = m.load(R(st), 2);
    let merged = m.bin(BinOp::Add, R(outm), R(ticks));
    m.copy_to(outm, R(merged));
    m.jump(fin);
    m.select(fin);
    m.output(R(outm));
    m.ret(None);
    let main = pb.finish_function(m);

    // newcell: the single generic value record allocation.
    let mut f = pb.function("newcell", 1);
    let c = f.alloc(2);
    f.store(R(c), 0, R(f.param(0)));
    f.ret(Some(R(c)));
    pb.finish_function(f);

    // Dead opcode extensions enter the helper pool.
    let pool = helper_pool(&mut pb, "prl_util", 8);

    // Opcode handlers; each mutates the interpreter state through the
    // generic cells. op_0/op_1 are the hot arithmetic ops; 6.. are dead
    // extensions.
    for (i, &op) in ops.iter().enumerate() {
        let name = format!("op_{i}");
        let _ = op;
        let mut f = pb.function(&name, 1);
        let a = f.param(0);
        let st = f.addr_global(state);
        let accp = f.load(R(st), 0);
        let cur = f.load(R(accp), 0);
        match i {
            0 => {
                let v = f.bin(BinOp::Add, R(cur), R(a));
                f.store(R(accp), 0, R(v));
            }
            1 => {
                let v = f.bin(BinOp::Mul, R(cur), Const(3));
                let v2 = f.bin(BinOp::Add, R(v), R(a));
                f.store(R(accp), 0, R(v2));
            }
            2 => {
                // Box the accumulator into a fresh cell (pointer churn).
                let cell = f.call(newcell, vec![R(cur)]);
                f.store(R(st), 1, R(cell));
                f.store(R(st), 3, Const(0)); // env holds data
            }
            3 => {
                // Unbox the env back into the accumulator — guarded by the
                // tag the interpreter keeps, exactly like a real tagged
                // union. Statically the cell's field still mixes integers
                // and function pointers (the points-to poison).
                let env = f.load(R(st), 1);
                let tag = f.load(R(st), 3);
                let is_data = f.cmp(CmpOp::Eq, R(tag), Const(0));
                let unbox = f.block();
                let skip = f.block();
                f.branch(R(is_data), unbox, skip);
                f.select(unbox);
                let v = f.load(R(env), 0);
                f.store(R(accp), 0, R(v));
                f.jump(skip);
                f.select(skip);
            }
            4 => {
                // Store a *function pointer* into a generic cell — the
                // same field that elsewhere holds integers — and tag it.
                let fp = f.addr_func(ops[0]);
                let cell = f.call(newcell, vec![Const(0)]);
                f.store(R(cell), 0, R(fp));
                f.store(R(st), 1, R(cell));
                f.store(R(st), 3, Const(1)); // env holds code
            }
            5 => {
                // Call through whatever the env cell holds, when tagged as
                // code (cold).
                let env = f.load(R(st), 1);
                let tag = f.load(R(st), 3);
                let callable = f.cmp(CmpOp::Eq, R(tag), Const(1));
                let yes = f.block();
                let no = f.block();
                f.branch(R(callable), yes, no);
                f.select(yes);
                let g = f.load(R(env), 0);
                f.call_indirect_void(R(g), vec![R(a)]);
                f.jump(no);
                f.select(no);
            }
            _ => {
                // Dead extension opcodes: helper-pool chains.
                let r1 = f.call(pool[i % pool.len()], vec![R(a)]);
                let r2 = f.call(pool[(i * 5 + 3) % pool.len()], vec![R(r1)]);
                f.store(R(accp), 0, R(r2));
            }
        }
        // Hot opcode accounting, relevant only to the diagnostic merge.
        let tick = f.load(R(st), 2);
        let bumped = compute_chain(&mut f, R(tick), 4);
        f.store(R(st), 2, R(bumped));
        f.ret(None);
        pb.finish_function(f);
    }

    let program = pb.finish(main).unwrap();
    let scale = params.scale;
    let gen = move |rng: &mut StdRng| {
        let n = i64::from(scale) * rng.gen_range(2..5);
        let mut v = vec![0, n];
        for _ in 0..n {
            // Hot ops 0/1; boxing 2/3 occasional; 4/5 rare.
            let roll = rng.gen_range(0..100);
            let op = match roll {
                0..=44 => 0,
                45..=84 => 1,
                85..=92 => 2,
                93..=98 => 3,
                _ => 4,
            };
            v.push(op);
            v.push(rng.gen_range(0..30));
        }
        v
    };
    Workload {
        name: "perl",
        endpoints: Workload::main_outputs(&program),
        profiling_inputs: corpus(params.seed + 31, params.num_profiling, gen),
        adversarial_inputs: Vec::new(),
        testing_inputs: corpus(params.seed ^ 0x6161, params.num_testing, gen),
        program,
    }
}

/// `vim`: a wide command table with deep helper chains — the benchmark
/// whose sound context-sensitive analysis explodes while likely-used
/// call contexts keep the predicated one small (Figure 11).
pub fn vim(params: &WorkloadParams) -> Workload {
    const NCMDS: usize = 24; // registered; the input distribution uses 6
    const NHELPERS: usize = 8;
    let mut pb = ProgramBuilder::new();
    let cmdtab = pb.global("cmdtab", NCMDS as u32);
    let buffer = pb.global("buffer", 4);
    let commands: Vec<FuncId> = (0..NCMDS)
        .map(|i| pb.declare(&format!("cmd_{i}"), 1))
        .collect();
    let helpers = helper_pool(&mut pb, "vim_h", NHELPERS);
    // Shared line allocator (the Figure 3 wrapper pattern): redraw lines
    // and undo records both come from here, so a context-insensitive
    // analysis cannot tell them apart.
    let line_alloc = pb.declare("line_alloc", 1);

    let mut m = pb.function("main", 0);
    let tb = m.addr_global(cmdtab);
    for (i, &c) in commands.iter().enumerate() {
        let fp = m.addr_func(c);
        m.store(R(tb), i as u32, R(fp));
    }
    let mode = m.input();
    let n = m.input();
    let l = begin_loop(&mut m, R(n));
    let cmd = m.input();
    let arg = m.input();
    let mut next = m.block();
    let run = m.block();
    let fp = m.load(R(tb), 0);
    for i in 0..NCMDS as u32 {
        let is = m.cmp(CmpOp::Eq, R(cmd), Const(i64::from(i)));
        let set_b = m.block();
        m.branch(R(is), set_b, next);
        m.select(set_b);
        m.load_to(fp, R(tb), i);
        m.jump(run);
        m.select(next);
        if i < NCMDS as u32 - 1 {
            next = m.block();
        } else {
            m.jump(run);
        }
    }
    m.select(run);
    m.call_indirect_void(R(fp), vec![R(arg)]);
    end_loop(&mut m, &l);
    let bf = m.addr_global(buffer);
    // The normal output reports the redraw statistics; the edit-state
    // accumulator (built from the helper pool) matters only to the
    // diagnostic merge.
    let outm = m.copy(Const(0));
    for fld in 1..4u32 {
        let v = m.load(R(bf), fld);
        let merged = m.bin(BinOp::Add, R(outm), R(v));
        m.copy_to(outm, R(merged));
    }
    let diag = m.block();
    let fin = m.block();
    let is_diag = m.cmp(CmpOp::Eq, R(mode), Const(9));
    m.branch(R(is_diag), diag, fin);
    m.select(diag);
    let st = m.load(R(bf), 0);
    let merged = m.bin(BinOp::Add, R(outm), R(st));
    m.copy_to(outm, R(merged));
    m.jump(fin);
    m.select(fin);
    m.output(R(outm));
    m.ret(None);
    let main = pb.finish_function(m);

    // Each command enters the helper pool at its own pair of entry points
    // — every command's chains must be cloned separately by a sound CS
    // analysis, including the 18 registered-but-never-typed commands.
    for (i, &c) in commands.iter().enumerate() {
        let _ = c;
        let mut f = pb.function(&format!("cmd_{i}"), 1);
        let a = f.param(0);
        let h1 = helpers[i % NHELPERS];
        let h2 = helpers[(i * 3 + 1) % NHELPERS];
        let r1 = f.call(h1, vec![R(a)]);
        let r2 = f.call(h2, vec![R(r1)]);
        let bf = f.addr_global(buffer);
        let old = f.load(R(bf), 0);
        let v = f.bin(BinOp::Add, R(old), R(r2));
        f.store(R(bf), 0, R(v));
        // An undo record from the shared line allocator, carrying the
        // heavy edit state (diagnostic-only).
        let undo = f.call(line_alloc, vec![R(r2)]);
        f.store(R(undo), 0, R(r2));
        // Light cursor/redraw bookkeeping — the normal output's only
        // dependence — in a *redraw line* from the same allocator: only
        // heap cloning keeps it apart from the undo records.
        let redraw = f.bin(BinOp::Add, R(a), Const(i as i64));
        let line = f.call(line_alloc, vec![R(redraw)]);
        let got = f.load(R(line), 0);
        f.store(R(bf), 1 + (i as u32 % 3), R(got));
        f.ret(None);
        pb.finish_function(f);
    }
    {
        let mut f = pb.function("line_alloc", 1);
        let o = f.alloc(2);
        f.store(R(o), 0, R(f.param(0)));
        f.ret(Some(R(o)));
        pb.finish_function(f);
    }

    let program = pb.finish(main).unwrap();
    let scale = params.scale;
    let gen = move |rng: &mut StdRng| {
        // Only 6 of the 24 registered commands ever appear in inputs; the
        // diagnostic mode never does.
        let n = i64::from(scale) * rng.gen_range(2..5);
        let mut v = vec![0];
        v.extend(command_stream(rng, n, 6, 20));
        v
    };
    let adversarial = corpus(params.seed ^ 0x0dd, 3, move |rng| {
        let n = i64::from(scale) * rng.gen_range(1..3);
        let mut v = vec![0, n];
        for _ in 0..n {
            v.push(rng.gen_range(6..24)); // dead-command territory
            v.push(rng.gen_range(0..100));
        }
        v
    });
    Workload {
        name: "vim",
        endpoints: Workload::main_outputs(&program),
        profiling_inputs: corpus(params.seed + 37, params.num_profiling, gen),
        adversarial_inputs: adversarial,
        testing_inputs: corpus(params.seed ^ 0x7171, params.num_testing, gen),
        program,
    }
}

/// `sphinx`: a staged numeric pipeline with small, call-heavy stages (its
/// invariant-check overhead is dominated by call-context checking, §6.2).
pub fn sphinx(params: &WorkloadParams) -> Workload {
    let mut pb = ProgramBuilder::new();
    let model = pb.global("model", 4);
    let frontend = pb.declare("frontend", 1);
    let decode = pb.declare("decode", 1);
    let score = pb.declare("score", 1);
    let smooth = pb.declare("smooth", 1);

    let confidence = pb.global("confidence", 1);
    let mut m = pb.function("main", 0);
    let md = m.addr_global(model);
    for fi in 0..4u32 {
        m.store(R(md), fi, Const(i64::from(fi) * 5 + 1));
    }
    let mode = m.input();
    let n = m.input();
    let acc = m.copy(Const(0));
    let frames = m.copy(Const(0));
    let cfp = m.addr_global(confidence);
    let l = begin_loop(&mut m, R(n));
    let sample = m.input();
    let fe = m.call(frontend, vec![R(sample)]);
    let de = m.call(decode, vec![R(fe)]);
    let a2 = m.bin(BinOp::Add, R(acc), R(de));
    m.copy_to(acc, R(a2));
    m.store(R(cfp), 0, R(a2));
    // The normal output only tallies frames (light).
    let f2 = m.bin(BinOp::Add, R(frames), R(sample));
    m.copy_to(frames, R(f2));
    end_loop(&mut m, &l);
    let diag = m.block();
    let fin = m.block();
    let is_diag = m.cmp(CmpOp::Eq, R(mode), Const(3));
    m.branch(R(is_diag), diag, fin);
    m.select(diag);
    let cv = m.load(R(cfp), 0);
    let merged = m.bin(BinOp::Add, R(frames), R(cv));
    m.copy_to(frames, R(merged));
    m.jump(fin);
    m.select(fin);
    m.output(R(frames));
    m.ret(None);
    let main = pb.finish_function(m);

    let mut f = pb.function("frontend", 1);
    let a = f.param(0);
    let s1 = f.call(smooth, vec![R(a)]);
    let s2 = f.call(smooth, vec![R(s1)]);
    f.ret(Some(R(s2)));
    pb.finish_function(f);

    let mut f = pb.function("decode", 1);
    let a = f.param(0);
    let sc1 = f.call(score, vec![R(a)]);
    let sc2 = f.call(score, vec![R(sc1)]);
    let v = f.bin(BinOp::Add, R(sc1), R(sc2));
    f.ret(Some(R(v)));
    pb.finish_function(f);

    let mut f = pb.function("score", 1);
    let a = f.param(0);
    let md = f.addr_global(model);
    let w0 = f.load(R(md), 0);
    let w1 = f.load(R(md), 1);
    let v = f.bin(BinOp::Mul, R(a), R(w0));
    let v2 = f.bin(BinOp::Add, R(v), R(w1));
    f.ret(Some(R(v2)));
    pb.finish_function(f);

    let mut f = pb.function("smooth", 1);
    let a = f.param(0);
    let v = f.bin(BinOp::Div, R(a), Const(2));
    let v2 = f.bin(BinOp::Add, R(v), Const(1));
    f.ret(Some(R(v2)));
    pb.finish_function(f);

    let program = pb.finish(main).unwrap();
    let scale = params.scale;
    let gen = move |rng: &mut StdRng| {
        let n = i64::from(scale) * rng.gen_range(3..7);
        let mut v = vec![0, n];
        for _ in 0..n {
            v.push(rng.gen_range(0..1000));
        }
        v
    };
    Workload {
        name: "sphinx",
        endpoints: Workload::main_outputs(&program),
        profiling_inputs: corpus(params.seed + 41, params.num_profiling, gen),
        adversarial_inputs: Vec::new(),
        testing_inputs: corpus(params.seed ^ 0x8181, params.num_testing, gen),
        program,
    }
}

/// `go`: input-driven game-tree exploration with a long-tailed move
/// distribution — the benchmark whose invariants converge slowly
/// (Figures 7 and 8).
pub fn go(params: &WorkloadParams) -> Workload {
    const NMOVES: usize = 16;
    let mut pb = ProgramBuilder::new();
    let board = pb.global("board", NMOVES as u32);
    let moves: Vec<FuncId> = (0..NMOVES)
        .map(|i| pb.declare(&format!("move_{i}"), 1))
        .collect();

    let history = pb.global("history", 2);
    let mut m = pb.function("main", 0);
    let mode = m.input();
    let n = m.input();
    let score = m.copy(Const(0));
    let hp = m.addr_global(history);
    let l = begin_loop(&mut m, R(n));
    let mv = m.input();
    let arg = m.input();
    // Direct 16-way branch to the move evaluators (each its own cold-ish
    // path).
    let mut next = m.block();
    let done = m.block();
    for (i, &mf) in moves.iter().enumerate() {
        let is = m.cmp(CmpOp::Eq, R(mv), Const(i as i64));
        let call_b = m.block();
        m.branch(R(is), call_b, next);
        m.select(call_b);
        let r = m.call(mf, vec![R(arg)]);
        let s2 = m.bin(BinOp::Add, R(score), R(r));
        m.copy_to(score, R(s2));
        // Light per-move history (the normal output's only dependence).
        let h = m.load(R(hp), 0);
        let h2 = m.bin(BinOp::Add, R(h), R(arg));
        m.store(R(hp), 0, R(h2));
        m.jump(done);
        m.select(next);
        if i < NMOVES - 1 {
            next = m.block();
        } else {
            m.jump(done);
        }
    }
    m.select(done);
    end_loop(&mut m, &l);
    // The normal output is the light history tally; the analysis mode
    // would fold the full evaluation score in.
    let h = m.load(R(hp), 0);
    let report = m.copy(R(h));
    let diag = m.block();
    let fin = m.block();
    let is_diag = m.cmp(CmpOp::Eq, R(mode), Const(4));
    m.branch(R(is_diag), diag, fin);
    m.select(diag);
    let merged = m.bin(BinOp::Add, R(report), R(score));
    m.copy_to(report, R(merged));
    m.jump(fin);
    m.select(fin);
    m.output(R(report));
    m.ret(None);
    let main = pb.finish_function(m);

    // Every move enters the evaluation pool at its own points; since the
    // input distribution eventually plays every move, the *realized*
    // context space is as wide as the static one — neither the sound nor
    // the predicated CS analysis fits in a budget sized for vim/nginx
    // (matching go's CI/CI row in Table 2).
    let pool = helper_pool(&mut pb, "go_eval", 10);
    for (i, &mf) in moves.iter().enumerate() {
        let _ = mf;
        let mut f = pb.function(&format!("move_{i}"), 1);
        let a = f.param(0);
        let bd = f.addr_global(board);
        let cell = f.load(R(bd), i as u32);
        let v = f.bin(BinOp::Add, R(cell), R(a));
        f.store(R(bd), i as u32, R(v));
        // Clamp the evaluation depth so the context chains eventually
        // stabilize (go still converges last, Figure 7).
        let varg = f.bin(BinOp::And, R(v), Const(15));
        let e1 = f.call(pool[i % pool.len()], vec![R(varg)]);
        let e2 = f.call(pool[(i * 7 + 1) % pool.len()], vec![R(e1)]);
        let e3 = f.call(pool[(i * 3 + 5) % pool.len()], vec![R(e2)]);
        let e2 = f.bin(BinOp::Add, R(e2), R(e3));
        let ev = compute_chain(&mut f, R(e2), 3 + (i as u32 % 4));
        f.ret(Some(R(ev)));
        pb.finish_function(f);
    }

    let program = pb.finish(main).unwrap();
    let scale = params.scale;
    let gen = move |rng: &mut StdRng| {
        // Long tail: rare moves appear in some runs but not others, so the
        // observed behaviour keeps growing with more profiling (Figure 8).
        let n = i64::from(scale) * rng.gen_range(1..3);
        let mut v = vec![0];
        v.extend(command_stream(rng, n, 16, 5));
        v
    };
    Workload {
        name: "go",
        endpoints: Workload::main_outputs(&program),
        profiling_inputs: corpus(params.seed + 43, params.num_profiling, gen),
        adversarial_inputs: Vec::new(),
        testing_inputs: corpus(params.seed ^ 0x9191, params.num_testing, gen),
        program,
    }
}

/// `zlib`: a small, tight compression kernel; its static slice is small
/// and stable, so the optimistic slicer traces almost nothing.
pub fn zlib(params: &WorkloadParams) -> Workload {
    let mut pb = ProgramBuilder::new();
    let window = pb.global("window", 4);
    let counters = pb.global("counters", 2);
    let emit = pb.declare("emit", 1);

    let mut m = pb.function("main", 0);
    let wd = m.addr_global(window);
    let ct = m.addr_global(counters);
    let mode = m.input();
    let n = m.input();
    let crc = m.copy(Const(0));
    let l = begin_loop(&mut m, R(n));
    let byte = m.input();
    // Match against the sliding window (4 constant positions).
    let w0 = m.load(R(wd), 0);
    let is_match = m.cmp(CmpOp::Eq, R(byte), R(w0));
    let matched = m.block();
    let literal = m.block();
    let cont = m.block();
    m.branch(R(is_match), matched, literal);
    m.select(matched);
    let token = m.call(emit, vec![Const(256)]);
    let c2 = m.bin(BinOp::Add, R(crc), R(token));
    m.copy_to(crc, R(c2));
    // Bookkeeping counters: never reach the checksum.
    let hits = m.load(R(ct), 0);
    let h2 = m.bin(BinOp::Add, R(hits), Const(1));
    m.store(R(ct), 0, R(h2));
    m.jump(cont);
    m.select(literal);
    let token = m.call(emit, vec![R(byte)]);
    let c2 = m.bin(BinOp::Xor, R(crc), R(token));
    m.copy_to(crc, R(c2));
    let misses = m.load(R(ct), 1);
    let ms2 = m.bin(BinOp::Add, R(misses), Const(1));
    m.store(R(ct), 1, R(ms2));
    m.jump(cont);
    m.select(cont);
    // Slide the window.
    let w1 = m.load(R(wd), 1);
    let w2 = m.load(R(wd), 2);
    let w3 = m.load(R(wd), 3);
    m.store(R(wd), 0, R(w1));
    m.store(R(wd), 1, R(w2));
    m.store(R(wd), 2, R(w3));
    m.store(R(wd), 3, R(byte));
    end_loop(&mut m, &l);
    // The compressed *length report* is the normal output; the verify mode
    // additionally folds in the checksum — dragging the whole window/CRC
    // machinery into the sound slice.
    let h = m.load(R(ct), 0);
    let ms = m.load(R(ct), 1);
    let report = m.bin(BinOp::Add, R(h), R(ms));
    let diag = m.block();
    let fin = m.block();
    let is_diag = m.cmp(CmpOp::Eq, R(mode), Const(7));
    m.branch(R(is_diag), diag, fin);
    m.select(diag);
    let merged = m.bin(BinOp::Add, R(report), R(crc));
    m.copy_to(report, R(merged));
    m.jump(fin);
    m.select(fin);
    m.output(R(report));
    m.ret(None);
    let main = pb.finish_function(m);

    let mut f = pb.function("emit", 1);
    let a = f.param(0);
    let v = f.bin(BinOp::Mul, R(a), Const(31));
    let v2 = f.bin(BinOp::Xor, R(v), Const(0x1f));
    f.ret(Some(R(v2)));
    pb.finish_function(f);

    let program = pb.finish(main).unwrap();
    let scale = params.scale;
    let gen = move |rng: &mut StdRng| {
        let n = i64::from(scale) * rng.gen_range(4..9);
        let mut v = vec![0, n];
        for _ in 0..n {
            v.push(rng.gen_range(0..8)); // small alphabet: matches happen
        }
        v
    };
    let adversarial = corpus(params.seed ^ 0x0dd, 3, move |rng| {
        let n = i64::from(scale) * rng.gen_range(4..9);
        let mut v = vec![7, n]; // statistics/verify mode
        for _ in 0..n {
            v.push(rng.gen_range(0..8));
        }
        v
    });
    Workload {
        name: "zlib",
        endpoints: Workload::main_outputs(&program),
        profiling_inputs: corpus(params.seed + 47, params.num_profiling, gen),
        adversarial_inputs: adversarial,
        testing_inputs: corpus(params.seed ^ 0xa1a1, params.num_testing, gen),
        program,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_interp::{Machine, MachineConfig, NoopTracer, Termination};

    #[test]
    fn every_benchmark_builds_and_runs() {
        let params = WorkloadParams::small();
        let suite = all(&params);
        assert_eq!(suite.len(), 7);
        for w in &suite {
            assert!(!w.endpoints.is_empty(), "{} has no endpoints", w.name);
            for input in w.profiling_inputs.iter().chain(&w.testing_inputs) {
                let r =
                    Machine::new(&w.program, MachineConfig::default()).run(input, &mut NoopTracer);
                assert_eq!(
                    r.status,
                    Termination::Exited,
                    "{} diverged on {input:?}",
                    w.name
                );
            }
        }
    }

    #[test]
    fn benchmark_scale_inputs_terminate_cleanly() {
        let params = WorkloadParams {
            scale: 220,
            num_profiling: 2,
            num_testing: 2,
            ..WorkloadParams::small()
        };
        for w in all(&params) {
            for input in w.profiling_inputs.iter().chain(&w.testing_inputs) {
                let r =
                    Machine::new(&w.program, MachineConfig::default()).run(input, &mut NoopTracer);
                assert_eq!(r.status, Termination::Exited, "{} at scale 220", w.name);
                assert!(!r.outputs.is_empty(), "{} produced no output", w.name);
            }
        }
    }

    #[test]
    fn outputs_vary_with_inputs() {
        let params = WorkloadParams::small();
        for w in all(&params) {
            let outs: std::collections::HashSet<Vec<i64>> = w
                .testing_inputs
                .iter()
                .map(|input| {
                    Machine::new(&w.program, MachineConfig::default())
                        .run(input, &mut NoopTracer)
                        .output_values()
                })
                .collect();
            assert!(outs.len() > 1, "{} output is constant", w.name);
        }
    }

    #[test]
    fn long_tail_distributions_differ_from_hot_ones() {
        let params = WorkloadParams::small();
        let go_w = go(&params);
        // go inputs should use many distinct commands across the corpus.
        let mut cmds = std::collections::HashSet::new();
        for input in &go_w.profiling_inputs {
            for pair in input[1..].chunks(2) {
                cmds.insert(pair[0]);
            }
        }
        assert!(cmds.len() >= 6, "go's tail too short: {cmds:?}");
    }
}
