//! Typed analysis artifacts and their wire encodings.
//!
//! Artifacts are addressed by an [`ArtifactKey`] — a pair of stable
//! 128-bit content fingerprints. For static-phase artifacts the pair is
//! `(Program::fingerprint(), predicate fingerprint)`, where the predicate
//! half covers the invariant set *and everything else the cached phases
//! consulted* (the elision-validation corpus for OptFT, the slice
//! endpoints for OptSlice); for profile artifacts it is
//! `(Program::fingerprint(), corpus fingerprint)`. Deriving the predicate
//! fingerprint is the caller's job (see `oha-core`); the store only
//! requires that equal keys imply equal artifacts.
//!
//! Every `decode` here is total over arbitrary bytes: corrupt input yields
//! a [`CodecError`], never a panic.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use oha_dataflow::BitSet;
use oha_invariants::InvariantSet;
use oha_ir::{Fingerprint, FuncId, GlobalId, InstId};
use oha_pointsto::{AbsObj, ObjRegistry, PointsTo, PtStats, Sensitivity};
use oha_races::{RaceStats, StaticRaces};
use oha_slicing::{SliceStats, StaticSlice};

use crate::codec::{CodecError, Reader, Writer};

/// The artifact namespaces the store manages (one subdirectory each).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// Merged likely invariants from a profiling corpus.
    Profile,
    /// OptFT's static phase: sound + predicated race sets, the validated
    /// elision set, and the predicated points-to result.
    OptFt,
    /// OptSlice's static phase: sound + predicated slice closures and the
    /// predicated points-to result.
    OptSlice,
}

impl ArtifactKind {
    /// All kinds, for directory setup and stats sweeps.
    pub const ALL: [ArtifactKind; 3] = [
        ArtifactKind::Profile,
        ArtifactKind::OptFt,
        ArtifactKind::OptSlice,
    ];

    /// The store subdirectory holding this kind.
    pub fn dir_name(self) -> &'static str {
        match self {
            ArtifactKind::Profile => "profile",
            ArtifactKind::OptFt => "optft",
            ArtifactKind::OptSlice => "optslice",
        }
    }

    /// The one-byte tag written into the file header.
    pub fn tag(self) -> u8 {
        match self {
            ArtifactKind::Profile => 1,
            ArtifactKind::OptFt => 2,
            ArtifactKind::OptSlice => 3,
        }
    }

    /// Inverse of [`ArtifactKind::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(ArtifactKind::Profile),
            2 => Some(ArtifactKind::OptFt),
            3 => Some(ArtifactKind::OptSlice),
            _ => None,
        }
    }
}

/// A content address: two stable fingerprints identifying what was
/// analyzed and under which predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArtifactKey {
    /// `Program::fingerprint()` of the analyzed program.
    pub program: Fingerprint,
    /// Fingerprint of the predicate side: the invariant set plus any other
    /// inputs the cached phases depend on (corpus, endpoints).
    pub predicate: Fingerprint,
}

impl ArtifactKey {
    /// A key from its two halves.
    pub fn new(program: Fingerprint, predicate: Fingerprint) -> Self {
        Self { program, predicate }
    }

    /// The on-disk file stem: `<program-hex>-<predicate-hex>`.
    pub fn file_stem(&self) -> String {
        format!("{}-{}", self.program.to_hex(), self.predicate.to_hex())
    }
}

// ---------------------------------------------------------------------------
// Shared wire helpers
// ---------------------------------------------------------------------------

fn put_bitset(w: &mut Writer, set: &BitSet) {
    w.put_words(set.as_words());
}

fn get_bitset(r: &mut Reader<'_>) -> Result<BitSet, CodecError> {
    Ok(BitSet::from_words(r.get_words()?))
}

fn put_invariants(w: &mut Writer, set: &InvariantSet) {
    // The invariant set already has a canonical, round-tripping text form
    // (paper §4.2 stores it as a text file); reuse it as the wire form.
    w.put_str(&set.to_text());
}

fn get_invariants(r: &mut Reader<'_>) -> Result<InvariantSet, CodecError> {
    InvariantSet::from_text(r.get_str()?).map_err(|e| CodecError::BadPayload(e.to_string()))
}

fn put_pt_stats(w: &mut Writer, s: &PtStats) {
    w.put_usize(s.nodes);
    w.put_usize(s.contexts);
    w.put_u32(s.clone_budget);
    w.put_usize(s.copy_edges);
    w.put_u64(s.solver_iterations);
    w.put_u64(s.cycle_collapses);
    w.put_u64(s.scc_collapses);
    w.put_u64(s.words_unioned);
    w.put_u64(s.worklist_pops);
    w.put_u64(s.shard_rounds);
    w.put_u64(s.shard_merge_ns);
    w.put_u64(s.serial_solves);
    w.put_u64(s.sharded_solves);
    w.put_u32(s.num_cells);
}

fn get_pt_stats(r: &mut Reader<'_>) -> Result<PtStats, CodecError> {
    Ok(PtStats {
        nodes: r.get_usize()?,
        contexts: r.get_usize()?,
        clone_budget: r.get_u32()?,
        copy_edges: r.get_usize()?,
        solver_iterations: r.get_u64()?,
        cycle_collapses: r.get_u64()?,
        scc_collapses: r.get_u64()?,
        words_unioned: r.get_u64()?,
        worklist_pops: r.get_u64()?,
        shard_rounds: r.get_u64()?,
        shard_merge_ns: r.get_u64()?,
        serial_solves: r.get_u64()?,
        sharded_solves: r.get_u64()?,
        num_cells: r.get_u32()?,
    })
}

fn put_race_stats(w: &mut Writer, s: &RaceStats) {
    w.put_usize(s.accesses);
    w.put_usize(s.candidate_pairs);
    w.put_usize(s.pruned_by_locks);
    w.put_usize(s.racy_accesses);
}

fn get_race_stats(r: &mut Reader<'_>) -> Result<RaceStats, CodecError> {
    Ok(RaceStats {
        accesses: r.get_usize()?,
        candidate_pairs: r.get_usize()?,
        pruned_by_locks: r.get_usize()?,
        racy_accesses: r.get_usize()?,
    })
}

fn put_slice_stats(w: &mut Writer, s: &SliceStats) {
    w.put_u64(s.visited);
    w.put_u64(s.dug_nodes);
    w.put_usize(s.contexts);
    w.put_u32(s.ctx_budget);
    w.put_u64(s.visit_budget);
}

fn get_slice_stats(r: &mut Reader<'_>) -> Result<SliceStats, CodecError> {
    Ok(SliceStats {
        visited: r.get_u64()?,
        dug_nodes: r.get_u64()?,
        contexts: r.get_usize()?,
        ctx_budget: r.get_u32()?,
        visit_budget: r.get_u64()?,
    })
}

fn put_sensitivity(w: &mut Writer, s: Sensitivity) {
    w.put_u8(match s {
        Sensitivity::ContextInsensitive => 0,
        Sensitivity::ContextSensitive => 1,
    });
}

fn get_sensitivity(r: &mut Reader<'_>) -> Result<Sensitivity, CodecError> {
    match r.get_u8()? {
        0 => Ok(Sensitivity::ContextInsensitive),
        1 => Ok(Sensitivity::ContextSensitive),
        t => Err(CodecError::BadTag(t)),
    }
}

fn put_races(w: &mut Writer, races: &StaticRaces) {
    put_bitset(w, races.racy_sites());
    w.put_u64(races.pairs().len() as u64);
    for &(a, b) in races.pairs() {
        w.put_u32(a.raw());
        w.put_u32(b.raw());
    }
    put_race_stats(w, &races.stats());
}

fn get_races(r: &mut Reader<'_>) -> Result<StaticRaces, CodecError> {
    let racy = get_bitset(r)?;
    let n = r.get_len(8)?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        pairs.push((InstId::new(r.get_u32()?), InstId::new(r.get_u32()?)));
    }
    let stats = get_race_stats(r)?;
    Ok(StaticRaces::from_parts(racy, pairs, stats))
}

fn put_slice(w: &mut Writer, slice: &StaticSlice) {
    put_bitset(w, slice.sites());
    put_slice_stats(w, &slice.stats());
}

fn get_slice(r: &mut Reader<'_>) -> Result<StaticSlice, CodecError> {
    let insts = get_bitset(r)?;
    let stats = get_slice_stats(r)?;
    Ok(StaticSlice::from_parts(insts, stats))
}

/// Serializes a full points-to result. Map entries are sorted by key so
/// the encoding is byte-deterministic regardless of hash-map iteration
/// order.
fn put_points_to(w: &mut Writer, pt: &PointsTo) {
    let registry = pt.registry();
    w.put_u64(registry.num_objects() as u64);
    for (obj, fields) in registry.objects() {
        match obj {
            AbsObj::Global(g) => {
                w.put_u8(0);
                w.put_u32(g.raw());
            }
            AbsObj::Heap { site, ctx } => {
                w.put_u8(1);
                w.put_u32(site.raw());
                w.put_u32(ctx);
            }
        }
        w.put_u32(fields);
    }

    let put_map = |w: &mut Writer, entries: &mut Vec<(InstId, &BitSet)>| {
        entries.sort_by_key(|(i, _)| i.raw());
        w.put_u64(entries.len() as u64);
        for (inst, set) in entries {
            w.put_u32(inst.raw());
            put_bitset(w, set);
        }
    };
    put_map(w, &mut pt.load_entries().collect());
    put_map(w, &mut pt.store_entries().collect());
    put_map(w, &mut pt.lock_entries().collect());

    let mut ctx: Vec<((InstId, u64), &BitSet)> = pt.ctx_entries().collect();
    ctx.sort_by_key(|&((i, h), _)| (i.raw(), h));
    w.put_u64(ctx.len() as u64);
    for ((inst, hash), set) in ctx {
        w.put_u32(inst.raw());
        w.put_u64(hash);
        put_bitset(w, set);
    }

    let callees: Vec<(InstId, &BTreeSet<FuncId>)> = pt.call_sites().collect();
    w.put_u64(callees.len() as u64);
    for (site, funcs) in callees {
        w.put_u32(site.raw());
        w.put_u64(funcs.len() as u64);
        for f in funcs {
            w.put_u32(f.raw());
        }
    }

    put_pt_stats(w, &pt.stats());
}

fn get_points_to(r: &mut Reader<'_>) -> Result<PointsTo, CodecError> {
    // Re-interning the objects in creation order reproduces identical cell
    // numbering (see `ObjRegistry::objects`), so the bit sets below refer
    // to the same cells they were built over.
    let mut registry = ObjRegistry::default();
    let n = r.get_len(5)?;
    for _ in 0..n {
        let obj = match r.get_u8()? {
            0 => AbsObj::Global(GlobalId::new(r.get_u32()?)),
            1 => AbsObj::Heap {
                site: InstId::new(r.get_u32()?),
                ctx: r.get_u32()?,
            },
            t => return Err(CodecError::BadTag(t)),
        };
        let fields = r.get_u32()?;
        registry.intern(obj, fields);
    }

    let get_map = |r: &mut Reader<'_>| -> Result<HashMap<InstId, BitSet>, CodecError> {
        let n = r.get_len(4)?;
        let mut map = HashMap::with_capacity(n);
        for _ in 0..n {
            let inst = InstId::new(r.get_u32()?);
            map.insert(inst, get_bitset(r)?);
        }
        Ok(map)
    };
    let loads = get_map(r)?;
    let stores = get_map(r)?;
    let locks = get_map(r)?;

    let n = r.get_len(12)?;
    let mut per_ctx = HashMap::with_capacity(n);
    for _ in 0..n {
        let inst = InstId::new(r.get_u32()?);
        let hash = r.get_u64()?;
        per_ctx.insert((inst, hash), get_bitset(r)?);
    }

    let n = r.get_len(12)?;
    let mut callees: BTreeMap<InstId, BTreeSet<FuncId>> = BTreeMap::new();
    for _ in 0..n {
        let site = InstId::new(r.get_u32()?);
        let m = r.get_len(4)?;
        let mut funcs = BTreeSet::new();
        for _ in 0..m {
            funcs.insert(FuncId::new(r.get_u32()?));
        }
        callees.insert(site, funcs);
    }

    let stats = get_pt_stats(r)?;
    Ok(PointsTo::from_parts(
        registry, loads, stores, locks, per_ctx, callees, stats,
    ))
}

// ---------------------------------------------------------------------------
// Artifacts
// ---------------------------------------------------------------------------

/// A cached profiling phase: the merged likely-invariant set of one
/// profiling corpus, before lock-elision validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileArtifact {
    /// The merged invariant set ([`InvariantSet::from_profiles`] output).
    pub invariants: InvariantSet,
    /// Profiling runs consumed before the set stabilized.
    pub runs_used: u64,
    /// Wall time the cold profiling phase took, for cached-span reporting.
    pub profile_ns: u64,
}

impl ProfileArtifact {
    /// Serializes to the wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        put_invariants(&mut w, &self.invariants);
        w.put_u64(self.runs_used);
        w.put_u64(self.profile_ns);
        w.into_bytes()
    }

    /// Parses the wire form. Total over arbitrary bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let artifact = Self {
            invariants: get_invariants(&mut r)?,
            runs_used: r.get_u64()?,
            profile_ns: r.get_u64()?,
        };
        expect_done(&r)?;
        Ok(artifact)
    }
}

/// OptFT's cached static phase: everything `Pipeline::run_optft` computes
/// between profiling and the speculative dynamic runs.
#[derive(Clone, Debug)]
pub struct OptFtArtifact {
    /// The final invariant set, with the validated elidable-lock set
    /// filled in (§4.2.4).
    pub invariants: InvariantSet,
    /// Profiling runs consumed before the invariant set stabilized.
    pub profiling_runs_used: u64,
    /// Sound static race detection (the traditional-hybrid input).
    pub races_sound: StaticRaces,
    /// Predicated static race detection (OptFT's input).
    pub races_pred: StaticRaces,
    /// Sound points-to size stats (for metric parity on warm runs).
    pub pt_sound_stats: PtStats,
    /// The predicated points-to result, in full.
    pub pt_pred: PointsTo,
    /// Cold-run phase durations, replayed into warm reports as cached
    /// span statistics.
    pub profile_ns: u64,
    /// Sound static analysis duration on the cold run.
    pub sound_static_ns: u64,
    /// Predicated static analysis duration on the cold run.
    pub pred_static_ns: u64,
    /// Lock-elision validation duration on the cold run.
    pub elide_ns: u64,
}

impl OptFtArtifact {
    /// Serializes to the wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        put_invariants(&mut w, &self.invariants);
        w.put_u64(self.profiling_runs_used);
        put_races(&mut w, &self.races_sound);
        put_races(&mut w, &self.races_pred);
        put_pt_stats(&mut w, &self.pt_sound_stats);
        put_points_to(&mut w, &self.pt_pred);
        w.put_u64(self.profile_ns);
        w.put_u64(self.sound_static_ns);
        w.put_u64(self.pred_static_ns);
        w.put_u64(self.elide_ns);
        w.into_bytes()
    }

    /// Parses the wire form. Total over arbitrary bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let artifact = Self {
            invariants: get_invariants(&mut r)?,
            profiling_runs_used: r.get_u64()?,
            races_sound: get_races(&mut r)?,
            races_pred: get_races(&mut r)?,
            pt_sound_stats: get_pt_stats(&mut r)?,
            pt_pred: get_points_to(&mut r)?,
            profile_ns: r.get_u64()?,
            sound_static_ns: r.get_u64()?,
            pred_static_ns: r.get_u64()?,
            elide_ns: r.get_u64()?,
        };
        expect_done(&r)?;
        Ok(artifact)
    }
}

/// One static side (sound or predicated) of a cached OptSlice phase.
#[derive(Clone, Debug)]
pub struct StaticSideArtifact {
    /// The most accurate points-to analysis that completed.
    pub points_to_at: Sensitivity,
    /// Cold-run points-to duration.
    pub points_to_ns: u64,
    /// The most accurate slicer that completed.
    pub slice_at: Sensitivity,
    /// Cold-run slicing duration.
    pub slice_ns: u64,
    /// The static slice closure.
    pub slice: StaticSlice,
    /// Load/store alias rate (on the sound side, already restricted per
    /// the paper's §6.3 fairness rule).
    pub alias_rate: f64,
    /// Points-to size stats (for metric parity on warm runs).
    pub pt_stats: PtStats,
}

impl StaticSideArtifact {
    fn put(&self, w: &mut Writer) {
        put_sensitivity(w, self.points_to_at);
        w.put_u64(self.points_to_ns);
        put_sensitivity(w, self.slice_at);
        w.put_u64(self.slice_ns);
        put_slice(w, &self.slice);
        w.put_f64(self.alias_rate);
        put_pt_stats(w, &self.pt_stats);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            points_to_at: get_sensitivity(r)?,
            points_to_ns: r.get_u64()?,
            slice_at: get_sensitivity(r)?,
            slice_ns: r.get_u64()?,
            slice: get_slice(r)?,
            alias_rate: r.get_f64()?,
            pt_stats: get_pt_stats(r)?,
        })
    }
}

/// OptSlice's cached static phase: both Table-2 sides plus the predicated
/// points-to result. The key's predicate half must cover the slice
/// endpoints — two requests with different endpoints are different
/// artifacts.
#[derive(Clone, Debug)]
pub struct OptSliceArtifact {
    /// The merged invariant set.
    pub invariants: InvariantSet,
    /// Profiling runs consumed before the invariant set stabilized.
    pub profiling_runs_used: u64,
    /// Cold-run profiling duration.
    pub profile_ns: u64,
    /// The sound static side.
    pub sound: StaticSideArtifact,
    /// The predicated static side.
    pub pred: StaticSideArtifact,
    /// The predicated points-to result, in full.
    pub pt_pred: PointsTo,
}

impl OptSliceArtifact {
    /// Serializes to the wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        put_invariants(&mut w, &self.invariants);
        w.put_u64(self.profiling_runs_used);
        w.put_u64(self.profile_ns);
        self.sound.put(&mut w);
        self.pred.put(&mut w);
        put_points_to(&mut w, &self.pt_pred);
        w.into_bytes()
    }

    /// Parses the wire form. Total over arbitrary bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let artifact = Self {
            invariants: get_invariants(&mut r)?,
            profiling_runs_used: r.get_u64()?,
            profile_ns: r.get_u64()?,
            sound: StaticSideArtifact::get(&mut r)?,
            pred: StaticSideArtifact::get(&mut r)?,
            pt_pred: get_points_to(&mut r)?,
        };
        expect_done(&r)?;
        Ok(artifact)
    }
}

/// Trailing garbage means the bytes are not a faithful encoding.
fn expect_done(r: &Reader<'_>) -> Result<(), CodecError> {
    if r.is_done() {
        Ok(())
    } else {
        Err(CodecError::BadLength(r.remaining() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_ir::{Operand, ProgramBuilder};
    use oha_pointsto::{analyze, PointsToConfig};
    use Operand::{Const, Reg as R};

    fn sample_program() -> oha_ir::Program {
        let mut pb = ProgramBuilder::new();
        pb.global("g", 2);
        let callee = pb.declare("callee", 0);
        let mut m = pb.function("main", 0);
        let a = m.alloc(2);
        m.store(R(a), 0, Const(1));
        let v = m.load(R(a), 0);
        m.output(R(v));
        let c = m.call(callee, vec![]);
        m.store(R(c), 0, Const(2));
        m.ret(None);
        let main = pb.finish_function(m);
        let mut f = pb.function("callee", 0);
        let o = f.alloc(1);
        f.ret(Some(R(o)));
        pb.finish_function(f);
        pb.finish(main).unwrap()
    }

    fn assert_pt_equivalent(a: &PointsTo, b: &PointsTo) {
        assert_eq!(a.registry().num_cells(), b.registry().num_cells());
        assert_eq!(a.registry().num_objects(), b.registry().num_objects());
        let mut la: Vec<_> = a.load_entries().map(|(i, s)| (i, s.clone())).collect();
        let mut lb: Vec<_> = b.load_entries().map(|(i, s)| (i, s.clone())).collect();
        la.sort_by_key(|(i, _)| i.raw());
        lb.sort_by_key(|(i, _)| i.raw());
        assert_eq!(la, lb);
        assert_eq!(a.stats(), b.stats());
        let sites: Vec<_> = a.call_sites().map(|(i, s)| (i, s.clone())).collect();
        let sites_b: Vec<_> = b.call_sites().map(|(i, s)| (i, s.clone())).collect();
        assert_eq!(sites, sites_b);
    }

    #[test]
    fn points_to_round_trips_and_is_deterministic() {
        let p = sample_program();
        let pt = analyze(&p, &PointsToConfig::default()).unwrap();
        let mut w = Writer::new();
        put_points_to(&mut w, &pt);
        let bytes = w.into_bytes();

        let mut w2 = Writer::new();
        put_points_to(&mut w2, &pt);
        assert_eq!(bytes, w2.into_bytes(), "encoding must be byte-stable");

        let decoded = get_points_to(&mut Reader::new(&bytes)).unwrap();
        assert_pt_equivalent(&pt, &decoded);

        // Re-encoding the decoded result reproduces the same bytes.
        let mut w3 = Writer::new();
        put_points_to(&mut w3, &decoded);
        assert_eq!(bytes, w3.into_bytes());
    }

    #[test]
    fn profile_artifact_round_trips() {
        let mut invariants = InvariantSet::default();
        invariants.visited_blocks.insert(oha_ir::BlockId::new(3));
        invariants.singleton_spawns.insert(InstId::new(9));
        invariants.num_profiles = 4;
        let artifact = ProfileArtifact {
            invariants,
            runs_used: 4,
            profile_ns: 123_456,
        };
        let bytes = artifact.encode();
        assert_eq!(ProfileArtifact::decode(&bytes).unwrap(), artifact);
    }

    #[test]
    fn optft_artifact_round_trips() {
        let p = sample_program();
        let pt = analyze(&p, &PointsToConfig::default()).unwrap();
        let mut racy = BitSet::new();
        racy.insert(2);
        racy.insert(64);
        let races = StaticRaces::from_parts(
            racy,
            vec![(InstId::new(2), InstId::new(64))],
            RaceStats {
                accesses: 10,
                candidate_pairs: 3,
                pruned_by_locks: 2,
                racy_accesses: 2,
            },
        );
        let artifact = OptFtArtifact {
            invariants: InvariantSet::default(),
            profiling_runs_used: 6,
            races_sound: races.clone(),
            races_pred: races,
            pt_sound_stats: pt.stats(),
            pt_pred: pt,
            profile_ns: 1,
            sound_static_ns: 2,
            pred_static_ns: 3,
            elide_ns: 4,
        };
        let bytes = artifact.encode();
        let decoded = OptFtArtifact::decode(&bytes).unwrap();
        assert_eq!(decoded.invariants, artifact.invariants);
        assert_eq!(decoded.profiling_runs_used, 6);
        assert_eq!(
            decoded.races_sound.racy_sites(),
            artifact.races_sound.racy_sites()
        );
        assert_eq!(decoded.races_pred.pairs(), artifact.races_pred.pairs());
        assert_eq!(decoded.races_pred.stats(), artifact.races_pred.stats());
        assert_pt_equivalent(&decoded.pt_pred, &artifact.pt_pred);
        assert_eq!(decoded.elide_ns, 4);
        // Byte-stable re-encode.
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn optslice_artifact_round_trips() {
        let p = sample_program();
        let pt = analyze(&p, &PointsToConfig::default()).unwrap();
        let mut insts = BitSet::new();
        insts.insert(0);
        insts.insert(5);
        let side = StaticSideArtifact {
            points_to_at: Sensitivity::ContextSensitive,
            points_to_ns: 11,
            slice_at: Sensitivity::ContextInsensitive,
            slice_ns: 22,
            slice: StaticSlice::from_parts(
                insts,
                SliceStats {
                    visited: 9,
                    dug_nodes: 5,
                    contexts: 1,
                    ctx_budget: 64,
                    visit_budget: 1000,
                },
            ),
            alias_rate: 0.125,
            pt_stats: pt.stats(),
        };
        let artifact = OptSliceArtifact {
            invariants: InvariantSet::default(),
            profiling_runs_used: 3,
            profile_ns: 7,
            sound: side.clone(),
            pred: side,
            pt_pred: pt,
        };
        let bytes = artifact.encode();
        let decoded = OptSliceArtifact::decode(&bytes).unwrap();
        assert_eq!(decoded.sound.points_to_at, Sensitivity::ContextSensitive);
        assert_eq!(decoded.pred.slice_at, Sensitivity::ContextInsensitive);
        assert_eq!(decoded.pred.slice.sites(), artifact.pred.slice.sites());
        assert_eq!(decoded.pred.slice.stats(), artifact.pred.slice.stats());
        assert_eq!(decoded.sound.alias_rate, 0.125);
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn decode_never_panics_on_mutations() {
        let artifact = ProfileArtifact {
            invariants: InvariantSet::default(),
            runs_used: 1,
            profile_ns: 2,
        };
        let bytes = artifact.encode();
        // Truncations.
        for cut in 0..bytes.len() {
            let _ = ProfileArtifact::decode(&bytes[..cut]);
        }
        // Single-byte corruptions.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xa5;
            let _ = ProfileArtifact::decode(&bad);
        }
        // Trailing garbage is rejected.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(ProfileArtifact::decode(&extended).is_err());
    }

    #[test]
    fn artifact_key_file_stem_is_hex_pair() {
        let key = ArtifactKey::new(
            Fingerprint::of_bytes(b"program"),
            Fingerprint::of_bytes(b"predicate"),
        );
        let stem = key.file_stem();
        let (a, b) = stem.split_once('-').unwrap();
        assert_eq!(Fingerprint::from_hex(a), Some(key.program));
        assert_eq!(Fingerprint::from_hex(b), Some(key.predicate));
    }

    #[test]
    fn kind_tags_round_trip() {
        for kind in ArtifactKind::ALL {
            assert_eq!(ArtifactKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(ArtifactKind::from_tag(0), None);
        assert_eq!(ArtifactKind::from_tag(99), None);
    }
}
