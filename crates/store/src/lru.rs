//! A small least-recently-used map — the in-memory front the daemon puts
//! in front of the disk store.

use std::collections::HashMap;
use std::hash::Hash;

/// A bounded map evicting the least-recently-*used* entry on overflow.
///
/// Recency is a monotone tick bumped on every `get`/`insert` touch;
/// eviction scans for the minimum tick. That is O(capacity), which is the
/// right trade for the daemon's front cache (tens to a few thousand
/// entries, each saving a full static analysis): no intrusive list, no
/// unsafe.
#[derive(Clone, Debug)]
pub struct Lru<K, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, (V, u64)>,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// An empty cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        Self {
            capacity,
            tick: 0,
            map: HashMap::with_capacity(capacity.min(1024)),
            evictions: 0,
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entries evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some((v, t)) => {
                *t = tick;
                Some(&*v)
            }
            None => None,
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry if the cache is full. Returns the evicted value, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.tick += 1;
        if let Some(slot) = self.map.get_mut(&key) {
            let old = std::mem::replace(slot, (value, self.tick));
            return Some(old.0);
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| k.clone())
            {
                evicted = self.map.remove(&victim).map(|(v, _)| v);
                self.evictions += 1;
            }
        }
        self.map.insert(key, (value, self.tick));
        evicted
    }

    /// Removes `key` without counting an eviction (used for
    /// invalidation).
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.map.remove(key).map(|(v, _)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = Lru::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.get(&"a"), Some(&1)); // refresh a; b is now LRU
        lru.insert("c", 3);
        assert_eq!(lru.get(&"b"), None, "b evicted");
        assert_eq!(lru.get(&"a"), Some(&1));
        assert_eq!(lru.get(&"c"), Some(&3));
        assert_eq!(lru.evictions(), 1);
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let mut lru = Lru::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.insert("a", 10), Some(1), "old value returned");
        assert_eq!(lru.evictions(), 0);
        lru.insert("c", 3);
        assert_eq!(lru.get(&"b"), None, "b was LRU after a's refresh");
        assert_eq!(lru.get(&"a"), Some(&10));
    }

    #[test]
    fn remove_does_not_count_as_eviction() {
        let mut lru = Lru::new(4);
        lru.insert(1u32, "x");
        assert_eq!(lru.remove(&1), Some("x"));
        assert_eq!(lru.remove(&1), None);
        assert_eq!(lru.evictions(), 0);
        assert!(lru.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = Lru::<u32, u32>::new(0);
    }
}
