//! A hand-rolled, versioned binary codec.
//!
//! The workspace is zero-dependency, so artifacts are serialized with a
//! small explicit writer/reader pair instead of serde. All integers are
//! little-endian; lengths are `u64` prefixes validated against the bytes
//! that remain, so a truncated or bit-flipped file produces a
//! [`CodecError`], never a panic or an over-allocation.

use std::error::Error;
use std::fmt;

/// A decode failure. Every variant is a *recoverable* cache miss: the
/// store treats it as "artifact absent" and re-analyzes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value did.
    Truncated,
    /// A length prefix exceeds the bytes that remain.
    BadLength(u64),
    /// An enum tag byte has no corresponding variant.
    BadTag(u8),
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// A structured text payload (e.g. an invariant set) failed its own
    /// parser.
    BadPayload(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::BadLength(n) => write!(f, "length prefix {n} exceeds remaining input"),
            CodecError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            CodecError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            CodecError::BadPayload(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl Error for CodecError {}

/// Append-only byte writer.
#[derive(Clone, Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u128`, little-endian.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian two's complement.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Writes a length-prefixed `u64` word array (the [`oha_dataflow::BitSet`]
    /// wire form).
    pub fn put_words(&mut self, words: &[u64]) {
        self.put_u64(words.len() as u64);
        for &w in words {
            self.put_u64(w);
        }
    }
}

/// Bounds-checked byte reader over a borrowed slice.
#[derive(Clone, Copy, Debug)]
pub struct Reader<'a> {
    rest: &'a [u8],
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { rest: bytes }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    /// Whether all input has been consumed.
    pub fn is_done(&self) -> bool {
        self.rest.is_empty()
    }

    /// Consumes exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if n > self.rest.len() {
            return Err(CodecError::Truncated);
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any byte other than 0/1 is a [`CodecError::BadTag`].
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CodecError::BadTag(t)),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `u128`.
    pub fn get_u128(&mut self) -> Result<u128, CodecError> {
        let b = self.take(16)?;
        Ok(u128::from_le_bytes(b.try_into().expect("16 bytes")))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `u64` length prefix and validates that `len * elem_size`
    /// bytes (at least) remain, rejecting hostile or corrupt lengths before
    /// any allocation.
    pub fn get_len(&mut self, elem_size: usize) -> Result<usize, CodecError> {
        let n = self.get_u64()?;
        let need = n
            .checked_mul(elem_size.max(1) as u64)
            .ok_or(CodecError::BadLength(n))?;
        if need > self.rest.len() as u64 {
            return Err(CodecError::BadLength(n));
        }
        Ok(n as usize)
    }

    /// Reads a `usize` stored as `u64`.
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        Ok(self.get_u64()? as usize)
    }

    /// Reads a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.get_len(1)?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| CodecError::BadUtf8)
    }

    /// Reads a length-prefixed `u64` word array.
    pub fn get_words(&mut self) -> Result<Vec<u64>, CodecError> {
        let n = self.get_len(8)?;
        let mut words = Vec::with_capacity(n);
        for _ in 0..n {
            words.push(self.get_u64()?);
        }
        Ok(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 3);
        w.put_u128(1u128 << 100);
        w.put_i64(-42);
        w.put_f64(0.25);
        w.put_str("héllo");
        w.put_words(&[1, 0, u64::MAX]);
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_u128().unwrap(), 1u128 << 100);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), 0.25);
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_words().unwrap(), vec![1, 0, u64::MAX]);
        assert!(r.is_done());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.put_u64(123);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert_eq!(r.get_u64(), Err(CodecError::Truncated));
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // claims ~2^64 elements
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_words(), Err(CodecError::BadLength(_))));
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_bytes(), Err(CodecError::BadLength(_))));
    }

    #[test]
    fn bad_bool_is_a_tag_error() {
        let mut r = Reader::new(&[9]);
        assert_eq!(r.get_bool(), Err(CodecError::BadTag(9)));
    }

    #[test]
    fn bad_utf8_is_reported() {
        let mut w = Writer::new();
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_str(), Err(CodecError::BadUtf8));
    }
}
