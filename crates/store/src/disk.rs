//! The on-disk store: versioned headers, checksums, atomic writes,
//! corruption-as-miss.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! magic[8] = "OHASTORE"
//! version  : u32      — FORMAT_VERSION at write time
//! kind     : u8       — ArtifactKind tag
//! length   : u64      — payload byte count
//! payload  : [u8; length]
//! checksum : [u8; 16] — 128-bit FNV-1a fingerprint of the payload
//! ```
//!
//! Every anomaly — short file, bad magic, version mismatch, kind
//! mismatch, length mismatch, checksum mismatch, undecodable payload —
//! is accounted in [`StoreStats`] and reported to the caller as a *miss*:
//! the pipeline re-analyzes and overwrites. Nothing here panics on
//! hostile bytes, and a corrupt entry is never served.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use oha_faults::{sites, FaultPlan};
use oha_ir::Fingerprint;

use crate::artifacts::{
    ArtifactKey, ArtifactKind, OptFtArtifact, OptSliceArtifact, ProfileArtifact,
};

/// Bump when the header or any artifact wire layout changes. Old files
/// then read as misses and are overwritten by the re-analysis.
/// v2: `PtStats` gained the sharded-solver counters.
pub const FORMAT_VERSION: u32 = 2;

const MAGIC: &[u8; 8] = b"OHASTORE";
/// magic + version + kind + length.
const HEADER_LEN: usize = 8 + 4 + 1 + 8;
const CHECKSUM_LEN: usize = 16;

/// Cumulative store counters. All atomic: the store is shared across the
/// daemon's worker threads behind an `Arc`.
#[derive(Debug, Default)]
pub struct StoreStats {
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    corruptions: AtomicU64,
    version_mismatches: AtomicU64,
    invalidations: AtomicU64,
    stale_tmp_cleaned: AtomicU64,
}

/// A point-in-time copy of [`StoreStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStatsSnapshot {
    /// Artifacts served from disk.
    pub hits: u64,
    /// Lookups that found no (usable) entry.
    pub misses: u64,
    /// Artifacts written.
    pub writes: u64,
    /// Entries rejected as corrupt (truncated, bit-flipped, undecodable).
    pub corruptions: u64,
    /// Entries rejected for a format-version mismatch.
    pub version_mismatches: u64,
    /// Entries explicitly invalidated (rollback on a warm hit).
    pub invalidations: u64,
    /// Temp files left by dead writers (crashed between temp-write and
    /// rename) that [`Store::open`] swept away.
    pub stale_tmp_cleaned: u64,
}

impl StoreStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy for reporting.
    pub fn snapshot(&self) -> StoreStatsSnapshot {
        StoreStatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            corruptions: self.corruptions.load(Ordering::Relaxed),
            version_mismatches: self.version_mismatches.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            stale_tmp_cleaned: self.stale_tmp_cleaned.load(Ordering::Relaxed),
        }
    }
}

impl StoreStatsSnapshot {
    /// Publishes the counters under `<prefix>.` in an observability
    /// registry (`store.hits`, `store.misses`, …).
    pub fn record(&self, registry: &oha_obs::MetricsRegistry, prefix: &str) {
        registry.set_gauge(&format!("{prefix}.hits"), self.hits as f64);
        registry.set_gauge(&format!("{prefix}.misses"), self.misses as f64);
        registry.set_gauge(&format!("{prefix}.writes"), self.writes as f64);
        registry.set_gauge(&format!("{prefix}.corruptions"), self.corruptions as f64);
        registry.set_gauge(
            &format!("{prefix}.version_mismatches"),
            self.version_mismatches as f64,
        );
        registry.set_gauge(
            &format!("{prefix}.invalidations"),
            self.invalidations as f64,
        );
        registry.set_gauge(
            &format!("{prefix}.stale_tmp_cleaned"),
            self.stale_tmp_cleaned as f64,
        );
    }
}

/// Temp-file sequence, process-wide: two `Store` handles over the same
/// directory (two pipelines, or a store plus a daemon, in one process)
/// must not both claim `pid-0.tmp`.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A content-addressed, persistent artifact store rooted at one
/// directory, with one subdirectory per [`ArtifactKind`].
///
/// Thread-safe: all methods take `&self`, counters are atomic, and writes
/// are atomic renames — concurrent writers of the same key race benignly
/// (equal keys imply equal artifacts, so either rename wins and the file
/// is whole either way).
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    stats: StoreStats,
    faults: FaultPlan,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`, honoring the
    /// `OHA_FAULTS` fault-injection override (disabled when unset).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directories cannot be
    /// created.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        Self::open_with(root, FaultPlan::from_env())
    }

    /// Opens a store with an explicit fault plan (tests and the daemon
    /// share one plan across the whole serving path).
    ///
    /// Opening also sweeps the temp directory: a writer that died between
    /// its temp write and the rename (the crash-consistency window)
    /// leaves a `pid-n.tmp` file behind, and any such file whose writing
    /// process no longer exists is deleted here — it can never be
    /// renamed into place, and the half-written bytes must not
    /// accumulate. Temp files of *live* writers (a second daemon sharing
    /// this directory) are left alone.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directories cannot be
    /// created.
    pub fn open_with(root: impl Into<PathBuf>, faults: FaultPlan) -> io::Result<Self> {
        let root = root.into();
        for kind in ArtifactKind::ALL {
            fs::create_dir_all(root.join(kind.dir_name()))?;
        }
        fs::create_dir_all(root.join("tmp"))?;
        let store = Self {
            root,
            stats: StoreStats::default(),
            faults,
        };
        store.sweep_stale_tmp();
        Ok(store)
    }

    /// Removes temp files whose writer process is dead. Best-effort: any
    /// I/O error (or an unreadable temp directory) just leaves files in
    /// place for a later open.
    fn sweep_stale_tmp(&self) {
        let Ok(entries) = fs::read_dir(self.root.join("tmp")) else {
            return;
        };
        let own_pid = std::process::id();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".tmp")) else {
                continue;
            };
            let Some(pid) = stem.split('-').next().and_then(|p| p.parse::<u32>().ok()) else {
                continue;
            };
            if pid == own_pid || writer_is_alive(pid) {
                continue;
            }
            if fs::remove_file(entry.path()).is_ok() {
                StoreStats::bump(&self.stats.stale_tmp_cleaned);
            }
        }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The cumulative counters.
    pub fn stats(&self) -> StoreStatsSnapshot {
        self.stats.snapshot()
    }

    /// The fault plan this store rolls against (disabled by default).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    fn path_for(&self, kind: ArtifactKind, key: &ArtifactKey) -> PathBuf {
        self.root
            .join(kind.dir_name())
            .join(format!("{}.oha", key.file_stem()))
    }

    /// Whether an entry exists on disk (no validation; for tests and
    /// diagnostics).
    pub fn contains(&self, kind: ArtifactKind, key: &ArtifactKey) -> bool {
        self.path_for(kind, key).exists()
    }

    /// Loads and validates an entry's payload. Any anomaly is a `None`
    /// plus the matching counter; corrupt files are additionally deleted
    /// so the follow-up write starts clean.
    pub fn load(&self, kind: ArtifactKind, key: &ArtifactKey) -> Option<Vec<u8>> {
        let path = self.path_for(kind, key);
        if self.faults.should_inject(sites::STORE_READ_ERROR) {
            StoreStats::bump(&self.stats.misses);
            return None;
        }
        let mut bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                StoreStats::bump(&self.stats.misses);
                return None;
            }
        };
        if !bytes.is_empty() && self.faults.should_inject(sites::STORE_READ_CORRUPT) {
            // Bit rot on the read path: flip one payload-region bit and
            // let the checksum discipline below prove it is caught.
            let at = bytes.len() / 2;
            bytes[at] ^= 0x40;
        }
        match validate(&bytes, kind) {
            Ok(payload) => {
                StoreStats::bump(&self.stats.hits);
                Some(payload.to_vec())
            }
            Err(Anomaly::VersionMismatch) => {
                StoreStats::bump(&self.stats.version_mismatches);
                StoreStats::bump(&self.stats.misses);
                None
            }
            Err(Anomaly::Corrupt) => {
                StoreStats::bump(&self.stats.corruptions);
                StoreStats::bump(&self.stats.misses);
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Writes an entry atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; callers treat a failed write as
    /// "cache disabled for this artifact" and carry on.
    pub fn save(&self, kind: ArtifactKind, key: &ArtifactKey, payload: &[u8]) -> io::Result<()> {
        if self.faults.should_inject(sites::STORE_WRITE_ERROR) {
            return Err(injected(sites::STORE_WRITE_ERROR));
        }
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.push(kind.tag());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(payload);
        bytes.extend_from_slice(&Fingerprint::of_bytes(payload).to_le_bytes());
        if self.faults.should_inject(sites::STORE_WRITE_SHORT) {
            // A lying disk: the write "succeeds" but half the bytes are
            // gone. The torn entry reaches the final path and must be
            // caught (checksum), dropped, and recomputed on next load.
            bytes.truncate(bytes.len() / 2);
        }

        let tmp = self.root.join("tmp").join(format!(
            "{}-{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, &bytes)?;
        if self.faults.should_inject(sites::STORE_CRASH_BEFORE_RENAME) {
            // The crash-consistency window: die like `kill -9` (no
            // destructors, no flushing) with the temp written and the
            // rename not yet issued. A restart on the same directory
            // must sweep the orphan and recompute.
            std::process::abort();
        }
        if self.faults.should_inject(sites::STORE_RENAME_DELAY) {
            std::thread::sleep(self.faults.delay());
        }
        if self.faults.should_inject(sites::STORE_RENAME_ERROR) {
            let _ = fs::remove_file(&tmp);
            return Err(injected(sites::STORE_RENAME_ERROR));
        }
        let path = self.path_for(kind, key);
        match fs::rename(&tmp, &path) {
            Ok(()) => {
                StoreStats::bump(&self.stats.writes);
                Ok(())
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Removes an entry (e.g. after a rollback proved its predicate
    /// violated). Returns whether a file was deleted.
    pub fn invalidate(&self, kind: ArtifactKind, key: &ArtifactKey) -> bool {
        let removed = fs::remove_file(self.path_for(kind, key)).is_ok();
        if removed {
            StoreStats::bump(&self.stats.invalidations);
        }
        removed
    }

    /// Typed load: a profile artifact, or `None` on any miss/corruption.
    pub fn load_profile(&self, key: &ArtifactKey) -> Option<ProfileArtifact> {
        self.load_typed(ArtifactKind::Profile, key, ProfileArtifact::decode)
    }

    /// Typed save of a profile artifact.
    pub fn save_profile(&self, key: &ArtifactKey, artifact: &ProfileArtifact) -> io::Result<()> {
        self.save(ArtifactKind::Profile, key, &artifact.encode())
    }

    /// Typed load: an OptFT static-phase artifact.
    pub fn load_optft(&self, key: &ArtifactKey) -> Option<OptFtArtifact> {
        self.load_typed(ArtifactKind::OptFt, key, OptFtArtifact::decode)
    }

    /// Typed save of an OptFT static-phase artifact.
    pub fn save_optft(&self, key: &ArtifactKey, artifact: &OptFtArtifact) -> io::Result<()> {
        self.save(ArtifactKind::OptFt, key, &artifact.encode())
    }

    /// Typed load: an OptSlice static-phase artifact.
    pub fn load_optslice(&self, key: &ArtifactKey) -> Option<OptSliceArtifact> {
        self.load_typed(ArtifactKind::OptSlice, key, OptSliceArtifact::decode)
    }

    /// Typed save of an OptSlice static-phase artifact.
    pub fn save_optslice(&self, key: &ArtifactKey, artifact: &OptSliceArtifact) -> io::Result<()> {
        self.save(ArtifactKind::OptSlice, key, &artifact.encode())
    }

    fn load_typed<T, E>(
        &self,
        kind: ArtifactKind,
        key: &ArtifactKey,
        decode: impl FnOnce(&[u8]) -> Result<T, E>,
    ) -> Option<T> {
        let payload = self.load(kind, key)?;
        match decode(&payload) {
            Ok(artifact) => Some(artifact),
            Err(_) => {
                // Header and checksum were fine but the payload is not a
                // faithful encoding (e.g. written by a buggy build):
                // account it as corruption, drop the file, miss.
                StoreStats::bump(&self.stats.corruptions);
                StoreStats::bump(&self.stats.misses);
                // The hit recorded by `load` was premature; it is left in
                // place — `hits` counts checksum-valid reads, and the
                // corruption counter flags the decode failure.
                let _ = fs::remove_file(self.path_for(kind, key));
                None
            }
        }
    }
}

/// An injected I/O error, clearly labelled so logs distinguish chaos
/// from genuine disk trouble.
fn injected(site: &str) -> io::Error {
    io::Error::other(format!("injected fault: {site}"))
}

/// Whether the process that owns a temp file still exists. On Linux,
/// `/proc/<pid>` answers directly; where `/proc` is absent the check
/// errs on the side of "alive" (the file is kept for a later sweep).
fn writer_is_alive(pid: u32) -> bool {
    let proc_root = Path::new("/proc");
    if !proc_root.exists() {
        return true;
    }
    proc_root.join(pid.to_string()).exists()
}

enum Anomaly {
    Corrupt,
    VersionMismatch,
}

fn validate(bytes: &[u8], kind: ArtifactKind) -> Result<&[u8], Anomaly> {
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(Anomaly::Corrupt);
    }
    if &bytes[..8] != MAGIC {
        return Err(Anomaly::Corrupt);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(Anomaly::VersionMismatch);
    }
    if bytes[12] != kind.tag() {
        return Err(Anomaly::Corrupt);
    }
    let length = u64::from_le_bytes(bytes[13..21].try_into().expect("8 bytes"));
    let expected = (bytes.len() - HEADER_LEN - CHECKSUM_LEN) as u64;
    if length != expected {
        return Err(Anomaly::Corrupt);
    }
    let payload = &bytes[HEADER_LEN..bytes.len() - CHECKSUM_LEN];
    let trailer: [u8; 16] = bytes[bytes.len() - CHECKSUM_LEN..]
        .try_into()
        .expect("16 bytes");
    if Fingerprint::of_bytes(payload) != Fingerprint::from_le_bytes(trailer) {
        return Err(Anomaly::Corrupt);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_invariants::InvariantSet;

    fn tmp_root(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("oha-store-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u8) -> ArtifactKey {
        ArtifactKey::new(Fingerprint::of_bytes(&[n]), Fingerprint::of_bytes(&[n, n]))
    }

    #[test]
    fn save_load_round_trip_and_counters() {
        let store = Store::open(tmp_root("roundtrip")).unwrap();
        let k = key(1);
        assert!(store.load(ArtifactKind::Profile, &k).is_none());
        assert_eq!(store.stats().misses, 1);

        store.save(ArtifactKind::Profile, &k, b"payload").unwrap();
        assert_eq!(store.load(ArtifactKind::Profile, &k).unwrap(), b"payload");
        let s = store.stats();
        assert_eq!((s.hits, s.writes), (1, 1));
        assert_eq!(s.corruptions, 0);

        // Persistence across handles (a fresh `Store` over the same root).
        let reopened = Store::open(store.root().to_path_buf()).unwrap();
        assert_eq!(
            reopened.load(ArtifactKind::Profile, &k).unwrap(),
            b"payload"
        );
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn kinds_do_not_collide() {
        let store = Store::open(tmp_root("kinds")).unwrap();
        let k = key(2);
        store.save(ArtifactKind::Profile, &k, b"profile").unwrap();
        assert!(store.load(ArtifactKind::OptFt, &k).is_none());
        assert_eq!(store.load(ArtifactKind::Profile, &k).unwrap(), b"profile");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn invalidate_removes_and_counts() {
        let store = Store::open(tmp_root("invalidate")).unwrap();
        let k = key(3);
        store.save(ArtifactKind::OptFt, &k, b"x").unwrap();
        assert!(store.invalidate(ArtifactKind::OptFt, &k));
        assert!(!store.invalidate(ArtifactKind::OptFt, &k), "already gone");
        assert_eq!(store.stats().invalidations, 1);
        assert!(store.load(ArtifactKind::OptFt, &k).is_none());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn undecodable_payload_is_corruption_not_panic() {
        let store = Store::open(tmp_root("undecodable")).unwrap();
        let k = key(4);
        // Checksum-valid file whose payload is not a ProfileArtifact.
        store
            .save(ArtifactKind::Profile, &k, b"not an artifact")
            .unwrap();
        assert!(store.load_profile(&k).is_none());
        assert_eq!(store.stats().corruptions, 1);
        assert!(!store.contains(ArtifactKind::Profile, &k), "dropped");
        // The slot is clean for an overwrite.
        let artifact = ProfileArtifact {
            invariants: InvariantSet::default(),
            runs_used: 2,
            profile_ns: 5,
        };
        store.save_profile(&k, &artifact).unwrap();
        assert_eq!(store.load_profile(&k).unwrap(), artifact);
        let _ = fs::remove_dir_all(store.root());
    }
}
