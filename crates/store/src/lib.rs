//! `oha-store`: a content-addressed, persistent cache for analysis
//! artifacts.
//!
//! The predicated static phase is the expensive, *pure* part of the OHA
//! pipeline: its output is a function of the program and the invariant
//! predicate alone. This crate caches that output on disk so repeated
//! analyses of an unchanged `(program, predicate)` pair skip the static
//! phase entirely — the "analyze once, speculate many times" economics
//! the paper's deployment story assumes (profiling and static analysis
//! amortize across the many production runs that consume them).
//!
//! Design points:
//!
//! - **Content addressing.** Keys are pairs of stable 128-bit FNV-1a
//!   fingerprints ([`oha_ir::Fingerprint`]): the program's canonical
//!   printer form, and the predicate side (invariant set plus whatever
//!   else the cached phase consulted). No mtimes, no paths: equal bytes,
//!   equal key.
//! - **Hand-rolled versioned codec.** The workspace is zero-dependency,
//!   so artifacts use an explicit little-endian wire format
//!   ([`codec`]) with a `FORMAT_VERSION`-stamped header and a 128-bit
//!   checksum trailer.
//! - **Corruption is a miss, never a crash.** Truncated, bit-flipped,
//!   version-skewed or otherwise undecodable entries are counted,
//!   dropped and reported as absent; the pipeline re-analyzes and
//!   overwrites. A corrupt entry is never served, and stale results are
//!   impossible by construction (the key *is* the content).
//! - **Concurrency.** [`Store`] is `Sync`: atomic counters, atomic
//!   temp-file-plus-rename writes. The daemon (`oha-serve`) shares one
//!   instance across worker threads and fronts it with the in-memory
//!   [`Lru`]. Writers that die inside the temp-write→rename window
//!   leave an orphan temp file that [`Store::open`] sweeps (live
//!   writers' temps are left alone, so two daemons can share one
//!   directory).
//! - **Failure is testable.** Every I/O edge rolls against an
//!   [`oha_faults::FaultPlan`] ([`Store::open_with`], or the
//!   `OHA_FAULTS` environment spec): injected read corruption, short
//!   writes, rename failures and crash-before-rename exercise the
//!   delete-and-recompute path deterministically. With the plan
//!   disabled each site costs one branch.

#![warn(missing_docs)]

pub mod codec;

mod artifacts;
mod disk;
mod lru;

pub use artifacts::{
    ArtifactKey, ArtifactKind, OptFtArtifact, OptSliceArtifact, ProfileArtifact, StaticSideArtifact,
};
pub use codec::{CodecError, Reader, Writer};
pub use disk::{Store, StoreStats, StoreStatsSnapshot, FORMAT_VERSION};
pub use lru::Lru;
