//! Fault-injection robustness: every injected store failure must be
//! survivable — caught, counted, dropped, and recomputable — and must
//! never surface a torn artifact to a caller.

use std::fs;
use std::path::PathBuf;
use std::thread;

use oha_faults::{sites, FaultPlan};
use oha_ir::Fingerprint;
use oha_store::{ArtifactKey, ArtifactKind, Store};

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oha-store-faults-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn key(n: u8) -> ArtifactKey {
    ArtifactKey::new(Fingerprint::of_bytes(&[n]), Fingerprint::of_bytes(&[n, n]))
}

fn plan(spec: &str) -> FaultPlan {
    FaultPlan::parse(spec).unwrap()
}

#[test]
fn short_write_is_caught_dropped_and_recomputed() {
    let root = tmp_root("short-write");
    let store = Store::open_with(&root, plan("store.write.short=@1")).unwrap();
    let k = key(1);

    // The save "succeeds" — the disk lied — and the torn entry sits at
    // the final path.
    store
        .save(ArtifactKind::Profile, &k, b"torn payload")
        .unwrap();
    assert!(store.contains(ArtifactKind::Profile, &k));

    // The next load must reject it as corrupt, delete it, and report a
    // miss — the delete-and-recompute path.
    assert!(store.load(ArtifactKind::Profile, &k).is_none());
    let s = store.stats();
    assert_eq!(s.corruptions, 1);
    assert_eq!(s.misses, 1);
    assert!(!store.contains(ArtifactKind::Profile, &k), "slot cleared");

    // The recompute overwrites cleanly (the @1 schedule is spent).
    store
        .save(ArtifactKind::Profile, &k, b"torn payload")
        .unwrap();
    assert_eq!(
        store.load(ArtifactKind::Profile, &k).unwrap(),
        b"torn payload"
    );
    assert_eq!(store.faults().injected()[sites::STORE_WRITE_SHORT], 1);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn rename_error_fails_the_save_and_leaves_no_debris() {
    let root = tmp_root("rename-error");
    let store = Store::open_with(&root, plan("store.rename.error=@1")).unwrap();
    let k = key(2);

    let err = store.save(ArtifactKind::OptFt, &k, b"x").unwrap_err();
    assert!(err.to_string().contains("injected fault"), "{err}");
    assert!(!store.contains(ArtifactKind::OptFt, &k));
    assert_eq!(fs::read_dir(root.join("tmp")).unwrap().count(), 0);
    assert_eq!(store.stats().writes, 0);

    // The caller's retry (or the next analysis) succeeds.
    store.save(ArtifactKind::OptFt, &k, b"x").unwrap();
    assert_eq!(store.load(ArtifactKind::OptFt, &k).unwrap(), b"x");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn write_error_fails_before_touching_disk() {
    let root = tmp_root("write-error");
    let store = Store::open_with(&root, plan("store.write.error=%1")).unwrap();
    let k = key(3);
    assert!(store.save(ArtifactKind::Profile, &k, b"x").is_err());
    assert!(!store.contains(ArtifactKind::Profile, &k));
    assert_eq!(fs::read_dir(root.join("tmp")).unwrap().count(), 0);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn read_corruption_is_detected_and_the_slot_cleared() {
    let root = tmp_root("read-corrupt");
    let store = Store::open_with(&root, plan("store.read.corrupt=@1")).unwrap();
    let k = key(4);
    store
        .save(ArtifactKind::Profile, &k, b"good bytes")
        .unwrap();

    // The injected bit flip lands between disk and caller; the checksum
    // rejects the entry, which is then deleted so the recompute starts
    // clean. (A genuine on-disk flip behaves identically — this is the
    // same path robustness.rs exercises with a real file edit.)
    assert!(store.load(ArtifactKind::Profile, &k).is_none());
    assert_eq!(store.stats().corruptions, 1);
    assert!(!store.contains(ArtifactKind::Profile, &k));
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn read_error_is_a_plain_miss_and_the_file_survives() {
    let root = tmp_root("read-error");
    let store = Store::open_with(&root, plan("store.read.error=@1")).unwrap();
    let k = key(5);
    store
        .save(ArtifactKind::Profile, &k, b"still here")
        .unwrap();

    assert!(store.load(ArtifactKind::Profile, &k).is_none(), "injected");
    assert_eq!(store.stats().misses, 1);
    assert_eq!(store.stats().corruptions, 0);
    // A transient read failure must not destroy a good entry.
    assert_eq!(
        store.load(ArtifactKind::Profile, &k).unwrap(),
        b"still here"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn stale_tmp_of_a_dead_writer_is_swept_on_open() {
    let root = tmp_root("stale-tmp");
    // Populate the directory layout first.
    drop(Store::open(&root).unwrap());

    // A writer that died between temp-write and rename leaves this
    // behind. PID u32::MAX - 1 exceeds any Linux pid_max, so the writer
    // is provably dead.
    let dead = root.join("tmp").join(format!("{}-0.tmp", u32::MAX - 1));
    fs::write(&dead, b"half-written artifact").unwrap();
    // Our own (live) temp file must survive the sweep.
    let live = root
        .join("tmp")
        .join(format!("{}-7.tmp", std::process::id()));
    fs::write(&live, b"in flight").unwrap();

    let store = Store::open(&root).unwrap();
    assert!(!dead.exists(), "dead writer's orphan swept");
    assert!(live.exists(), "live writer's temp kept");
    assert_eq!(store.stats().stale_tmp_cleaned, 1);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn concurrent_writers_with_rename_delays_never_produce_a_torn_read() {
    let root = tmp_root("concurrent-writers");
    // Two handles over one directory — the two-daemons-one-store shape —
    // both stalling inside the rename window on every save.
    let a = Store::open_with(&root, plan("delay_ms=5; store.rename.delay=%1")).unwrap();
    let b = Store::open_with(&root, plan("delay_ms=5; store.rename.delay=%1")).unwrap();
    let k = key(6);
    let payload = vec![0xAB; 4096];

    thread::scope(|scope| {
        for store in [&a, &b] {
            let payload = &payload;
            let k = &k;
            scope.spawn(move || {
                for _ in 0..8 {
                    store.save(ArtifactKind::OptSlice, k, payload).unwrap();
                    // Whenever an entry is visible it must be whole:
                    // either a clean hit with the exact bytes or (never,
                    // under rename-only faults) a miss — a torn read
                    // would land in `corruptions`.
                    if let Some(got) = store.load(ArtifactKind::OptSlice, k) {
                        assert_eq!(&got, payload);
                    }
                }
            });
        }
    });

    assert_eq!(a.stats().corruptions + b.stats().corruptions, 0);
    assert_eq!(a.load(ArtifactKind::OptSlice, &k).unwrap(), payload);
    assert!(a.faults().injected()[sites::STORE_RENAME_DELAY] >= 8);
    let _ = fs::remove_dir_all(&root);
}
