//! Store robustness: truncation, bit flips and version skew must read as
//! clean misses — counted, never panicking, never serving stale bytes —
//! and the slot must accept a fresh overwrite afterwards.

use std::fs;
use std::path::PathBuf;

use oha_invariants::InvariantSet;
use oha_ir::{BlockId, Fingerprint, InstId, Operand, ProgramBuilder};
use oha_pointsto::{analyze, PointsToConfig};
use oha_store::{ArtifactKey, ArtifactKind, OptFtArtifact, ProfileArtifact, Store};
use Operand::{Const, Reg as R};

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "oha-store-robustness-{}-{name}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn sample_key() -> ArtifactKey {
    ArtifactKey::new(
        Fingerprint::of_bytes(b"program"),
        Fingerprint::of_bytes(b"predicate"),
    )
}

fn sample_profile() -> ProfileArtifact {
    let mut invariants = InvariantSet::default();
    for b in 0..40 {
        invariants.visited_blocks.insert(BlockId::new(b));
    }
    invariants.singleton_spawns.insert(InstId::new(17));
    invariants.num_profiles = 6;
    ProfileArtifact {
        invariants,
        runs_used: 6,
        profile_ns: 987_654,
    }
}

fn sample_optft() -> OptFtArtifact {
    let mut pb = ProgramBuilder::new();
    pb.global("g", 1);
    let mut m = pb.function("main", 0);
    let a = m.alloc(1);
    m.store(R(a), 0, Const(1));
    let v = m.load(R(a), 0);
    m.output(R(v));
    m.ret(None);
    let main = pb.finish_function(m);
    let p = pb.finish(main).unwrap();
    let pt = analyze(&p, &PointsToConfig::default()).unwrap();
    OptFtArtifact {
        invariants: InvariantSet::default(),
        profiling_runs_used: 4,
        races_sound: oha_races::detect(&p, &pt, None),
        races_pred: oha_races::detect(&p, &pt, None),
        pt_sound_stats: pt.stats(),
        pt_pred: pt,
        profile_ns: 1,
        sound_static_ns: 2,
        pred_static_ns: 3,
        elide_ns: 4,
    }
}

fn entry_path(store: &Store, kind: ArtifactKind, key: &ArtifactKey) -> PathBuf {
    store
        .root()
        .join(kind.dir_name())
        .join(format!("{}.oha", key.file_stem()))
}

#[test]
fn truncation_at_every_length_is_a_counted_miss() {
    let store = Store::open(tmp_root("truncate")).unwrap();
    let key = sample_key();
    let artifact = sample_profile();
    store.save_profile(&key, &artifact).unwrap();
    let path = entry_path(&store, ArtifactKind::Profile, &key);
    let whole = fs::read(&path).unwrap();

    // A spread of truncation points: inside the header, inside the
    // payload, inside the checksum trailer.
    let cuts = [0, 1, 7, 12, 20, whole.len() / 2, whole.len() - 1];
    for &cut in &cuts {
        fs::write(&path, &whole[..cut]).unwrap();
        assert!(
            store.load_profile(&key).is_none(),
            "truncation at {cut} must be a miss"
        );
    }
    let stats = store.stats();
    assert_eq!(
        stats.corruptions,
        cuts.len() as u64,
        "every truncation counted"
    );

    // The slot accepts a clean overwrite and serves the new bytes.
    store.save_profile(&key, &artifact).unwrap();
    assert_eq!(store.load_profile(&key).unwrap(), artifact);
    let _ = fs::remove_dir_all(store.root());
}

#[test]
fn every_single_bit_flip_is_rejected() {
    let store = Store::open(tmp_root("bitflip")).unwrap();
    let key = sample_key();
    store.save_profile(&key, &sample_profile()).unwrap();
    let path = entry_path(&store, ArtifactKind::Profile, &key);
    let whole = fs::read(&path).unwrap();

    // Flip one bit in every byte of the file. Every mutation must read
    // as a miss: the magic/version/kind/length checks catch header
    // damage, the checksum catches payload damage, and a flip *in* the
    // checksum itself mismatches the (intact) payload.
    let mut rejected = 0u64;
    for i in 0..whole.len() {
        let mut bad = whole.clone();
        bad[i] ^= 1 << (i % 8);
        fs::write(&path, &bad).unwrap();
        assert!(
            store.load_profile(&key).is_none(),
            "bit flip in byte {i} must not be served"
        );
        rejected += 1;
    }
    assert_eq!(rejected, whole.len() as u64);
    let stats = store.stats();
    assert!(
        stats.corruptions + stats.version_mismatches >= rejected,
        "every rejection accounted ({} + {} < {rejected})",
        stats.corruptions,
        stats.version_mismatches,
    );
    assert_eq!(stats.hits, 0, "nothing corrupt was ever served");
    let _ = fs::remove_dir_all(store.root());
}

#[test]
fn version_bump_reads_as_miss_then_overwrites() {
    let store = Store::open(tmp_root("version")).unwrap();
    let key = sample_key();
    let artifact = sample_optft();
    store.save_optft(&key, &artifact).unwrap();
    let path = entry_path(&store, ArtifactKind::OptFt, &key);

    // Patch the header's version field (bytes 8..12) to a future value.
    let mut bytes = fs::read(&path).unwrap();
    let future = (oha_store::FORMAT_VERSION + 1).to_le_bytes();
    bytes[8..12].copy_from_slice(&future);
    fs::write(&path, &bytes).unwrap();

    assert!(store.load_optft(&key).is_none(), "future version is a miss");
    let stats = store.stats();
    assert_eq!(stats.version_mismatches, 1);
    assert_eq!(stats.corruptions, 0, "version skew is not corruption");
    assert_eq!(stats.hits, 0);

    // Re-analysis overwrites the stale-format entry; the slot serves the
    // fresh write.
    store.save_optft(&key, &artifact).unwrap();
    let reread = store.load_optft(&key).unwrap();
    assert_eq!(reread.invariants, artifact.invariants);
    assert_eq!(
        reread.races_pred.racy_sites(),
        artifact.races_pred.racy_sites()
    );
    assert_eq!(reread.encode(), artifact.encode(), "byte-identical");
    let _ = fs::remove_dir_all(store.root());
}

#[test]
fn wrong_kind_slot_is_rejected() {
    let store = Store::open(tmp_root("kind")).unwrap();
    let key = sample_key();
    store.save_profile(&key, &sample_profile()).unwrap();
    // Copy the (valid) profile file into the optft slot: header kind tag
    // no longer matches the namespace it sits in.
    let src = entry_path(&store, ArtifactKind::Profile, &key);
    let dst = entry_path(&store, ArtifactKind::OptFt, &key);
    fs::copy(&src, &dst).unwrap();
    assert!(store.load_optft(&key).is_none());
    assert!(store.stats().corruptions >= 1);
    let _ = fs::remove_dir_all(store.root());
}

#[test]
fn concurrent_writers_of_one_key_leave_a_whole_file() {
    let store = std::sync::Arc::new(Store::open(tmp_root("concurrent")).unwrap());
    let key = sample_key();
    let artifact = sample_profile();
    let payload = artifact.encode();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let store = std::sync::Arc::clone(&store);
            let payload = payload.clone();
            scope.spawn(move || {
                for _ in 0..16 {
                    store.save(ArtifactKind::Profile, &key, &payload).unwrap();
                }
            });
        }
    });
    assert_eq!(store.load_profile(&key).unwrap(), artifact);
    assert_eq!(store.stats().corruptions, 0);
    let _ = fs::remove_dir_all(store.root());
}
