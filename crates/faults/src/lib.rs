//! `oha-faults`: a seed-deterministic fault-injection substrate for the
//! persistence and serving layers.
//!
//! Optimistic hybrid analysis survives *misspeculation* by construction
//! (a violated likely invariant rolls back to the sound analysis); this
//! crate makes *infrastructure failure* — torn writes, failed renames,
//! bit rot, mid-frame disconnects, stalled reads, slow compute — an
//! equally first-class, deterministically testable input. A
//! [`FaultPlan`] names injection *sites* (dotted strings like
//! `store.write.short` or `serve.write.disconnect`) and decides, per
//! call, whether the site fires, from a seeded hash of the site name and
//! its per-site call sequence. The decision depends only on
//! `(seed, site, nth-call-at-site)` — never on wall clock, thread
//! scheduling across sites, or process layout — so a failing chaos run
//! replays exactly under the same seed and per-site call order.
//!
//! Design points:
//!
//! - **Disabled is one branch.** [`FaultPlan::disabled`] (and
//!   [`FaultPlan::from_env`] with `OHA_FAULTS` unset) holds no state;
//!   every [`should_inject`](FaultPlan::should_inject) is a single
//!   `Option` discriminant test. The fault-free hot path stays
//!   byte-and-branch identical to a build without instrumentation
//!   beyond that test.
//! - **Probability and schedule triggers.** A rule fires with
//!   probability `p` (`site=0.05`), on exactly the nth call (`site=@3`),
//!   or on every kth call (`site=%7`). Patterns ending in `*` match by
//!   prefix, so `store.*=0.01` arms every store site at once.
//! - **Accountable.** Every injection bumps a per-site counter;
//!   [`injected`](FaultPlan::injected) snapshots them,
//!   [`record`](FaultPlan::record) exports them as `faults.<site>`
//!   counters through an [`oha_obs::MetricsRegistry`], and the serving
//!   layer republishes them over its `stats`/`metrics` ops so chaos CI
//!   can assert that faults actually fired.
//!
//! The *interpretation* of a site is the call site's business: the store
//! truncates a write, the server tears a frame mid-payload, the client
//! never sees this crate at all. The canonical site names are listed in
//! [`sites`].

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Environment variable holding a [`FaultPlan`] spec; unset or empty
/// means no injection (the disabled, one-branch-per-site plan).
pub const FAULTS_ENV: &str = "OHA_FAULTS";

/// Default injected delay when the spec does not set `delay_ms`.
pub const DEFAULT_DELAY_MS: u64 = 10;

/// The canonical injection-site names, so tests, specs and docs agree on
/// spelling. Call sites pass these to [`FaultPlan::should_inject`].
pub mod sites {
    /// Store read fails outright (served as a miss).
    pub const STORE_READ_ERROR: &str = "store.read.error";
    /// Store read returns bit-flipped bytes (checksum must catch it).
    pub const STORE_READ_CORRUPT: &str = "store.read.corrupt";
    /// Store save fails before any bytes reach disk.
    pub const STORE_WRITE_ERROR: &str = "store.write.error";
    /// Store save silently truncates the temp file (a lying disk); the
    /// torn artifact must be detected and dropped on the next load.
    pub const STORE_WRITE_SHORT: &str = "store.write.short";
    /// The temp-to-final rename fails; the save errors, no torn final.
    pub const STORE_RENAME_ERROR: &str = "store.rename.error";
    /// The rename stalls for the plan's delay first (widens the
    /// concurrent-writer race window).
    pub const STORE_RENAME_DELAY: &str = "store.rename.delay";
    /// The process dies (abort, as if `kill -9`) after the temp write
    /// and before the rename — the crash-consistency window.
    pub const STORE_CRASH_BEFORE_RENAME: &str = "store.crash.before_rename";
    /// The server stalls before reading the next request frame.
    pub const SERVE_READ_STALL: &str = "serve.read.stall";
    /// The server drops the connection mid-response-frame (length
    /// prefix plus a partial payload reach the client).
    pub const SERVE_WRITE_DISCONNECT: &str = "serve.write.disconnect";
    /// The compute job sleeps for the plan's delay before running.
    pub const SERVE_COMPUTE_DELAY: &str = "serve.compute.delay";
    /// The router stalls for the plan's delay before forwarding a
    /// request to its worker (models a congested fabric hop).
    pub const CLUSTER_ROUTE_DELAY: &str = "cluster.route.delay";
    /// The supervisor SIGKILLs a live worker on its next tick (the
    /// chaos analogue of a worker OOM-kill); the victim rotates
    /// deterministically through the worker slots.
    pub const CLUSTER_WORKER_KILL: &str = "cluster.worker.kill";
}

/// How a matched rule decides whether the nth call at a site fires.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Trigger {
    /// Fires with this probability per call (seeded, per-site-sequence
    /// deterministic).
    Prob(f64),
    /// Fires on exactly the nth call (1-based).
    At(u64),
    /// Fires on every kth call (k, 2k, 3k, …).
    Every(u64),
}

#[derive(Clone, Debug, PartialEq)]
struct Rule {
    /// A full site name, or a prefix ending in `*` (bare `*` matches
    /// everything).
    pattern: String,
    trigger: Trigger,
}

impl Rule {
    fn matches(&self, site: &str) -> bool {
        match self.pattern.strip_suffix('*') {
            Some(prefix) => site.starts_with(prefix),
            None => self.pattern == site,
        }
    }
}

#[derive(Debug, Default)]
struct SiteState {
    /// Calls rolled at this site (matched rules only).
    rolls: u64,
    /// Calls that injected a fault.
    injected: u64,
}

#[derive(Debug)]
struct Inner {
    seed: u64,
    delay: Duration,
    rules: Vec<Rule>,
    sites: Mutex<BTreeMap<String, SiteState>>,
}

/// A seeded plan of which injection sites misbehave, how, and when.
///
/// Cloning shares the plan (and its counters): the daemon hands one plan
/// to the store, the I/O handlers and the compute jobs, and a single
/// `stats` call sees every injection.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    inner: Option<Arc<Inner>>,
}

impl FaultPlan {
    /// The no-injection plan. [`should_inject`](Self::should_inject) is
    /// one branch and never takes a lock.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Parses `OHA_FAULTS`; unset, empty, or unparsable specs yield the
    /// disabled plan (an unparsable spec also warns on stderr — chaos
    /// that silently never starts is worse than none).
    pub fn from_env() -> Self {
        match std::env::var(FAULTS_ENV) {
            Ok(spec) if !spec.trim().is_empty() => match Self::parse(&spec) {
                Ok(plan) => plan,
                Err(e) => {
                    eprintln!("warning: ignoring {FAULTS_ENV}: {e}");
                    Self::disabled()
                }
            },
            _ => Self::disabled(),
        }
    }

    /// Parses a spec: `;`/whitespace-separated `key=value` entries.
    ///
    /// - `seed=N` — the plan seed (default 0).
    /// - `delay_ms=N` — injected-delay length (default 10).
    /// - `rate=P` — shorthand for `*=P` (every site fires with
    ///   probability `P`).
    /// - `<site>=P` — the site fires with probability `P ∈ [0,1]`.
    /// - `<site>=@N` — the site fires on exactly its Nth call (1-based).
    /// - `<site>=%K` — the site fires on every Kth call.
    ///
    /// Patterns may end in `*` for prefix matching; the first matching
    /// rule (in spec order) wins. A spec with no site rules is the
    /// disabled plan.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut seed = 0u64;
        let mut delay_ms = DEFAULT_DELAY_MS;
        let mut rules = Vec::new();
        for entry in spec.split([';', ' ', '\t', '\n']) {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("entry {entry:?} is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => {
                    seed = value
                        .parse()
                        .map_err(|_| format!("seed={value:?} is not a u64"))?;
                }
                "delay_ms" => {
                    delay_ms = value
                        .parse()
                        .map_err(|_| format!("delay_ms={value:?} is not a u64"))?;
                }
                "rate" => rules.push(Rule {
                    pattern: "*".to_string(),
                    trigger: Trigger::Prob(parse_prob(key, value)?),
                }),
                site => {
                    let trigger = if let Some(n) = value.strip_prefix('@') {
                        let n: u64 = n
                            .parse()
                            .map_err(|_| format!("{site}=@{n:?}: not a call number"))?;
                        if n == 0 {
                            return Err(format!("{site}=@0: calls are numbered from 1"));
                        }
                        Trigger::At(n)
                    } else if let Some(k) = value.strip_prefix('%') {
                        let k: u64 = k
                            .parse()
                            .map_err(|_| format!("{site}=%{k:?}: not a period"))?;
                        if k == 0 {
                            return Err(format!("{site}=%0: the period must be positive"));
                        }
                        Trigger::Every(k)
                    } else {
                        Trigger::Prob(parse_prob(site, value)?)
                    };
                    rules.push(Rule {
                        pattern: site.to_string(),
                        trigger,
                    });
                }
            }
        }
        if rules.is_empty() {
            return Ok(Self::disabled());
        }
        Ok(Self {
            inner: Some(Arc::new(Inner {
                seed,
                delay: Duration::from_millis(delay_ms),
                rules,
                sites: Mutex::new(BTreeMap::new()),
            })),
        })
    }

    /// Whether any rule is armed.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Decides whether `site` misbehaves on this call, bumping the
    /// injection counter when it does. One branch when the plan is
    /// disabled.
    pub fn should_inject(&self, site: &str) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        let Some(rule) = inner.rules.iter().find(|r| r.matches(site)) else {
            return false;
        };
        let mut sites = inner.sites.lock().expect("fault-plan lock");
        let state = sites.entry(site.to_string()).or_default();
        state.rolls += 1;
        let fire = match rule.trigger {
            Trigger::Prob(p) => {
                unit_interval(splitmix64(
                    inner.seed ^ fnv64(site) ^ state.rolls.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                )) < p
            }
            Trigger::At(n) => state.rolls == n,
            Trigger::Every(k) => state.rolls % k == 0,
        };
        if fire {
            state.injected += 1;
        }
        fire
    }

    /// The configured injected-delay length (`delay_ms`, default
    /// [`DEFAULT_DELAY_MS`]). Zero when the plan is disabled.
    pub fn delay(&self) -> Duration {
        self.inner
            .as_ref()
            .map(|i| i.delay)
            .unwrap_or(Duration::ZERO)
    }

    /// Per-site injected-fault counts (sites that matched a rule but
    /// never fired report 0).
    pub fn injected(&self) -> BTreeMap<String, u64> {
        match &self.inner {
            Some(inner) => inner
                .sites
                .lock()
                .expect("fault-plan lock")
                .iter()
                .map(|(site, st)| (site.clone(), st.injected))
                .collect(),
            None => BTreeMap::new(),
        }
    }

    /// Per-site roll counts (how often each armed site was consulted).
    pub fn rolls(&self) -> BTreeMap<String, u64> {
        match &self.inner {
            Some(inner) => inner
                .sites
                .lock()
                .expect("fault-plan lock")
                .iter()
                .map(|(site, st)| (site.clone(), st.rolls))
                .collect(),
            None => BTreeMap::new(),
        }
    }

    /// Total faults injected across all sites.
    pub fn total_injected(&self) -> u64 {
        self.injected().values().sum()
    }

    /// Publishes `faults.injected.<site>` and `faults.rolls.<site>`
    /// counters (plus `faults.injected.total`) into a registry, so run
    /// reports carry the injection record alongside the phase timings.
    pub fn record(&self, registry: &oha_obs::MetricsRegistry) {
        let mut total = 0;
        for (site, n) in self.injected() {
            registry.add(&format!("faults.injected.{site}"), n);
            total += n;
        }
        for (site, n) in self.rolls() {
            registry.add(&format!("faults.rolls.{site}"), n);
        }
        registry.add("faults.injected.total", total);
    }
}

fn parse_prob(key: &str, value: &str) -> Result<f64, String> {
    let p: f64 = value
        .parse()
        .map_err(|_| format!("{key}={value:?} is not a probability"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("{key}={value}: probability outside [0,1]"));
    }
    Ok(p)
}

/// SplitMix64: the standard 64-bit finalizer — a single round is enough
/// to decorrelate the (seed, site, sequence) lattice into uniform bits.
/// Public so resilience code (retry jitter in `oha-serve`'s client) can
/// derive deterministic pseudo-randomness from the same primitive.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the site name, so distinct sites draw from distinct
/// streams even under one seed.
fn fnv64(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Maps the top 53 bits to [0, 1).
fn unit_interval(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_injects_and_holds_no_state() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_enabled());
        for _ in 0..1000 {
            assert!(!plan.should_inject(sites::STORE_WRITE_SHORT));
        }
        assert!(plan.injected().is_empty());
        assert_eq!(plan.delay(), Duration::ZERO);
    }

    #[test]
    fn empty_and_unset_specs_disable() {
        assert!(!FaultPlan::parse("").unwrap().is_enabled());
        assert!(!FaultPlan::parse("seed=7; delay_ms=3").unwrap().is_enabled());
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        for bad in [
            "store.read.error",
            "seed=x",
            "delay_ms=-1",
            "rate=1.5",
            "store.read.error=nope",
            "store.read.error=@0",
            "store.read.error=%0",
            "rate=-0.1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn at_and_every_schedules_fire_exactly_on_time() {
        let plan = FaultPlan::parse("a.site=@3; b.site=%4").unwrap();
        let a: Vec<bool> = (0..6).map(|_| plan.should_inject("a.site")).collect();
        assert_eq!(a, [false, false, true, false, false, false]);
        let b: Vec<bool> = (0..9).map(|_| plan.should_inject("b.site")).collect();
        assert_eq!(
            b,
            [false, false, false, true, false, false, false, true, false]
        );
        assert_eq!(plan.injected()["a.site"], 1);
        assert_eq!(plan.injected()["b.site"], 2);
        assert_eq!(plan.total_injected(), 3);
    }

    #[test]
    fn probability_rolls_are_seed_deterministic() {
        let roll = |spec: &str| -> Vec<bool> {
            let plan = FaultPlan::parse(spec).unwrap();
            (0..256).map(|_| plan.should_inject("x.y")).collect()
        };
        let a = roll("seed=42; x.y=0.3");
        let b = roll("seed=42; x.y=0.3");
        assert_eq!(a, b, "same seed, same site, same sequence of decisions");
        let c = roll("seed=43; x.y=0.3");
        assert_ne!(a, c, "a different seed draws a different stream");
        let fired = a.iter().filter(|&&f| f).count();
        assert!(
            (32..=128).contains(&fired),
            "a 0.3 rate over 256 rolls fired {fired} times"
        );
    }

    #[test]
    fn sites_draw_from_independent_streams() {
        let plan = FaultPlan::parse("seed=1; rate=0.5").unwrap();
        let a: Vec<bool> = (0..128).map(|_| plan.should_inject("left")).collect();
        let b: Vec<bool> = (0..128).map(|_| plan.should_inject("right")).collect();
        assert_ne!(a, b, "distinct sites must not mirror each other");
    }

    #[test]
    fn prefix_patterns_match_and_first_rule_wins() {
        let plan = FaultPlan::parse("store.read.error=@1; store.*=%1; rate=0.0").unwrap();
        // Exact rule first: fires once, then the @1 schedule is spent and
        // the later (broader) rules are not consulted for this site.
        assert!(plan.should_inject("store.read.error"));
        assert!(!plan.should_inject("store.read.error"));
        // Prefix rule: every call fires.
        assert!(plan.should_inject("store.write.short"));
        assert!(plan.should_inject("store.write.short"));
        // The catch-all at rate 0 matches but never fires.
        assert!(!plan.should_inject("serve.read.stall"));
        assert_eq!(plan.rolls()["serve.read.stall"], 1);
    }

    #[test]
    fn unarmed_sites_cost_no_state() {
        let plan = FaultPlan::parse("store.read.error=@1").unwrap();
        assert!(!plan.should_inject("serve.compute.delay"));
        assert!(!plan.injected().contains_key("serve.compute.delay"));
    }

    #[test]
    fn clones_share_counters() {
        let plan = FaultPlan::parse("x=%1").unwrap();
        let clone = plan.clone();
        assert!(clone.should_inject("x"));
        assert_eq!(plan.injected()["x"], 1);
    }

    #[test]
    fn delay_is_configurable() {
        let plan = FaultPlan::parse("delay_ms=250; x=%1").unwrap();
        assert_eq!(plan.delay(), Duration::from_millis(250));
        let default = FaultPlan::parse("x=%1").unwrap();
        assert_eq!(default.delay(), Duration::from_millis(DEFAULT_DELAY_MS));
    }

    #[test]
    fn record_exports_counters_through_obs() {
        let plan = FaultPlan::parse("x=%1; y=@9").unwrap();
        plan.should_inject("x");
        plan.should_inject("x");
        plan.should_inject("y");
        let registry = oha_obs::MetricsRegistry::new();
        plan.record(&registry);
        assert_eq!(registry.counter_value("faults.injected.x"), 2);
        assert_eq!(registry.counter_value("faults.injected.y"), 0);
        assert_eq!(registry.counter_value("faults.rolls.y"), 1);
        assert_eq!(registry.counter_value("faults.injected.total"), 2);
    }
}
