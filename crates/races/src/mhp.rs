//! May-happen-in-parallel analysis.
//!
//! Thread *regions*: region 0 is the code the main thread executes (call
//! edges only); every spawn site contributes a region of the code its
//! spawned threads execute. An access belongs to every region whose
//! function set contains its function.
//!
//! Region-level parallelism is refined by a fork-join analysis of the entry
//! function: when a spawn handle stays local to `main` and is joined there,
//! the spawned thread's *live range* (spawn → join) orders it with respect
//! to main-body accesses and other spawns. Spawn sites outside `main`, or
//! with escaping handles, are treated conservatively.

use std::collections::HashMap;

use oha_dataflow::{BitSet, Cfg, DefSite, DomTree, ReachingDefs};
use oha_invariants::InvariantSet;
use oha_ir::{FuncId, InstId, InstKind, Program};
use oha_pointsto::PointsTo;

/// Position of an instruction inside one function: (local block index,
/// instruction index).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Pos {
    block: usize,
    index: usize,
}

/// The MHP relation over memory accesses.
#[derive(Debug)]
pub struct Mhp {
    /// Region 0 = main; region i>0 corresponds to `spawn_sites[i-1]`.
    regions: Vec<BitSet>, // funcs (by index) per region
    spawn_sites: Vec<InstId>,
    /// Whether each spawn region may have 2+ live threads at once.
    multi: Vec<bool>,
    /// parallel[i][j]: may region i run in parallel with region j at all.
    parallel: Vec<Vec<bool>>,
    /// For accesses literally in main: per spawn region, orderings.
    main_func: FuncId,
    main_pos: HashMap<InstId, Pos>,
    /// Per spawn site in main: its position and (optionally) the dominating
    /// join position.
    spawn_pos: HashMap<InstId, (Pos, Option<Pos>)>,
    main_cfg: Cfg,
    main_mp: Vec<BitSet>,
    main_dom: DomTree,
    main_on_cycle: Vec<bool>,
}

impl Mhp {
    /// Computes the MHP relation.
    ///
    /// `invariants`, when present, contributes the likely-singleton-thread
    /// facts (spawn sites assumed to create at most one thread per run) and
    /// prunes spawn sites in likely-unreachable blocks.
    pub fn new(program: &Program, pt: &PointsTo, invariants: Option<&InvariantSet>) -> Self {
        let main = program.entry();
        let num_funcs = program.num_functions();

        // Call-only edges from the points-to call-graph resolution.
        let mut call_succs: Vec<Vec<usize>> = vec![Vec::new(); num_funcs];
        let mut spawn_sites: Vec<InstId> = Vec::new();
        for (site, targets) in pt.call_sites() {
            if let Some(inv) = invariants {
                let block = program.loc(site).block;
                if !inv.is_visited(block) {
                    continue;
                }
            }
            let from = program.func_of_inst(site).index();
            match program.inst(site).kind {
                InstKind::Call { .. } => {
                    for t in targets {
                        call_succs[from].push(t.index());
                    }
                }
                InstKind::Spawn { .. } => spawn_sites.push(site),
                _ => {}
            }
        }
        spawn_sites.sort_unstable_by_key(|s| s.index());

        let closure = |roots: Vec<usize>| -> BitSet {
            let mut seen = BitSet::with_capacity(num_funcs);
            let mut stack = roots;
            for &r in &stack {
                seen.insert(r);
            }
            while let Some(f) = stack.pop() {
                for &s in &call_succs[f] {
                    if seen.insert(s) {
                        stack.push(s);
                    }
                }
            }
            seen
        };

        let mut regions = vec![closure(vec![main.index()])];
        for &s in &spawn_sites {
            let roots = pt.callees(s).iter().map(|f| f.index()).collect();
            regions.push(closure(roots));
        }

        // Main-function geometry.
        let main_cfg = Cfg::new(program, main);
        let main_mp = main_cfg.may_precede();
        let main_dom = DomTree::new(&main_cfg);
        let mut main_on_cycle = vec![false; main_cfg.len()];
        for (i, on_cycle) in main_on_cycle.iter_mut().enumerate() {
            // On a cycle iff reachable from one of its own successors —
            // `main_mp[s]` already holds everything reachable from `s`, so
            // this is a lookup, not a fresh graph walk per successor.
            *on_cycle = main_cfg.graph().succs(i).any(|s| main_mp[s].contains(i));
        }

        let mut main_pos = HashMap::new();
        let f = program.function(main);
        for (bi, &bid) in f.blocks.iter().enumerate() {
            for (ii, inst) in program.block(bid).insts.iter().enumerate() {
                main_pos.insert(
                    inst.id,
                    Pos {
                        block: bi,
                        index: ii,
                    },
                );
            }
        }

        // Spawn handles in main: find joins whose operand is defined only by
        // this spawn.
        let rd = ReachingDefs::new(program, main, &main_cfg);
        let mut spawn_pos: HashMap<InstId, (Pos, Option<Pos>)> = HashMap::new();
        for &s in &spawn_sites {
            if program.func_of_inst(s) != main {
                continue;
            }
            let pos = main_pos[&s];
            // A join matches if its thread operand has exactly one reaching
            // def: the spawn instruction, and the spawn's handle register is
            // never otherwise redefined along the way (guaranteed by the
            // single-def condition).
            let mut join: Option<Pos> = None;
            for &bid in &f.blocks {
                for inst in &program.block(bid).insts {
                    if let InstKind::Join { thread } = inst.kind {
                        if let Some(r) = thread.as_reg() {
                            let defs = rd.defs_for(inst.id, r);
                            if defs == [DefSite::Inst(s)] {
                                let jp = main_pos[&inst.id];
                                // Keep the join that dominates the most (any
                                // single dominating join is enough; prefer
                                // the first found).
                                join = join.or(Some(jp));
                            }
                        }
                    }
                }
            }
            spawn_pos.insert(s, (pos, join));
        }

        // Multiplicity: a spawn site may create 2+ concurrent threads unless
        // (a) the singleton invariant says otherwise, or (b) statically: the
        // site is in main (executed exactly once) and not on a CFG cycle.
        let mut multi = Vec::with_capacity(spawn_sites.len());
        for &s in &spawn_sites {
            let assumed_singleton = invariants.is_some_and(|inv| inv.singleton_spawns.contains(&s));
            let statically_singleton = program.func_of_inst(s) == main
                && !main_on_cycle[main_pos[&s].block]
                && !Self::entry_is_reentrant(program, pt, main);
            multi.push(!(assumed_singleton || statically_singleton));
        }

        // Region-level parallelism.
        let n = regions.len();
        let mut parallel = vec![vec![false; n]; n];
        for i in 0..n {
            for (j, cell) in parallel[i].iter_mut().enumerate() {
                if i == 0 && j == 0 {
                    continue; // main alone is single-threaded
                }
                if i == j {
                    *cell = multi[i - 1];
                    continue;
                }
                let (a, b) = (i.max(1) - 1, j.max(1) - 1);
                if i == 0 || j == 0 {
                    *cell = true; // refined per access later
                    continue;
                }
                // Two spawn regions: parallel unless their main-local live
                // ranges are provably disjoint. Join-based ordering is only
                // meaningful when a site spawns a single thread — a join of
                // a multi-spawn site only orders the last thread.
                let sa = spawn_sites[a];
                let sb = spawn_sites[b];
                let range = |site: InstId, is_multi: bool| {
                    spawn_pos
                        .get(&site)
                        .map(|&(s, j)| (s, if is_multi { None } else { j }))
                };
                *cell = Self::ranges_overlap(
                    range(sa, multi[a]),
                    range(sb, multi[b]),
                    &main_mp,
                    &main_on_cycle,
                );
            }
        }

        Self {
            regions,
            spawn_sites,
            multi,
            parallel,
            main_func: main,
            main_pos,
            spawn_pos,
            main_cfg,
            main_mp,
            main_dom,
            main_on_cycle,
        }
    }

    fn entry_is_reentrant(program: &Program, pt: &PointsTo, main: FuncId) -> bool {
        pt.call_sites().any(|(_, targets)| targets.contains(&main))
            || program
                .insts()
                .any(|i| matches!(i.kind, InstKind::AddrFunc { func, .. } if func == main))
    }

    /// May `a` execute strictly before `b` (main-body positions)?
    fn may_precede(a: Pos, b: Pos, mp: &[BitSet], on_cycle: &[bool]) -> bool {
        if a.block == b.block {
            a.index < b.index || on_cycle[a.block]
        } else {
            mp[a.block].contains(b.block)
        }
    }

    fn ranges_overlap(
        a: Option<(Pos, Option<Pos>)>,
        b: Option<(Pos, Option<Pos>)>,
        mp: &[BitSet],
        on_cycle: &[bool],
    ) -> bool {
        let (Some((sa, ja)), Some((sb, jb))) = (a, b) else {
            return true; // handle escapes main: conservative
        };
        // Overlap possible unless one thread provably ends before the other
        // starts on every path: i.e. NOT overlap iff join_a precedes spawn_b
        // always, or join_b precedes spawn_a always. We use the sound
        // direction: claim disjoint only when spawn_b can never run before
        // join_a (or symmetrically).
        let b_may_start_before_a_ends = match ja {
            None => true,
            Some(ja) => Self::may_precede(sb, ja, mp, on_cycle),
        };
        let a_may_start_before_b_ends = match jb {
            None => true,
            Some(jb) => Self::may_precede(sa, jb, mp, on_cycle),
        };
        b_may_start_before_a_ends && a_may_start_before_b_ends
    }

    /// Number of regions (main + one per spawn site).
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// The spawn sites contributing regions `1..`.
    pub fn spawn_sites(&self) -> &[InstId] {
        &self.spawn_sites
    }

    /// The regions (by index) an instruction's function belongs to.
    pub fn regions_of(&self, program: &Program, inst: InstId) -> Vec<usize> {
        let f = program.func_of_inst(inst).index();
        (0..self.regions.len())
            .filter(|&r| self.regions[r].contains(f))
            .collect()
    }

    /// May two accesses happen in parallel?
    pub fn may_happen_in_parallel(&self, program: &Program, a: InstId, b: InstId) -> bool {
        let ra = self.regions_of(program, a);
        let rb = self.regions_of(program, b);
        for &i in &ra {
            for &j in &rb {
                if !self.parallel[i][j] {
                    continue;
                }
                // Main-vs-spawn refinement when the main-side access is in
                // main's own body.
                if i == 0 && j > 0 {
                    if self.main_access_parallel_with(program, a, j) {
                        return true;
                    }
                } else if j == 0 && i > 0 {
                    if self.main_access_parallel_with(program, b, i) {
                        return true;
                    }
                } else {
                    return true;
                }
            }
        }
        false
    }

    /// Is a main-region access parallel with spawn region `r`?
    fn main_access_parallel_with(&self, program: &Program, access: InstId, r: usize) -> bool {
        let site = self.spawn_sites[r - 1];
        if program.func_of_inst(access) != self.main_func {
            // The access is in a callee of main: no ordering information.
            return true;
        }
        let Some(&(spawn, join)) = self.spawn_pos.get(&site) else {
            return true;
        };
        let apos = self.main_pos[&access];
        // Before the spawn on every path? Then ordered. (Sound even for
        // multi-spawn sites: no thread from the site exists until the site
        // first executes.)
        if !Self::may_precede(spawn, apos, &self.main_mp, &self.main_on_cycle) {
            return false;
        }
        // After a dominating join? Then ordered — but only when the site
        // spawns a single thread; a join of a multi-spawn site only orders
        // the last thread it created.
        if self.multi[r - 1] {
            return true;
        }
        if let Some(jp) = join {
            let join_block = self.block_id(jp.block);
            let access_block = self.block_id(apos.block);
            let dominated = if jp.block == apos.block {
                jp.index < apos.index && !self.main_on_cycle[jp.block]
            } else {
                self.main_dom.dominates(join_block, access_block)
                    && !self.main_mp[apos.block].contains(jp.block)
            };
            if dominated {
                return false;
            }
        }
        true
    }

    fn block_id(&self, local: usize) -> oha_ir::BlockId {
        oha_ir::BlockId::new(self.main_cfg.entry().raw() + local as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_ir::{Operand, ProgramBuilder};
    use oha_pointsto::{analyze, PointsToConfig};
    use Operand::{Const, Reg as R};

    /// main: store pre; spawn w; store mid; join; store post.
    /// w: store in worker.
    fn fork_join_program() -> (Program, Vec<InstId>) {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("g", 4);
        let w = pb.declare("w", 1);
        let mut m = pb.function("main", 0);
        let ga = m.addr_global(g);
        m.store(R(ga), 0, Const(1)); // pre
        let t = m.spawn(w, Const(0));
        m.store(R(ga), 1, Const(2)); // mid
        m.join(R(t));
        m.store(R(ga), 2, Const(3)); // post
        m.ret(None);
        let main = pb.finish_function(m);
        let mut wf = pb.function("w", 1);
        let ga = wf.addr_global(g);
        wf.store(R(ga), 3, Const(9)); // worker store
        wf.ret(None);
        pb.finish_function(wf);
        let p = pb.finish(main).unwrap();
        // Order: pre, mid, post (main's stores in order), then the worker's.
        let mut stores: Vec<InstId> = p
            .inst_ids()
            .filter(|&i| {
                matches!(p.inst(i).kind, InstKind::Store { .. })
                    && p.function(p.func_of_inst(i)).name == "main"
            })
            .collect();
        stores.extend(p.inst_ids().filter(|&i| {
            matches!(p.inst(i).kind, InstKind::Store { .. })
                && p.function(p.func_of_inst(i)).name == "w"
        }));
        (p, stores)
    }

    use oha_ir::Program;

    #[test]
    fn fork_join_orders_main_accesses() {
        let (p, stores) = fork_join_program();
        let pt = analyze(&p, &PointsToConfig::default()).unwrap();
        let mhp = Mhp::new(&p, &pt, None);
        let (pre, mid, post, worker) = (stores[0], stores[1], stores[2], stores[3]);
        assert!(
            !mhp.may_happen_in_parallel(&p, pre, worker),
            "store before spawn is ordered"
        );
        assert!(
            mhp.may_happen_in_parallel(&p, mid, worker),
            "store between spawn and join is parallel"
        );
        assert!(
            !mhp.may_happen_in_parallel(&p, post, worker),
            "store after join is ordered"
        );
        assert!(
            !mhp.may_happen_in_parallel(&p, pre, mid),
            "main accesses never race with themselves"
        );
    }

    #[test]
    fn spawn_in_loop_is_self_parallel() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("g", 1);
        let w = pb.declare("w", 1);
        let mut m = pb.function("main", 0);
        let head = m.block();
        let body = m.block();
        let exit = m.block();
        m.jump(head);
        m.select(head);
        let c = m.input();
        m.branch(R(c), body, exit);
        m.select(body);
        m.spawn(w, Const(0));
        m.jump(head);
        m.select(exit);
        m.ret(None);
        let main = pb.finish_function(m);
        let mut wf = pb.function("w", 1);
        let ga = wf.addr_global(g);
        wf.store(R(ga), 0, Const(1));
        wf.ret(None);
        pb.finish_function(wf);
        let p = pb.finish(main).unwrap();
        let pt = analyze(&p, &PointsToConfig::default()).unwrap();
        let store = p
            .inst_ids()
            .find(|&i| matches!(p.inst(i).kind, InstKind::Store { .. }))
            .unwrap();

        let mhp = Mhp::new(&p, &pt, None);
        assert!(
            mhp.may_happen_in_parallel(&p, store, store),
            "two iterations' threads race"
        );

        // The singleton invariant (e.g. the loop always runs once) removes
        // the self-race.
        let mut inv = InvariantSet::default();
        for b in p.block_ids() {
            inv.visited_blocks.insert(b);
        }
        let spawn = p
            .inst_ids()
            .find(|&i| matches!(p.inst(i).kind, InstKind::Spawn { .. }))
            .unwrap();
        inv.singleton_spawns.insert(spawn);
        let mhp = Mhp::new(&p, &pt, Some(&inv));
        assert!(!mhp.may_happen_in_parallel(&p, store, store));
    }

    #[test]
    fn sequential_phases_do_not_overlap() {
        // spawn t1; join t1; spawn t2; join t2 — regions are ordered.
        let mut pb = ProgramBuilder::new();
        let g = pb.global("g", 1);
        let w1 = pb.declare("w1", 1);
        let w2 = pb.declare("w2", 1);
        let mut m = pb.function("main", 0);
        let t1 = m.spawn(w1, Const(0));
        m.join(R(t1));
        let t2 = m.spawn(w2, Const(0));
        m.join(R(t2));
        m.ret(None);
        let main = pb.finish_function(m);
        for name in ["w1", "w2"] {
            let mut f = pb.function(name, 1);
            let ga = f.addr_global(g);
            f.store(R(ga), 0, Const(1));
            f.ret(None);
            pb.finish_function(f);
        }
        let p = pb.finish(main).unwrap();
        let pt = analyze(&p, &PointsToConfig::default()).unwrap();
        let mhp = Mhp::new(&p, &pt, None);
        let stores: Vec<InstId> = p
            .inst_ids()
            .filter(|&i| matches!(p.inst(i).kind, InstKind::Store { .. }))
            .collect();
        assert!(
            !mhp.may_happen_in_parallel(&p, stores[0], stores[1]),
            "phase 1 ends before phase 2 starts"
        );
    }

    #[test]
    fn concurrent_spawns_overlap() {
        // spawn t1; spawn t2; join t1; join t2.
        let mut pb = ProgramBuilder::new();
        let g = pb.global("g", 1);
        let w1 = pb.declare("w1", 1);
        let w2 = pb.declare("w2", 1);
        let mut m = pb.function("main", 0);
        let t1 = m.spawn(w1, Const(0));
        let t2 = m.spawn(w2, Const(0));
        m.join(R(t1));
        m.join(R(t2));
        m.ret(None);
        let main = pb.finish_function(m);
        for name in ["w1", "w2"] {
            let mut f = pb.function(name, 1);
            let ga = f.addr_global(g);
            f.store(R(ga), 0, Const(1));
            f.ret(None);
            pb.finish_function(f);
        }
        let p = pb.finish(main).unwrap();
        let pt = analyze(&p, &PointsToConfig::default()).unwrap();
        let mhp = Mhp::new(&p, &pt, None);
        let stores: Vec<InstId> = p
            .inst_ids()
            .filter(|&i| matches!(p.inst(i).kind, InstKind::Store { .. }))
            .collect();
        assert!(mhp.may_happen_in_parallel(&p, stores[0], stores[1]));
    }
}
