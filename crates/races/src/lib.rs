//! Static data-race detection (the Chord stand-in, paper §4.1).
//!
//! The detector follows Chord's structure:
//!
//! 1. a **may-happen-in-parallel** (MHP) analysis derives which memory
//!    accesses can execute concurrently, from thread-spawn structure plus a
//!    fork-join refinement for handles that stay local to the entry
//!    function;
//! 2. the **points-to** analysis supplies may-alias facts between accesses;
//! 3. aliasing MHP pairs with at least one write become *candidate racy
//!    pairs*;
//! 4. a **lockset** phase prunes pairs protected by common locks — but only
//!    when *must-alias* facts about the locks are available. A sound
//!    analysis only has may-alias, so (exactly as the paper observes) the
//!    sound variant must skip lockset pruning; the likely-guarding-locks
//!    invariant restores it, and the likely-singleton-thread invariant
//!    removes same-site self-races that static reasoning cannot.
//!
//! The output is the set of loads/stores that may race — precisely the set
//! of sites FastTrack must instrument. Everything else can be elided.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detect;
mod locksets;
mod mhp;

pub use detect::{detect, RaceStats, StaticRaces};
pub use locksets::MustLocksets;
pub use mhp::Mhp;
