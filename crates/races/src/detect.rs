//! Candidate racy pair construction and lockset pruning.

use std::collections::{HashMap, HashSet};

use oha_dataflow::BitSet;
use oha_invariants::InvariantSet;
use oha_ir::{InstId, Program};
use oha_pointsto::PointsTo;

use crate::locksets::MustLocksets;
use crate::mhp::Mhp;

/// Work counters of a static race detection run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RaceStats {
    /// Memory accesses considered (loads + stores with nonempty cells).
    pub accesses: usize,
    /// Aliasing MHP pairs with at least one write.
    pub candidate_pairs: usize,
    /// Candidate pairs removed by must-alias lockset pruning.
    pub pruned_by_locks: usize,
    /// Accesses left racy (the instrumentation set).
    pub racy_accesses: usize,
}

/// The result of static race detection: the set of loads/stores that may
/// participate in a data race.
#[derive(Clone, Debug)]
pub struct StaticRaces {
    racy: BitSet,
    pairs: Vec<(InstId, InstId)>,
    stats: RaceStats,
}

impl StaticRaces {
    /// Reconstructs a result from its serialized parts — the rehydration
    /// entry point for `oha-store`'s artifact cache. The parts must come
    /// from a [`detect`] run over the same program and invariant predicate;
    /// nothing is revalidated here.
    pub fn from_parts(racy: BitSet, pairs: Vec<(InstId, InstId)>, stats: RaceStats) -> Self {
        Self { racy, pairs, stats }
    }

    /// Whether a load/store may race (needs FastTrack instrumentation).
    pub fn is_racy(&self, inst: InstId) -> bool {
        self.racy.contains(inst.index())
    }

    /// The racy instrumentation set.
    pub fn racy_sites(&self) -> &BitSet {
        &self.racy
    }

    /// The surviving candidate pairs.
    pub fn pairs(&self) -> &[(InstId, InstId)] {
        &self.pairs
    }

    /// Work counters.
    pub fn stats(&self) -> RaceStats {
        self.stats
    }

    /// Renders the surviving candidate pairs with their enclosing function
    /// names, one per line — the report a developer reads.
    pub fn describe(&self, program: &Program) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for &(a, b) in &self.pairs {
            let fa = &program.function(program.func_of_inst(a)).name;
            let fb = &program.function(program.func_of_inst(b)).name;
            let _ = writeln!(out, "may race: {a} (@{fa}) with {b} (@{fb})");
        }
        out
    }
}

/// Runs the static race detector.
///
/// # Examples
///
/// ```
/// use oha_ir::{Operand, ProgramBuilder};
/// use oha_pointsto::{analyze, PointsToConfig};
///
/// // Two unsynchronized threads write the same global: a race.
/// let mut pb = ProgramBuilder::new();
/// let g = pb.global("shared", 1);
/// let w = pb.declare("w", 1);
/// let mut m = pb.function("main", 0);
/// let t1 = m.spawn(w, Operand::Const(1));
/// let t2 = m.spawn(w, Operand::Const(2));
/// m.join(Operand::Reg(t1));
/// m.join(Operand::Reg(t2));
/// m.ret(None);
/// let main = pb.finish_function(m);
/// let mut f = pb.function("w", 1);
/// let ga = f.addr_global(g);
/// f.store(Operand::Reg(ga), 0, Operand::Reg(f.param(0)));
/// f.ret(None);
/// pb.finish_function(f);
/// let p = pb.finish(main).unwrap();
///
/// let pt = analyze(&p, &PointsToConfig::default()).unwrap();
/// let races = oha_races::detect(&p, &pt, None);
/// assert_eq!(races.stats().racy_accesses, 1);
/// ```
///
/// Without `invariants` this is the sound configuration: every spawn site
/// may spawn many threads (unless trivially single) and lockset pruning is
/// disabled (a sound analysis has only may-alias facts about locks, §4.2.2).
/// With `invariants`, the guarding-locks and singleton-thread invariants
/// enable the pruning Chord's unsound configuration performs, and
/// likely-unreachable code drops accesses and spawn sites.
pub fn detect(program: &Program, pt: &PointsTo, invariants: Option<&InvariantSet>) -> StaticRaces {
    let mhp = Mhp::new(program, pt, invariants);
    let locksets = MustLocksets::new(program, pt);

    // Group accesses by cell.
    #[derive(Clone, Copy)]
    struct Access {
        inst: InstId,
        write: bool,
    }
    let mut by_cell: HashMap<usize, Vec<Access>> = HashMap::new();
    let mut accesses = 0usize;
    let mut record = |inst: InstId, write: bool, cells: &BitSet| {
        if cells.is_empty() {
            return false;
        }
        for c in cells.iter() {
            by_cell.entry(c).or_default().push(Access { inst, write });
        }
        true
    };
    for inst in program.inst_ids() {
        let l = pt.load_cells(inst);
        if record(inst, false, l) {
            accesses += 1;
        }
        let s = pt.store_cells(inst);
        if record(inst, true, s) {
            accesses += 1;
        }
    }

    // Lockset pruning data.
    let empty = Default::default();
    let (must_pairs, self_alias) = match invariants {
        Some(inv) => (&inv.must_alias_locks, &inv.self_alias_locks),
        None => (&empty, &Default::default()),
    };
    let guarded = |a: InstId, b: InstId| -> bool {
        if must_pairs.is_empty() && self_alias.is_empty() {
            return false;
        }
        for &sa in locksets.held_at(a) {
            for &sb in locksets.held_at(b) {
                let same_object = if sa == sb {
                    self_alias.contains(&sa)
                } else {
                    must_pairs.contains(&(sa.min(sb), sa.max(sb)))
                };
                if same_object {
                    return true;
                }
            }
        }
        false
    };

    // Enumerate candidate pairs per cell.
    let mut seen: HashSet<(InstId, InstId)> = HashSet::new();
    let mut pairs: Vec<(InstId, InstId)> = Vec::new();
    let mut racy = BitSet::with_capacity(program.num_insts());
    let mut candidate_pairs = 0usize;
    let mut pruned = 0usize;
    for accs in by_cell.values() {
        for (i, &a) in accs.iter().enumerate() {
            for &b in &accs[i..] {
                if !a.write && !b.write {
                    continue;
                }
                let key = (a.inst.min(b.inst), a.inst.max(b.inst));
                if seen.contains(&key) {
                    continue;
                }
                if !mhp.may_happen_in_parallel(program, a.inst, b.inst) {
                    continue;
                }
                seen.insert(key);
                candidate_pairs += 1;
                if guarded(a.inst, b.inst) {
                    pruned += 1;
                    continue;
                }
                pairs.push(key);
                racy.insert(key.0.index());
                racy.insert(key.1.index());
            }
        }
    }
    pairs.sort_unstable();
    let stats = RaceStats {
        accesses,
        candidate_pairs,
        pruned_by_locks: pruned,
        racy_accesses: racy.len(),
    };
    StaticRaces { racy, pairs, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_interp::{Machine, MachineConfig};
    use oha_invariants::ProfileTracer;
    use oha_ir::{InstKind, Operand, ProgramBuilder};
    use oha_pointsto::{analyze, PointsToConfig};
    use Operand::{Const, Reg as R};

    fn profile(p: &Program, inputs: &[&[i64]]) -> InvariantSet {
        let profiles: Vec<_> = inputs
            .iter()
            .map(|input| {
                let mut t = ProfileTracer::new(p);
                Machine::new(p, MachineConfig::default()).run(input, &mut t);
                t.into_profile()
            })
            .collect();
        InvariantSet::from_profiles(&profiles)
    }

    use oha_ir::Program;

    /// Two workers increment a shared counter under one lock; main reads
    /// after joining. No true race.
    fn locked_counter() -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("shared", 1);
        let w = pb.declare("worker", 1);
        let mut m = pb.function("main", 0);
        let t1 = m.spawn(w, Const(10));
        let t2 = m.spawn(w, Const(10));
        m.join(R(t1));
        m.join(R(t2));
        let ga = m.addr_global(g);
        let v = m.load(R(ga), 0);
        m.output(R(v));
        m.ret(None);
        let main = pb.finish_function(m);
        let mut wf = pb.function("worker", 1);
        let ga = wf.addr_global(g);
        wf.lock(R(ga));
        let v = wf.load(R(ga), 0);
        let v1 = wf.bin(oha_ir::BinOp::Add, R(v), Const(1));
        wf.store(R(ga), 0, R(v1));
        wf.unlock(R(ga));
        wf.ret(None);
        pb.finish_function(wf);
        pb.finish(main).unwrap()
    }

    #[test]
    fn sound_detector_keeps_locked_accesses_racy() {
        // Without must-alias lock facts, the sound analysis cannot prune
        // the worker's accesses (exactly the paper's §4.2.2 observation).
        let p = locked_counter();
        let pt = analyze(&p, &PointsToConfig::default()).unwrap();
        let races = detect(&p, &pt, None);
        let worker_store = p
            .inst_ids()
            .find(|&i| {
                matches!(p.inst(i).kind, InstKind::Store { .. })
                    && p.function(p.func_of_inst(i)).name == "worker"
            })
            .unwrap();
        assert!(races.is_racy(worker_store));
        // But main's post-join load is ordered: not racy.
        let main_load = p
            .inst_ids()
            .find(|&i| {
                matches!(p.inst(i).kind, InstKind::Load { .. })
                    && p.function(p.func_of_inst(i)).name == "main"
            })
            .unwrap();
        assert!(!races.is_racy(main_load), "fork-join ordering prunes it");
    }

    #[test]
    fn guarding_locks_invariant_prunes_locked_accesses() {
        let p = locked_counter();
        let pt = analyze(&p, &PointsToConfig::default()).unwrap();
        let inv = profile(&p, &[&[], &[]]);
        assert!(!inv.self_alias_locks.is_empty());
        let races = detect(&p, &pt, Some(&inv));
        assert_eq!(
            races.stats().racy_accesses,
            0,
            "lockset pruning removes everything: {:?}",
            races.pairs()
        );
        assert!(races.stats().pruned_by_locks > 0);
    }

    /// A genuinely racy program: no locks at all.
    #[test]
    fn unlocked_sharing_is_racy_under_both() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("shared", 1);
        let w = pb.declare("worker", 1);
        let mut m = pb.function("main", 0);
        let t1 = m.spawn(w, Const(1));
        let t2 = m.spawn(w, Const(2));
        m.join(R(t1));
        m.join(R(t2));
        m.ret(None);
        let main = pb.finish_function(m);
        let mut wf = pb.function("worker", 1);
        let ga = wf.addr_global(g);
        wf.store(R(ga), 0, R(wf.param(0)));
        wf.ret(None);
        pb.finish_function(wf);
        let p = pb.finish(main).unwrap();
        let pt = analyze(&p, &PointsToConfig::default()).unwrap();

        let store = p
            .inst_ids()
            .find(|&i| matches!(p.inst(i).kind, InstKind::Store { .. }))
            .unwrap();
        assert!(detect(&p, &pt, None).is_racy(store));
        let inv = profile(&p, &[&[]]);
        assert!(detect(&p, &pt, Some(&inv)).is_racy(store));
    }

    /// Threads write disjoint heap objects: provably race-free.
    #[test]
    fn disjoint_data_is_race_free() {
        let mut pb = ProgramBuilder::new();
        let w = pb.declare("worker", 1);
        let mut m = pb.function("main", 0);
        let o1 = m.alloc(1);
        let o2 = m.alloc(1);
        let t1 = m.spawn(w, R(o1));
        let t2 = m.spawn(w, R(o2));
        m.join(R(t1));
        m.join(R(t2));
        m.ret(None);
        let main = pb.finish_function(m);
        let mut wf = pb.function("worker", 1);
        wf.store(R(wf.param(0)), 0, Const(1));
        wf.ret(None);
        pb.finish_function(wf);
        let p = pb.finish(main).unwrap();
        let pt = analyze(&p, &PointsToConfig::default()).unwrap();
        let races = detect(&p, &pt, None);
        // Both spawns pass objects that *may* alias from the analysis's
        // view (both allocations flow into the same parameter), so the
        // worker store races with itself across the two threads.
        let store = p
            .inst_ids()
            .find(|&i| matches!(p.inst(i).kind, InstKind::Store { .. }))
            .unwrap();
        assert!(races.is_racy(store), "CI merges the two objects");
    }

    #[test]
    fn single_threaded_program_is_race_free() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("g", 1);
        let mut m = pb.function("main", 0);
        let ga = m.addr_global(g);
        m.store(R(ga), 0, Const(1));
        let v = m.load(R(ga), 0);
        m.output(R(v));
        m.ret(None);
        let main = pb.finish_function(m);
        let p = pb.finish(main).unwrap();
        let pt = analyze(&p, &PointsToConfig::default()).unwrap();
        let races = detect(&p, &pt, None);
        assert_eq!(races.stats().racy_accesses, 0);
        assert_eq!(races.stats().candidate_pairs, 0);
    }
}
