//! Must-held lockset computation.
//!
//! For each memory access, computes the set of lock *sites* that are
//! definitely held when the access executes (intra-procedural, intersection
//! over paths). Pairing this with the likely-guarding-locks must-alias
//! invariant lets the predicated detector prune candidate racy pairs, which
//! a sound analysis cannot do with only may-alias lock information
//! (paper §4.2.2).

use std::collections::HashMap;

use oha_dataflow::{BitSet, Cfg};
use oha_ir::{FuncId, InstId, InstKind, Program};
use oha_pointsto::PointsTo;

/// Per-access must-held lock sites.
#[derive(Debug, Default)]
pub struct MustLocksets {
    /// Access instruction → lock-site instructions definitely held.
    held: HashMap<InstId, Vec<InstId>>,
}

impl MustLocksets {
    /// Computes must-held locksets for every load/store in `program`.
    ///
    /// Calls conservatively clear the lockset when the callee may
    /// (transitively) execute an `unlock`; otherwise locks stay held across
    /// the call.
    pub fn new(program: &Program, pt: &PointsTo) -> Self {
        // Which functions may transitively unlock?
        let may_unlock = Self::may_unlock_funcs(program, pt);

        // Enumerate lock sites densely for bitset work.
        let lock_sites: Vec<InstId> = program
            .insts()
            .filter(|i| matches!(i.kind, InstKind::Lock { .. }))
            .map(|i| i.id)
            .collect();
        let site_index: HashMap<InstId, usize> = lock_sites
            .iter()
            .enumerate()
            .map(|(k, &s)| (s, k))
            .collect();

        let mut held = HashMap::new();
        for fid in program.func_ids() {
            Self::function_locksets(
                program,
                pt,
                fid,
                &lock_sites,
                &site_index,
                &may_unlock,
                &mut held,
            );
        }
        Self { held }
    }

    fn may_unlock_funcs(program: &Program, pt: &PointsTo) -> Vec<bool> {
        let n = program.num_functions();
        let mut direct = vec![false; n];
        for inst in program.insts() {
            if matches!(inst.kind, InstKind::Unlock { .. }) {
                direct[program.func_of_inst(inst.id).index()] = true;
            }
        }
        // Propagate backwards over the call graph to a fixpoint.
        let mut changed = true;
        while changed {
            changed = false;
            for (site, targets) in pt.call_sites() {
                let caller = program.func_of_inst(site).index();
                if !direct[caller] && targets.iter().any(|t| direct[t.index()]) {
                    direct[caller] = true;
                    changed = true;
                }
            }
        }
        direct
    }

    #[allow(clippy::too_many_arguments)]
    fn function_locksets(
        program: &Program,
        pt: &PointsTo,
        fid: FuncId,
        lock_sites: &[InstId],
        site_index: &HashMap<InstId, usize>,
        may_unlock: &[bool],
        held_out: &mut HashMap<InstId, Vec<InstId>>,
    ) {
        let f = program.function(fid);
        let cfg = Cfg::new(program, fid);
        let nb = f.blocks.len();
        let nsites = lock_sites.len();
        let full = || -> BitSet { (0..nsites).collect() };

        // Forward must analysis: IN = ∩ preds' OUT; entry IN = ∅. `None`
        // encodes ⊤ (not yet computed) so intersections start full.
        let mut out: Vec<Option<BitSet>> = vec![None; nb];
        let transfer = |input: &BitSet, bid: oha_ir::BlockId| -> BitSet {
            let mut cur = input.clone();
            for inst in &program.block(bid).insts {
                match &inst.kind {
                    InstKind::Lock { .. } => {
                        if let Some(&k) = site_index.get(&inst.id) {
                            cur.insert(k);
                        }
                    }
                    InstKind::Unlock { .. } => {
                        // Kill every site whose lock cells may alias this
                        // unlock's cells.
                        let ucells = pt.lock_cells(inst.id);
                        let kills: Vec<usize> = cur
                            .iter()
                            .filter(|&k| pt.lock_cells(lock_sites[k]).intersects(ucells))
                            .collect();
                        for k in kills {
                            cur.remove(k);
                        }
                    }
                    InstKind::Call { .. } | InstKind::Spawn { .. } => {
                        let clears = pt.callees(inst.id).iter().any(|t| may_unlock[t.index()]);
                        if clears {
                            cur.clear();
                        }
                    }
                    _ => {}
                }
            }
            cur
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &bid in cfg.rpo() {
                let bi = cfg.local(bid);
                let preds: Vec<usize> = cfg.graph().preds(bi).collect();
                let mut input = if bi == 0 {
                    BitSet::new()
                } else {
                    let mut acc: Option<BitSet> = None;
                    for &p in &preds {
                        if let Some(po) = &out[p] {
                            match &mut acc {
                                None => acc = Some(po.clone()),
                                Some(a) => {
                                    a.intersect_with(po);
                                }
                            }
                        }
                    }
                    acc.unwrap_or_else(full)
                };
                if bi == 0 && !preds.is_empty() {
                    // Entry with back edges: still starts empty.
                    input = BitSet::new();
                }
                let new_out = transfer(&input, bid);
                if out[bi].as_ref() != Some(&new_out) {
                    out[bi] = Some(new_out);
                    changed = true;
                }
            }
        }

        // Final pass: record per-access held sets.
        for &bid in cfg.rpo() {
            let bi = cfg.local(bid);
            let preds: Vec<usize> = cfg.graph().preds(bi).collect();
            let input = if bi == 0 {
                BitSet::new()
            } else {
                let mut acc: Option<BitSet> = None;
                for &p in &preds {
                    if let Some(po) = &out[p] {
                        match &mut acc {
                            None => acc = Some(po.clone()),
                            Some(a) => {
                                a.intersect_with(po);
                            }
                        }
                    }
                }
                acc.unwrap_or_else(full)
            };
            let mut cur = input;
            for inst in &program.block(bid).insts {
                if inst.kind.is_memory_access() {
                    held_out.insert(inst.id, cur.iter().map(|k| lock_sites[k]).collect());
                }
                match &inst.kind {
                    InstKind::Lock { .. } => {
                        if let Some(&k) = site_index.get(&inst.id) {
                            cur.insert(k);
                        }
                    }
                    InstKind::Unlock { .. } => {
                        let ucells = pt.lock_cells(inst.id);
                        let kills: Vec<usize> = cur
                            .iter()
                            .filter(|&k| pt.lock_cells(lock_sites[k]).intersects(ucells))
                            .collect();
                        for k in kills {
                            cur.remove(k);
                        }
                    }
                    InstKind::Call { .. } | InstKind::Spawn { .. } => {
                        let clears = pt.callees(inst.id).iter().any(|t| may_unlock[t.index()]);
                        if clears {
                            cur.clear();
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// The lock sites definitely held at a memory access.
    pub fn held_at(&self, access: InstId) -> &[InstId] {
        self.held.get(&access).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_ir::{Operand, ProgramBuilder};
    use oha_pointsto::{analyze, PointsToConfig};
    use Operand::{Const, Reg as R};

    #[test]
    fn locks_guard_critical_sections() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("g", 2);
        let mut m = pb.function("main", 0);
        let ga = m.addr_global(g);
        m.store(R(ga), 0, Const(1)); // unguarded
        m.lock(R(ga));
        m.store(R(ga), 1, Const(2)); // guarded
        m.unlock(R(ga));
        m.store(R(ga), 0, Const(3)); // unguarded again
        m.ret(None);
        let main = pb.finish_function(m);
        let p = pb.finish(main).unwrap();
        let pt = analyze(&p, &PointsToConfig::default()).unwrap();
        let ls = MustLocksets::new(&p, &pt);

        let stores: Vec<InstId> = p
            .inst_ids()
            .filter(|&i| matches!(p.inst(i).kind, InstKind::Store { .. }))
            .collect();
        let lock = p
            .inst_ids()
            .find(|&i| matches!(p.inst(i).kind, InstKind::Lock { .. }))
            .unwrap();
        assert!(ls.held_at(stores[0]).is_empty());
        assert_eq!(ls.held_at(stores[1]), &[lock]);
        assert!(ls.held_at(stores[2]).is_empty());
    }

    #[test]
    fn branches_intersect_locksets() {
        // One arm locks, the other doesn't: the merge holds nothing.
        let mut pb = ProgramBuilder::new();
        let g = pb.global("g", 1);
        let mut m = pb.function("main", 0);
        let ga = m.addr_global(g);
        let yes = m.block();
        let no = m.block();
        let merge = m.block();
        let c = m.input();
        m.branch(R(c), yes, no);
        m.select(yes);
        m.lock(R(ga));
        m.jump(merge);
        m.select(no);
        m.jump(merge);
        m.select(merge);
        m.store(R(ga), 0, Const(1));
        m.ret(None);
        let main = pb.finish_function(m);
        let p = pb.finish(main).unwrap();
        let pt = analyze(&p, &PointsToConfig::default()).unwrap();
        let ls = MustLocksets::new(&p, &pt);
        let store = p
            .inst_ids()
            .find(|&i| matches!(p.inst(i).kind, InstKind::Store { .. }))
            .unwrap();
        assert!(ls.held_at(store).is_empty(), "must analysis intersects");
    }

    #[test]
    fn calls_to_unlocking_functions_clear_locks() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("g", 1);
        let bad = pb.declare("unlocker", 0);
        let good = pb.declare("pure", 0);
        let mut m = pb.function("main", 0);
        let ga = m.addr_global(g);
        m.lock(R(ga));
        m.call_void(good, vec![]);
        m.store(R(ga), 0, Const(1)); // still guarded
        m.call_void(bad, vec![]);
        m.store(R(ga), 0, Const(2)); // lockset cleared
        m.unlock(R(ga));
        m.ret(None);
        let main = pb.finish_function(m);
        let mut u = pb.function("unlocker", 0);
        let ga = u.addr_global(g);
        u.lock(R(ga));
        u.unlock(R(ga));
        u.ret(None);
        pb.finish_function(u);
        let mut pf = pb.function("pure", 0);
        pf.output(Const(0));
        pf.ret(None);
        pb.finish_function(pf);
        let p = pb.finish(main).unwrap();
        let pt = analyze(&p, &PointsToConfig::default()).unwrap();
        let ls = MustLocksets::new(&p, &pt);
        let stores: Vec<InstId> = p
            .inst_ids()
            .filter(|&i| {
                matches!(p.inst(i).kind, InstKind::Store { .. }) && p.func_of_inst(i) == main
            })
            .collect();
        assert_eq!(ls.held_at(stores[0]).len(), 1);
        assert!(ls.held_at(stores[1]).is_empty());
    }
}
