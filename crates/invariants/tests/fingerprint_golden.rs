//! Golden-value tests for [`InvariantSet::fingerprint`].
//!
//! The pinned digest ties the fingerprint to the canonical invariant text
//! ordering (`InvariantSet::to_text`, B-tree order). Accidental changes to
//! that canonical form would silently orphan every cached artifact keyed
//! on the old form — a failure here that you did not intend means the
//! canonical ordering changed. Intended changes must bump `oha-store`'s
//! `FORMAT_VERSION` alongside the repin.

use oha_invariants::InvariantSet;
use oha_ir::{BlockId, FuncId, InstId};

fn golden_set() -> InvariantSet {
    let mut set = InvariantSet::default();
    set.visited_blocks
        .extend([BlockId::new(0), BlockId::new(3)]);
    set.callee_sets.insert(
        InstId::new(7),
        [FuncId::new(1), FuncId::new(2)].into_iter().collect(),
    );
    set.contexts.insert(vec![InstId::new(7), InstId::new(9)]);
    set.must_alias_locks
        .insert((InstId::new(4), InstId::new(5)));
    set.self_alias_locks.insert(InstId::new(4));
    set.singleton_spawns.insert(InstId::new(11));
    set.elidable_locks.insert(InstId::new(4));
    set.num_profiles = 12;
    set
}

#[test]
fn golden_invariant_fingerprint_is_pinned() {
    assert_eq!(
        golden_set().fingerprint().to_hex(),
        "8f252edb4733fe4aac67043f4909e812",
        "canonical invariant ordering (or the hash primitive) changed; \
         see this file's module docs before repinning"
    );
}

#[test]
fn fingerprint_ignores_profile_count() {
    let a = golden_set();
    let mut b = golden_set();
    b.num_profiles = 999;
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "the key is over facts, not corpus-size bookkeeping"
    );
}

#[test]
fn fingerprint_tracks_every_fact_class() {
    type Mutation = Box<dyn Fn(&mut InvariantSet)>;
    let base = golden_set();
    let mutations: Vec<Mutation> = vec![
        Box::new(|s| {
            s.visited_blocks.insert(BlockId::new(99));
        }),
        Box::new(|s| {
            s.callee_sets
                .entry(InstId::new(7))
                .or_default()
                .insert(FuncId::new(9));
        }),
        Box::new(|s| {
            s.contexts.insert(vec![InstId::new(1)]);
        }),
        Box::new(|s| {
            s.must_alias_locks.insert((InstId::new(1), InstId::new(2)));
        }),
        Box::new(|s| {
            s.self_alias_locks.insert(InstId::new(8));
        }),
        Box::new(|s| {
            s.singleton_spawns.insert(InstId::new(2));
        }),
        Box::new(|s| {
            s.elidable_locks.insert(InstId::new(5));
        }),
    ];
    for (i, mutate) in mutations.iter().enumerate() {
        let mut changed = base.clone();
        mutate(&mut changed);
        assert_ne!(
            changed.fingerprint(),
            base.fingerprint(),
            "fact class {i} does not reach the fingerprint"
        );
    }
}

#[test]
fn fingerprint_survives_text_round_trip() {
    let set = golden_set();
    let reparsed = InvariantSet::from_text(&set.to_text()).unwrap();
    assert_eq!(reparsed.fingerprint(), set.fingerprint());
}
