//! A Bloom filter for call-context membership checks.
//!
//! The paper (§5.2.3) found the naive call-stack set-inclusion check too
//! expensive and added a Bloom filter so the common case (context was
//! profiled) usually skips the exact check. Bloom filters have no false
//! negatives, so a *miss* proves the context was never profiled — a definite
//! invariant violation.

/// A fixed-size double-hashing Bloom filter over `u32` sequences.
///
/// # Examples
///
/// ```
/// use oha_invariants::Bloom;
///
/// let mut b = Bloom::new(1024, 3);
/// b.insert(&[1, 2, 3]);
/// assert!(b.maybe_contains(&[1, 2, 3]));
/// // No false negatives, ever:
/// assert!(!b.maybe_contains(&[9, 9, 9]) || true);
/// ```
#[derive(Clone, Debug)]
pub struct Bloom {
    bits: Vec<u64>,
    num_bits: u64,
    hashes: u32,
}

impl Bloom {
    /// Creates a filter with `num_bits` bits (rounded up to a multiple of
    /// 64) and `hashes` probes per element.
    ///
    /// # Panics
    ///
    /// Panics if `num_bits` or `hashes` is zero.
    pub fn new(num_bits: usize, hashes: u32) -> Self {
        assert!(num_bits > 0 && hashes > 0, "degenerate Bloom filter");
        let words = num_bits.div_ceil(64);
        Self {
            bits: vec![0; words],
            num_bits: (words * 64) as u64,
            hashes,
        }
    }

    /// Creates a filter sized for `n` elements at roughly 1% false-positive
    /// rate (≈ 10 bits per element, 3 hashes).
    pub fn for_elements(n: usize) -> Self {
        Self::new((n.max(1)) * 10, 3)
    }

    /// The hash state of the empty sequence.
    ///
    /// Sequence hashes are built *incrementally* with [`Bloom::extend`]: the
    /// runtime context check keeps a stack of hash states in parallel with
    /// the call stack, so each call costs O(1) instead of re-hashing the
    /// whole chain — the probabilistic-calling-context technique the paper
    /// cites for cheap context checks (§5.2.3, [Bond & McKinley]).
    pub fn seed() -> (u64, u64) {
        (0xcbf2_9ce4_8422_2325, 0x9e37_79b9_7f4a_7c15)
    }

    /// Extends a sequence hash state by one element (FNV-1a in two widths
    /// for double hashing; deterministic across platforms).
    pub fn extend(state: (u64, u64), elem: u32) -> (u64, u64) {
        let (mut h1, mut h2) = state;
        for b in elem.to_le_bytes() {
            h1 = (h1 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            h2 = (h2 ^ u64::from(b)).wrapping_mul(0xff51_afd7_ed55_8ccd);
        }
        (h1, h2)
    }

    fn hash_pair(key: &[u32]) -> (u64, u64) {
        key.iter().fold(Self::seed(), |s, &k| Self::extend(s, k))
    }

    /// Inserts a key given as a full sequence.
    pub fn insert(&mut self, key: &[u32]) {
        self.insert_hash(Self::hash_pair(key));
    }

    /// Inserts a key given as an incremental hash state.
    pub fn insert_hash(&mut self, state: (u64, u64)) {
        let (h1, h2) = (state.0, state.1 | 1);
        for i in 0..self.hashes {
            let bit = h1.wrapping_add(h2.wrapping_mul(u64::from(i))) % self.num_bits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// Returns `false` only if the key was definitely never inserted.
    pub fn maybe_contains(&self, key: &[u32]) -> bool {
        self.maybe_contains_hash(Self::hash_pair(key))
    }

    /// Hash-state variant of [`Bloom::maybe_contains`].
    pub fn maybe_contains_hash(&self, state: (u64, u64)) -> bool {
        let (h1, h2) = (state.0, state.1 | 1);
        (0..self.hashes).all(|i| {
            let bit = h1.wrapping_add(h2.wrapping_mul(u64::from(i))) % self.num_bits;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut b = Bloom::for_elements(1000);
        let keys: Vec<Vec<u32>> = (0..1000u32).map(|i| vec![i, i * 7, i ^ 0xabcd]).collect();
        for k in &keys {
            b.insert(k);
        }
        for k in &keys {
            assert!(b.maybe_contains(k));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut b = Bloom::for_elements(1000);
        for i in 0..1000u32 {
            b.insert(&[i]);
        }
        let fps = (100_000..110_000u32)
            .filter(|&i| b.maybe_contains(&[i]))
            .count();
        assert!(
            fps < 500,
            "false positive rate {} > 5%",
            fps as f64 / 10_000.0
        );
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let b = Bloom::new(64, 2);
        assert!(!b.maybe_contains(&[0]));
        assert!(!b.maybe_contains(&[1, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_bits_panics() {
        let _ = Bloom::new(0, 1);
    }

    #[test]
    fn incremental_hash_matches_slice_hash() {
        let mut b = Bloom::for_elements(16);
        let state = Bloom::extend(Bloom::extend(Bloom::seed(), 10), 20);
        b.insert_hash(state);
        assert!(b.maybe_contains(&[10, 20]));
        let mut c = Bloom::for_elements(16);
        c.insert(&[10, 20]);
        assert!(c.maybe_contains_hash(state));
    }
}
