//! Runtime verification of assumed likely invariants.

use std::collections::{BTreeSet, HashMap};

use oha_interp::{hooks, Addr, EventCtx, FrameId, InstrPlan, ThreadId, Tracer};
use oha_ir::{BlockId, Callee, FuncId, InstId, InstKind, Program};

use crate::bloom::Bloom;
use crate::set::{InvariantSet, MAX_CONTEXT_DEPTH};

/// An observed violation of an assumed likely invariant. Any violation
/// forces the speculative dynamic analysis to roll back (paper §2.3).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Violation {
    /// Control reached a block assumed unreachable (LUC).
    UnreachableBlock {
        /// The block that executed.
        block: BlockId,
    },
    /// An indirect call resolved outside its likely callee set.
    UnexpectedCallee {
        /// The indirect call site.
        site: InstId,
        /// The target actually called.
        callee: FuncId,
    },
    /// A call-site chain assumed unused was reached.
    UnusedContext {
        /// The chain of call sites (outermost first).
        chain: Vec<InstId>,
    },
    /// Two lock sites assumed must-aliasing locked different objects.
    LockAlias {
        /// The site that broke the assumption.
        site: InstId,
        /// Its assumed-aliasing partner.
        partner: InstId,
    },
    /// A spawn site assumed singleton spawned more than one thread.
    NonSingletonSpawn {
        /// The spawn site.
        site: InstId,
    },
}

impl Violation {
    /// Stable lower-snake-case class slug, used as the last metric-name
    /// component of rollback-cause counters (e.g.
    /// `optft.rollback.cause.lock_alias`).
    pub fn class(&self) -> &'static str {
        match self {
            Violation::UnreachableBlock { .. } => "unreachable_block",
            Violation::UnexpectedCallee { .. } => "unexpected_callee",
            Violation::UnusedContext { .. } => "unused_context",
            Violation::LockAlias { .. } => "lock_alias",
            Violation::NonSingletonSpawn { .. } => "non_singleton_spawn",
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::UnreachableBlock { block } => {
                write!(f, "assumed-unreachable block {block} executed")
            }
            Violation::UnexpectedCallee { site, callee } => {
                write!(f, "indirect call {site} reached unprofiled target {callee}")
            }
            Violation::UnusedContext { chain } => {
                write!(
                    f,
                    "assumed-unused call context reached (depth {})",
                    chain.len()
                )
            }
            Violation::LockAlias { site, partner } => write!(
                f,
                "lock site {site} broke its must-alias assumption with {partner}"
            ),
            Violation::NonSingletonSpawn { site } => {
                write!(f, "assumed-singleton spawn site {site} spawned again")
            }
        }
    }
}

/// Which invariant families a checker verifies. OptFT and OptSlice assume
/// different invariants, so they enable different checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChecksEnabled {
    /// Likely-unreachable-code checks.
    pub luc: bool,
    /// Likely-callee-set checks.
    pub callees: bool,
    /// Likely-unused-call-context checks.
    pub contexts: bool,
    /// Likely-guarding-lock (must-alias) checks.
    pub lock_alias: bool,
    /// Likely-singleton-thread checks.
    pub singleton: bool,
}

impl ChecksEnabled {
    /// Every check enabled.
    pub fn all() -> Self {
        Self {
            luc: true,
            callees: true,
            contexts: true,
            lock_alias: true,
            singleton: true,
        }
    }

    /// No checks (useful for overhead measurements).
    pub fn none() -> Self {
        Self {
            luc: false,
            callees: false,
            contexts: false,
            lock_alias: false,
            singleton: false,
        }
    }

    /// The checks OptFT needs: LUC, guarding locks, singleton threads
    /// (paper §4.2). The no-custom-synchronization invariant is verified by
    /// the race detector itself (a race report is a potential
    /// mis-speculation), not by this checker.
    pub fn for_optft() -> Self {
        Self {
            luc: true,
            callees: false,
            contexts: false,
            lock_alias: true,
            singleton: true,
        }
    }

    /// The checks OptSlice needs: LUC, callee sets, call contexts (paper
    /// §5.2).
    pub fn for_optslice() -> Self {
        Self {
            luc: true,
            callees: true,
            contexts: true,
            lock_alias: false,
            singleton: false,
        }
    }
}

/// Counters describing how much work invariant checking performed, broken
/// down by invariant class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Total individual checks executed.
    pub checks: u64,
    /// Likely-unreachable-code (block-entry) checks.
    pub luc_checks: u64,
    /// Likely-callee-set checks at indirect call/spawn sites.
    pub callee_checks: u64,
    /// Likely-used-call-context checks.
    pub context_checks: u64,
    /// Guarding-lock must-alias checks.
    pub lock_alias_checks: u64,
    /// Singleton-spawn checks.
    pub singleton_checks: u64,
    /// Context checks answered by the Bloom filter alone.
    pub bloom_fast_path: u64,
    /// Context checks that fell through to the exact set test.
    pub exact_context_checks: u64,
}

impl CheckStats {
    /// Publishes the per-class check counters under `<prefix>.check.` in
    /// `registry`.
    pub fn record(&self, registry: &oha_obs::MetricsRegistry, prefix: &str) {
        registry.add(&format!("{prefix}.check.total"), self.checks);
        registry.add(&format!("{prefix}.check.luc"), self.luc_checks);
        registry.add(&format!("{prefix}.check.callee"), self.callee_checks);
        registry.add(&format!("{prefix}.check.context"), self.context_checks);
        registry.add(
            &format!("{prefix}.check.lock_alias"),
            self.lock_alias_checks,
        );
        registry.add(&format!("{prefix}.check.singleton"), self.singleton_checks);
        registry.add(
            &format!("{prefix}.check.bloom_fast_path"),
            self.bloom_fast_path,
        );
    }
}

/// A [`Tracer`] that verifies assumed invariants during an execution.
///
/// Compose it (via [`MultiTracer`](oha_interp::MultiTracer)) with the
/// optimistic dynamic analysis; after the run, [`InvariantChecker::violations`]
/// is empty iff the speculation succeeded.
#[derive(Debug)]
pub struct InvariantChecker<'a> {
    set: &'a InvariantSet,
    enabled: ChecksEnabled,
    /// Dense visited-block lookup.
    visited: Vec<bool>,
    /// Dense "is indirect call/spawn site" lookup.
    indirect: Vec<bool>,
    bloom: Bloom,
    /// Per-thread call stacks: the call site plus the incremental context
    /// hash state at that depth.
    stacks: Vec<Vec<(InstId, (u64, u64))>>,
    partners: HashMap<InstId, Vec<InstId>>,
    first_lock: HashMap<InstId, Addr>,
    spawn_counts: HashMap<InstId, u64>,
    violations: BTreeSet<Violation>,
    stats: CheckStats,
}

impl<'a> InvariantChecker<'a> {
    /// Creates a checker for `program` verifying `set` with the given
    /// checks enabled.
    pub fn new(program: &Program, set: &'a InvariantSet, enabled: ChecksEnabled) -> Self {
        let mut visited = vec![false; program.num_blocks()];
        for b in &set.visited_blocks {
            if b.index() < visited.len() {
                visited[b.index()] = true;
            }
        }
        let mut indirect = vec![false; program.num_insts()];
        for inst in program.insts() {
            if matches!(
                inst.kind,
                InstKind::Call {
                    callee: Callee::Indirect(_),
                    ..
                } | InstKind::Spawn {
                    func: Callee::Indirect(_),
                    ..
                }
            ) {
                indirect[inst.id.index()] = true;
            }
        }
        let mut bloom = Bloom::for_elements(set.contexts.len().max(16));
        for chain in &set.contexts {
            let state = chain
                .iter()
                .fold(Bloom::seed(), |s, i| Bloom::extend(s, i.raw()));
            bloom.insert_hash(state);
        }
        let mut partners: HashMap<InstId, Vec<InstId>> = HashMap::new();
        for &(a, b) in &set.must_alias_locks {
            partners.entry(a).or_default().push(b);
            partners.entry(b).or_default().push(a);
        }
        Self {
            set,
            enabled,
            visited,
            indirect,
            bloom,
            stacks: vec![Vec::new()],
            partners,
            first_lock: HashMap::new(),
            spawn_counts: HashMap::new(),
            violations: BTreeSet::new(),
            stats: CheckStats::default(),
        }
    }

    /// The violations observed so far (deduplicated, ordered).
    pub fn violations(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter()
    }

    /// Whether any invariant was violated.
    pub fn is_violated(&self) -> bool {
        !self.violations.is_empty()
    }

    /// Work counters.
    pub fn stats(&self) -> CheckStats {
        self.stats
    }

    /// Consumes the checker, yielding its violations.
    pub fn into_violations(self) -> Vec<Violation> {
        self.violations.into_iter().collect()
    }

    /// Publishes check work (under `<prefix>.check.`) and violation counts
    /// by class (under `<prefix>.violation.`) into `registry`.
    pub fn record_metrics(&self, registry: &oha_obs::MetricsRegistry, prefix: &str) {
        self.stats.record(registry, prefix);
        for v in &self.violations {
            registry.add(&format!("{prefix}.violation.{}", v.class()), 1);
        }
    }

    fn stack_mut(&mut self, thread: ThreadId) -> &mut Vec<(InstId, (u64, u64))> {
        if self.stacks.len() <= thread.index() {
            self.stacks.resize(thread.index() + 1, Vec::new());
        }
        &mut self.stacks[thread.index()]
    }

    /// Compiles the checker's needs into an instrumentation plan (see
    /// [`InstrPlan`]): block-enter iff LUC checks run, call hooks at
    /// every call site when contexts are checked (plus indirect sites
    /// for callee checks), lock hooks only at sites carrying a must- or
    /// self-alias assumption. Spawn events are always dispatched by the
    /// machine, so singleton checks need no plan bits. Running under
    /// this plan is behaviourally identical to running without one.
    pub fn plan_for(program: &Program, set: &InvariantSet, enabled: ChecksEnabled) -> InstrPlan {
        let mut plan = InstrPlan::none(program.num_insts());
        if enabled.luc {
            plan.require_block_enter();
        }
        let mut lock_sites: BTreeSet<InstId> = BTreeSet::new();
        if enabled.lock_alias {
            lock_sites.extend(set.self_alias_locks.iter().copied());
            for &(a, b) in &set.must_alias_locks {
                lock_sites.insert(a);
                lock_sites.insert(b);
            }
        }
        for inst in program.insts() {
            match inst.kind {
                InstKind::Call { ref callee, .. } => {
                    let indirect = matches!(callee, Callee::Indirect(_));
                    if enabled.contexts || (enabled.callees && indirect) {
                        plan.require(inst.id, hooks::CALL);
                    }
                }
                InstKind::Lock { .. } if lock_sites.contains(&inst.id) => {
                    plan.require(inst.id, hooks::LOCK);
                }
                _ => {}
            }
        }
        plan
    }

    /// The plan matching this checker's own set and enabled checks.
    pub fn plan(&self, program: &Program) -> InstrPlan {
        Self::plan_for(program, self.set, self.enabled)
    }
}

impl Tracer for InvariantChecker<'_> {
    fn on_block_enter(&mut self, _thread: ThreadId, _frame: FrameId, block: BlockId) {
        if !self.enabled.luc {
            return;
        }
        self.stats.checks += 1;
        self.stats.luc_checks += 1;
        if !self.visited.get(block.index()).copied().unwrap_or(false) {
            self.violations
                .insert(Violation::UnreachableBlock { block });
        }
    }

    fn on_call(&mut self, ctx: EventCtx, callee: FuncId, _callee_frame: FrameId) {
        if self.enabled.callees && self.indirect[ctx.inst.index()] {
            self.stats.checks += 1;
            self.stats.callee_checks += 1;
            let ok = self
                .set
                .callee_sets
                .get(&ctx.inst)
                .is_some_and(|s| s.contains(&callee));
            if !ok {
                self.violations.insert(Violation::UnexpectedCallee {
                    site: ctx.inst,
                    callee,
                });
            }
        }
        if self.enabled.contexts {
            let stack = self.stack_mut(ctx.thread);
            let parent = stack.last().map_or(Bloom::seed(), |&(_, s)| s);
            let state = Bloom::extend(parent, ctx.inst.raw());
            stack.push((ctx.inst, state));
            let depth = stack.len();
            self.stats.checks += 1;
            self.stats.context_checks += 1;
            if depth > MAX_CONTEXT_DEPTH || !self.bloom.maybe_contains_hash(state) {
                // A Bloom miss proves the context was never profiled. (A
                // Bloom hit is accepted without an exact test — the paper's
                // probabilistic-calling-context optimization [§5.2.3, citing
                // Bond & McKinley]; the ~1% false-positive rate is the
                // accepted trade for an O(1) common-case check.)
                let chain: Vec<InstId> = self.stacks[ctx.thread.index()]
                    .iter()
                    .map(|&(i, _)| i)
                    .collect();
                self.violations.insert(Violation::UnusedContext { chain });
            } else {
                self.stats.bloom_fast_path += 1;
            }
        }
    }

    fn on_return(
        &mut self,
        thread: ThreadId,
        _frame: FrameId,
        _func: FuncId,
        _value: Option<oha_interp::Value>,
        _operand: Option<oha_ir::Operand>,
        _caller_frame: FrameId,
        _call_inst: InstId,
    ) {
        if self.enabled.contexts {
            self.stack_mut(thread).pop();
        }
    }

    fn on_spawn(&mut self, ctx: EventCtx, child: ThreadId, entry: FuncId) {
        if self.enabled.callees && self.indirect[ctx.inst.index()] {
            self.stats.checks += 1;
            self.stats.callee_checks += 1;
            let ok = self
                .set
                .callee_sets
                .get(&ctx.inst)
                .is_some_and(|s| s.contains(&entry));
            if !ok {
                self.violations.insert(Violation::UnexpectedCallee {
                    site: ctx.inst,
                    callee: entry,
                });
            }
        }
        if self.enabled.singleton {
            let count = self.spawn_counts.entry(ctx.inst).or_insert(0);
            *count += 1;
            self.stats.checks += 1;
            self.stats.singleton_checks += 1;
            if *count > 1 && self.set.singleton_spawns.contains(&ctx.inst) {
                self.violations
                    .insert(Violation::NonSingletonSpawn { site: ctx.inst });
            }
        }
        if self.enabled.contexts {
            let idx = child.index();
            if self.stacks.len() <= idx {
                self.stacks.resize(idx + 1, Vec::new());
            }
            self.stacks[idx].clear();
        }
    }

    fn on_lock(&mut self, ctx: EventCtx, addr: Addr) {
        if !self.enabled.lock_alias {
            return;
        }
        let self_alias = self.set.self_alias_locks.contains(&ctx.inst);
        let partners = self.partners.get(&ctx.inst);
        if !self_alias && partners.is_none() {
            return;
        }
        self.stats.checks += 1;
        self.stats.lock_alias_checks += 1;
        // The site must always lock one object, equal to its partners'.
        if let Some(&first) = self.first_lock.get(&ctx.inst) {
            if first != addr {
                self.violations.insert(Violation::LockAlias {
                    site: ctx.inst,
                    partner: partners.map_or(ctx.inst, |p| p[0]),
                });
            }
        }
        for &p in partners.into_iter().flatten() {
            if let Some(&pa) = self.first_lock.get(&p) {
                if pa != addr {
                    self.violations.insert(Violation::LockAlias {
                        site: ctx.inst,
                        partner: p,
                    });
                }
            }
        }
        self.first_lock.entry(ctx.inst).or_insert(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{ProfileTracer, RunProfile};
    use oha_interp::{Machine, MachineConfig};
    use oha_ir::{Operand, ProgramBuilder};
    use Operand::{Const, Reg as R};

    /// Program whose behaviour depends on input: input != 0 takes a hot
    /// path; input == 0 executes the cold block and calls through a second
    /// function pointer.
    fn program() -> oha_ir::Program {
        let mut pb = ProgramBuilder::new();
        let f1 = pb.declare("one", 1);
        let f2 = pb.declare("two", 1);
        let mut m = pb.function("main", 0);
        let sel = m.input();
        let fp1 = m.addr_func(f1);
        let fp2 = m.addr_func(f2);
        let hot = m.block();
        let cold = m.block();
        let end = m.block();
        m.branch(R(sel), hot, cold);
        m.select(hot);
        m.call_indirect_void(R(fp1), vec![Const(1)]);
        m.jump(end);
        m.select(cold);
        m.call_indirect_void(R(fp2), vec![Const(2)]);
        m.jump(end);
        m.select(end);
        m.ret(None);
        let main = pb.finish_function(m);
        for name in ["one", "two"] {
            let mut f = pb.function(name, 1);
            f.ret(None);
            pb.finish_function(f);
        }
        pb.finish(main).unwrap()
    }

    fn profile(p: &oha_ir::Program, inputs: &[&[i64]]) -> InvariantSet {
        let profiles: Vec<RunProfile> = inputs
            .iter()
            .map(|input| {
                let mut t = ProfileTracer::new(p);
                Machine::new(p, MachineConfig::default()).run(input, &mut t);
                t.into_profile()
            })
            .collect();
        InvariantSet::from_profiles(&profiles)
    }

    #[test]
    fn clean_run_on_profiled_input_has_no_violations() {
        let p = program();
        let set = profile(&p, &[&[1]]);
        let mut checker = InvariantChecker::new(&p, &set, ChecksEnabled::all());
        Machine::new(&p, MachineConfig::default()).run(&[1], &mut checker);
        assert!(!checker.is_violated(), "{:?}", checker.violations);
        assert!(checker.stats().checks > 0);
    }

    #[test]
    fn unprofiled_path_violates_luc_and_callee_and_context() {
        let p = program();
        let set = profile(&p, &[&[1]]);
        let mut checker = InvariantChecker::new(&p, &set, ChecksEnabled::all());
        Machine::new(&p, MachineConfig::default()).run(&[0], &mut checker);
        let vs: Vec<_> = checker.violations().cloned().collect();
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::UnreachableBlock { .. })),
            "{vs:?}"
        );
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::UnexpectedCallee { .. })),
            "{vs:?}"
        );
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::UnusedContext { .. })),
            "{vs:?}"
        );
    }

    #[test]
    fn profiling_both_paths_removes_violations() {
        let p = program();
        let set = profile(&p, &[&[1], &[0]]);
        for input in [&[1][..], &[0][..]] {
            let mut checker = InvariantChecker::new(&p, &set, ChecksEnabled::all());
            Machine::new(&p, MachineConfig::default()).run(input, &mut checker);
            assert!(!checker.is_violated());
        }
    }

    #[test]
    fn disabled_checks_report_nothing() {
        let p = program();
        let set = profile(&p, &[&[1]]);
        let mut checker = InvariantChecker::new(&p, &set, ChecksEnabled::none());
        Machine::new(&p, MachineConfig::default()).run(&[0], &mut checker);
        assert!(!checker.is_violated());
        assert_eq!(checker.stats().checks, 0);
    }

    #[test]
    fn singleton_spawn_violation_detected() {
        let mut pb = ProgramBuilder::new();
        let w = pb.declare("w", 1);
        let mut m = pb.function("main", 0);
        let n = m.input();
        let head = m.block();
        let body = m.block();
        let exit = m.block();
        let i = m.copy(Const(0));
        m.jump(head);
        m.select(head);
        let c = m.cmp(oha_ir::CmpOp::Lt, R(i), R(n));
        m.branch(R(c), body, exit);
        m.select(body);
        let t = m.spawn(w, Const(0));
        m.join(R(t));
        let i1 = m.bin(oha_ir::BinOp::Add, R(i), Const(1));
        m.copy_to(i, R(i1));
        m.jump(head);
        m.select(exit);
        m.ret(None);
        let main = pb.finish_function(m);
        let mut f = pb.function("w", 1);
        f.ret(None);
        pb.finish_function(f);
        let p = pb.finish(main).unwrap();

        // Profile with one spawn; test with three.
        let set = profile(&p, &[&[1]]);
        assert_eq!(set.singleton_spawns.len(), 1);
        let mut checker = InvariantChecker::new(&p, &set, ChecksEnabled::for_optft());
        Machine::new(&p, MachineConfig::default()).run(&[3], &mut checker);
        assert!(checker
            .violations()
            .any(|v| matches!(v, Violation::NonSingletonSpawn { .. })));
    }
}
