//! Per-execution profiling of invariant candidates.

use std::collections::{BTreeMap, BTreeSet};

use oha_interp::{Addr, EventCtx, FrameId, ThreadId, Tracer};
use oha_ir::{BlockId, Callee, FuncId, InstId, InstKind, Program};

use crate::set::MAX_CONTEXT_DEPTH;

/// Everything one profiling execution observed that can seed likely
/// invariants.
///
/// Produced by [`ProfileTracer`]; merged across runs by
/// [`InvariantSet::from_profiles`](crate::InvariantSet::from_profiles).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunProfile {
    /// Basic-block execution counts (absent = never executed).
    pub block_counts: BTreeMap<BlockId, u64>,
    /// Observed targets of indirect call *and* spawn sites.
    pub callee_obs: BTreeMap<InstId, BTreeSet<FuncId>>,
    /// Observed call-site chains (starting at each thread's entry function),
    /// truncated at [`MAX_CONTEXT_DEPTH`].
    pub contexts: BTreeSet<Vec<InstId>>,
    /// The dynamic lock addresses each lock site acquired.
    pub lock_objs: BTreeMap<InstId, BTreeSet<Addr>>,
    /// Threads spawned per spawn site.
    pub spawn_counts: BTreeMap<InstId, u64>,
}

impl RunProfile {
    /// Lock-site pairs that *must alias* in this run: both sites locked
    /// exactly one dynamic address, and it was the same address (paper
    /// §4.2.2).
    pub fn must_alias_pairs(&self) -> BTreeSet<(InstId, InstId)> {
        let singles: Vec<(InstId, Addr)> = self
            .lock_objs
            .iter()
            .filter(|(_, objs)| objs.len() == 1)
            .map(|(&site, objs)| (site, *objs.iter().next().expect("len checked")))
            .collect();
        let mut pairs = BTreeSet::new();
        for (i, &(s1, a1)) in singles.iter().enumerate() {
            for &(s2, a2) in &singles[i + 1..] {
                if a1 == a2 {
                    pairs.insert((s1.min(s2), s1.max(s2)));
                }
            }
        }
        pairs
    }

    /// Lock sites that executed in this run.
    pub fn executed_lock_sites(&self) -> BTreeSet<InstId> {
        self.lock_objs.keys().copied().collect()
    }
}

/// A [`Tracer`] that gathers a [`RunProfile`].
///
/// Compose it with the machine via [`Machine::run`](oha_interp::Machine::run)
/// on each profiling input, then merge the collected profiles.
#[derive(Debug)]
pub struct ProfileTracer<'p> {
    program: &'p Program,
    profile: RunProfile,
    /// Per-thread call-site chains.
    stacks: Vec<Vec<InstId>>,
}

impl<'p> ProfileTracer<'p> {
    /// Creates a profiler for `program`.
    pub fn new(program: &'p Program) -> Self {
        Self {
            program,
            profile: RunProfile::default(),
            stacks: vec![Vec::new()],
        }
    }

    /// Consumes the profiler, yielding the gathered profile.
    pub fn into_profile(self) -> RunProfile {
        self.profile
    }

    fn stack_mut(&mut self, thread: ThreadId) -> &mut Vec<InstId> {
        if self.stacks.len() <= thread.index() {
            self.stacks.resize(thread.index() + 1, Vec::new());
        }
        &mut self.stacks[thread.index()]
    }

    fn is_indirect(&self, inst: InstId) -> bool {
        matches!(
            self.program.inst(inst).kind,
            InstKind::Call {
                callee: Callee::Indirect(_),
                ..
            } | InstKind::Spawn {
                func: Callee::Indirect(_),
                ..
            }
        )
    }
}

impl Tracer for ProfileTracer<'_> {
    fn on_block_enter(&mut self, _thread: ThreadId, _frame: FrameId, block: BlockId) {
        *self.profile.block_counts.entry(block).or_insert(0) += 1;
    }

    fn on_call(&mut self, ctx: EventCtx, callee: FuncId, _callee_frame: FrameId) {
        if self.is_indirect(ctx.inst) {
            self.profile
                .callee_obs
                .entry(ctx.inst)
                .or_default()
                .insert(callee);
        }
        let stack = self.stack_mut(ctx.thread);
        stack.push(ctx.inst);
        if stack.len() <= MAX_CONTEXT_DEPTH {
            let chain = stack.clone();
            self.profile.contexts.insert(chain);
        }
    }

    fn on_return(
        &mut self,
        thread: ThreadId,
        _frame: FrameId,
        _func: FuncId,
        _value: Option<oha_interp::Value>,
        _operand: Option<oha_ir::Operand>,
        _caller_frame: FrameId,
        _call_inst: InstId,
    ) {
        self.stack_mut(thread).pop();
    }

    fn on_spawn(&mut self, ctx: EventCtx, child: ThreadId, entry: FuncId) {
        *self.profile.spawn_counts.entry(ctx.inst).or_insert(0) += 1;
        if self.is_indirect(ctx.inst) {
            self.profile
                .callee_obs
                .entry(ctx.inst)
                .or_default()
                .insert(entry);
        }
        // The child starts with an empty call chain.
        let idx = child.index();
        if self.stacks.len() <= idx {
            self.stacks.resize(idx + 1, Vec::new());
        }
        self.stacks[idx].clear();
    }

    fn on_lock(&mut self, ctx: EventCtx, addr: Addr) {
        self.profile
            .lock_objs
            .entry(ctx.inst)
            .or_default()
            .insert(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_interp::{Machine, MachineConfig, NoopTracer, ObjId};
    use oha_ir::{Operand, ProgramBuilder};
    use Operand::{Const, Reg as R};

    /// A program with: an indirect call selected by input, a cold block, a
    /// lock site, and a conditional spawn loop.
    fn program() -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("lockobj", 1);
        let f1 = pb.declare("one", 1);
        let f2 = pb.declare("two", 1);
        let worker = pb.declare("worker", 1);

        let mut m = pb.function("main", 0);
        let sel = m.input();
        let fp1 = m.addr_func(f1);
        let fp2 = m.addr_func(f2);
        let t = m.reg();
        let pick2 = m.block();
        let call_b = m.block();
        let cold = m.block();
        let end = m.block();
        m.copy_to(t, R(fp1));
        m.branch(R(sel), call_b, pick2);
        m.select(pick2);
        m.copy_to(t, R(fp2));
        m.jump(call_b);
        m.select(call_b);
        m.call_indirect_void(R(t), vec![Const(1)]);
        let ga = m.addr_global(g);
        m.lock(R(ga));
        m.unlock(R(ga));
        let h = m.spawn(worker, Const(0));
        m.join(R(h));
        let c = m.input();
        m.branch(R(c), cold, end);
        m.select(cold);
        m.output(Const(-1));
        m.jump(end);
        m.select(end);
        m.ret(None);
        let main = pb.finish_function(m);

        for name in ["one", "two", "worker"] {
            let mut f = pb.function(name, 1);
            f.ret(None);
            pb.finish_function(f);
        }
        pb.finish(main).unwrap()
    }

    use oha_ir::Program;

    fn profile_run(p: &Program, input: &[i64]) -> RunProfile {
        let mut tracer = ProfileTracer::new(p);
        Machine::new(p, MachineConfig::default()).run(input, &mut tracer);
        tracer.into_profile()
    }

    #[test]
    fn records_blocks_callees_locks_spawns() {
        let p = program();
        let prof = profile_run(&p, &[1, 0]); // take f1, skip cold block
                                             // Cold block never counted.
        let executed: Vec<u64> = prof.block_counts.values().copied().collect();
        assert!(executed.iter().all(|&c| c >= 1));
        assert!(
            prof.block_counts.len() < p.num_blocks(),
            "cold block absent"
        );
        // One indirect call site observed with exactly one target.
        assert_eq!(prof.callee_obs.len(), 1);
        let targets = prof.callee_obs.values().next().unwrap();
        assert_eq!(targets.len(), 1);
        // The lock site locked exactly the global (object 0).
        assert_eq!(prof.lock_objs.len(), 1);
        let objs = prof.lock_objs.values().next().unwrap();
        assert_eq!(objs.iter().next().unwrap().obj, ObjId(0));
        // One spawn site, one thread.
        assert_eq!(prof.spawn_counts.values().copied().max(), Some(1));
    }

    #[test]
    fn different_inputs_see_different_callees() {
        let p = program();
        let a = profile_run(&p, &[1, 0]);
        let b = profile_run(&p, &[0, 0]);
        let ta = a.callee_obs.values().next().unwrap();
        let tb = b.callee_obs.values().next().unwrap();
        assert_ne!(ta, tb, "input selects the indirect target");
    }

    #[test]
    fn contexts_include_call_chains() {
        let p = program();
        let prof = profile_run(&p, &[1, 0]);
        // The indirect call from main is a depth-1 chain.
        assert!(prof.contexts.iter().any(|c| c.len() == 1));
        assert!(!prof.contexts.contains(&Vec::new()));
    }

    #[test]
    fn must_alias_requires_singleton_and_equal() {
        let mut prof = RunProfile::default();
        let s1 = InstId::new(1);
        let s2 = InstId::new(2);
        let s3 = InstId::new(3);
        let a = Addr::new(ObjId(0), 0);
        let b = Addr::new(ObjId(1), 0);
        prof.lock_objs.insert(s1, [a].into_iter().collect());
        prof.lock_objs.insert(s2, [a].into_iter().collect());
        prof.lock_objs.insert(s3, [a, b].into_iter().collect());
        let pairs = prof.must_alias_pairs();
        assert_eq!(pairs.len(), 1);
        assert!(pairs.contains(&(s1, s2)));
    }

    #[test]
    fn profiling_does_not_change_execution() {
        let p = program();
        let cfg = MachineConfig::default();
        let mut tracer = ProfileTracer::new(&p);
        let with = Machine::new(&p, cfg).run(&[1, 1], &mut tracer);
        let without = Machine::new(&p, cfg).run(&[1, 1], &mut NoopTracer);
        assert_eq!(with.outputs, without.outputs);
        assert_eq!(with.steps, without.steps);
    }
}
