//! Likely invariants: profiling, merging, storage and runtime checking.
//!
//! Optimistic hybrid analysis (paper §2.1) learns *likely invariants* from a
//! set of profiled executions and assumes them during predicated static
//! analysis. This crate implements the six invariants used by OptFT and
//! OptSlice:
//!
//! | Invariant | Paper | Profiled as |
//! |---|---|---|
//! | Likely unreachable code | §4.2.1/§5.2.1 | visited basic blocks (complemented) |
//! | Likely guarding locks | §4.2.2 | per-lock-site locked-object sets → must-alias pairs |
//! | Likely singleton threads | §4.2.3 | per-spawn-site thread counts |
//! | No custom synchronization | §4.2.4 | tool-level (OptFT) race-report comparison |
//! | Likely callee sets | §5.2.2 | per-indirect-call-site target sets |
//! | Likely unused call contexts | §5.2.3 | observed call-site chains |
//!
//! [`ProfileTracer`] gathers a [`RunProfile`] per execution; [`InvariantSet`]
//! merges profiles using the paper's rule (union for *reachable*-style facts,
//! whose complements are therefore intersected); [`InvariantChecker`]
//! verifies the assumptions during an analyzed execution and records
//! [`Violation`]s, with the call-context check accelerated by a [`Bloom`]
//! filter exactly as in §5.2.3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accum;
mod bloom;
mod checker;
mod profile;
mod set;

pub use accum::InvariantAccumulator;
pub use bloom::Bloom;
pub use checker::{CheckStats, ChecksEnabled, InvariantChecker, Violation};
pub use profile::{ProfileTracer, RunProfile};
pub use set::{InvariantSet, ParseInvariantsError, MAX_CONTEXT_DEPTH};
