//! Merged likely-invariant sets and their text-file representation.

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

use oha_ir::{BlockId, Fingerprint, FuncId, InstId, Program};

use crate::profile::RunProfile;

/// Call-site chains longer than this are not recorded or assumed; deeper
/// contexts therefore conservatively count as invariant violations.
pub const MAX_CONTEXT_DEPTH: usize = 64;

/// The merged likely invariants of a set of profiling runs (paper §4.2,
/// §5.2).
///
/// Merge rule: *reachable*-style observations (visited blocks, callee sets,
/// call contexts) are unioned across runs — their complements (the assumed
/// unreachable/unused sets) are thereby intersected. Must-alias lock pairs
/// and singleton-spawn facts must hold in every run that exercised them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InvariantSet {
    /// Blocks executed by at least one profiling run. The complement is the
    /// likely-unreachable-code (LUC) set.
    pub visited_blocks: BTreeSet<BlockId>,
    /// Observed targets per indirect call/spawn site (likely callee sets).
    pub callee_sets: BTreeMap<InstId, BTreeSet<FuncId>>,
    /// Observed call-site chains (likely *used* call contexts; the unused
    /// ones are the complement).
    pub contexts: BTreeSet<Vec<InstId>>,
    /// Lock-site pairs assumed to always lock the same dynamic object
    /// (likely guarding locks).
    pub must_alias_locks: BTreeSet<(InstId, InstId)>,
    /// Lock sites assumed to lock a *single* dynamic object per execution,
    /// so two threads passing the same site must hold the same lock. This
    /// is the same profiling data as [`must_alias_locks`] applied to one
    /// site (`InvariantSet::must_alias_locks` links two sites).
    ///
    /// [`must_alias_locks`]: InvariantSet::must_alias_locks
    pub self_alias_locks: BTreeSet<InstId>,
    /// Spawn sites assumed to create at most one thread per execution
    /// (likely singleton threads).
    pub singleton_spawns: BTreeSet<InstId>,
    /// Lock/unlock sites whose instrumentation the race detector may elide
    /// (no-custom-synchronization invariant). Filled in by the OptFT
    /// profiling loop, not by [`InvariantSet::from_profiles`].
    pub elidable_locks: BTreeSet<InstId>,
    /// Number of profiling runs merged into this set.
    pub num_profiles: usize,
}

impl InvariantSet {
    /// Merges per-run profiles with the §2.1 *aggressive* trade-off: a
    /// reachable-style fact (visited block, callee, call context) is kept
    /// only if it was observed in **more than** `min_support` of the runs.
    ///
    /// `min_support == 0.0` reproduces [`InvariantSet::from_profiles`]
    /// exactly (any single observation keeps the fact). Larger values make
    /// the assumed-unreachable sets *stronger* — rare-but-real behaviour is
    /// assumed away, enabling more static pruning — at the price of
    /// *stability*: executions exercising the discarded tail now
    /// mis-speculate. The paper: "this stronger, but less stable invariant
    /// may result in significant reduction in dynamic checks, but increase
    /// the chance of invariant violations".
    ///
    /// Must-alias, self-alias and singleton facts keep their strict
    /// all-runs rule: weakening them does not increase strength, only risk.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= min_support < 1.0`.
    pub fn from_profiles_with_threshold(profiles: &[RunProfile], min_support: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&min_support),
            "min_support must be in [0, 1)"
        );
        let mut set = Self::from_profiles(profiles);
        if min_support == 0.0 || profiles.is_empty() {
            return set;
        }
        let n = profiles.len() as f64;
        let keep = |count: usize| count as f64 / n > min_support;

        let mut block_support: BTreeMap<BlockId, usize> = BTreeMap::new();
        let mut callee_support: BTreeMap<(InstId, FuncId), usize> = BTreeMap::new();
        let mut context_support: BTreeMap<&Vec<InstId>, usize> = BTreeMap::new();
        for p in profiles {
            for &b in p.block_counts.keys() {
                *block_support.entry(b).or_insert(0) += 1;
            }
            for (&site, targets) in &p.callee_obs {
                for &t in targets {
                    *callee_support.entry((site, t)).or_insert(0) += 1;
                }
            }
            for chain in &p.contexts {
                *context_support.entry(chain).or_insert(0) += 1;
            }
        }
        set.visited_blocks
            .retain(|b| keep(block_support.get(b).copied().unwrap_or(0)));
        set.contexts
            .retain(|c| keep(context_support.get(c).copied().unwrap_or(0)));
        for (site, targets) in set.callee_sets.iter_mut() {
            targets.retain(|t| keep(callee_support.get(&(*site, *t)).copied().unwrap_or(0)));
        }
        set.callee_sets.retain(|_, targets| !targets.is_empty());
        set
    }

    /// Merges per-run profiles into one invariant set.
    ///
    /// # Examples
    ///
    /// ```
    /// use oha_invariants::{InvariantSet, RunProfile};
    /// use oha_ir::BlockId;
    ///
    /// let mut a = RunProfile::default();
    /// a.block_counts.insert(BlockId::new(0), 4);
    /// let mut b = RunProfile::default();
    /// b.block_counts.insert(BlockId::new(1), 1);
    /// let set = InvariantSet::from_profiles(&[a, b]);
    /// // Visited blocks union across runs.
    /// assert!(set.is_visited(BlockId::new(0)) && set.is_visited(BlockId::new(1)));
    /// ```
    pub fn from_profiles(profiles: &[RunProfile]) -> Self {
        let mut set = InvariantSet {
            num_profiles: profiles.len(),
            ..InvariantSet::default()
        };

        // Reachable-style facts: union.
        for p in profiles {
            set.visited_blocks.extend(p.block_counts.keys().copied());
            for (&site, targets) in &p.callee_obs {
                set.callee_sets.entry(site).or_default().extend(targets);
            }
            set.contexts.extend(p.contexts.iter().cloned());
        }

        // Must-alias lock pairs: a pair survives iff it holds in every run
        // where either site executed.
        let mut candidates: BTreeSet<(InstId, InstId)> = BTreeSet::new();
        for p in profiles {
            candidates.extend(p.must_alias_pairs());
        }
        for p in profiles {
            let executed = p.executed_lock_sites();
            let run_pairs = p.must_alias_pairs();
            candidates.retain(|pair| {
                run_pairs.contains(pair)
                    || (!executed.contains(&pair.0) && !executed.contains(&pair.1))
            });
        }
        set.must_alias_locks = candidates;

        // Self-aliasing sites: the locked-object set is a singleton in
        // every run that exercised the site.
        let mut self_candidates: BTreeSet<InstId> = BTreeSet::new();
        for p in profiles {
            self_candidates.extend(
                p.lock_objs
                    .iter()
                    .filter(|(_, objs)| objs.len() == 1)
                    .map(|(&s, _)| s),
            );
        }
        for p in profiles {
            self_candidates.retain(|s| p.lock_objs.get(s).is_none_or(|objs| objs.len() == 1));
        }
        set.self_alias_locks = self_candidates;

        // Singleton spawns: the max observed count over all runs is 1.
        let mut max_counts: BTreeMap<InstId, u64> = BTreeMap::new();
        for p in profiles {
            for (&site, &count) in &p.spawn_counts {
                let e = max_counts.entry(site).or_insert(0);
                *e = (*e).max(count);
            }
        }
        set.singleton_spawns = max_counts
            .into_iter()
            .filter(|&(_, c)| c == 1)
            .map(|(s, _)| s)
            .collect();

        set
    }

    /// The likely-unreachable blocks of `program` under this set.
    pub fn assumed_unreachable(&self, program: &Program) -> Vec<BlockId> {
        program
            .block_ids()
            .filter(|b| !self.visited_blocks.contains(b))
            .collect()
    }

    /// Whether a block was seen by profiling (assumed reachable).
    pub fn is_visited(&self, block: BlockId) -> bool {
        self.visited_blocks.contains(&block)
    }

    /// Total count of individual invariant facts (used to decide when
    /// profiling has stabilized, §6.1).
    pub fn fact_count(&self) -> usize {
        self.visited_blocks.len()
            + self.callee_sets.values().map(|s| s.len()).sum::<usize>()
            + self.contexts.len()
            + self.must_alias_locks.len()
            + self.self_alias_locks.len()
            + self.singleton_spawns.len()
            + self.elidable_locks.len()
    }

    /// A stable 128-bit content fingerprint of this invariant set.
    ///
    /// Hashes the canonical text form ([`InvariantSet::to_text`], whose
    /// ordering is fixed by the underlying B-tree collections) with the
    /// `num_profiles` bookkeeping zeroed out: two sets fingerprint equal
    /// iff they assert the same *facts*, regardless of how many profiling
    /// runs produced them. Stable across process runs and `OHA_THREADS`
    /// settings; used as the invariant half of the `oha-store` artifact
    /// key.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut canonical = self.clone();
        canonical.num_profiles = 0;
        Fingerprint::of_bytes(canonical.to_text().as_bytes())
    }

    /// Serializes the set in the plain-text format the paper describes
    /// ("stores the invariant set … in a text file", §4.2).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "profiles {}", self.num_profiles);
        for b in &self.visited_blocks {
            let _ = writeln!(out, "block {}", b.raw());
        }
        for (site, targets) in &self.callee_sets {
            let _ = write!(out, "callee {}", site.raw());
            for t in targets {
                let _ = write!(out, " {}", t.raw());
            }
            let _ = writeln!(out);
        }
        for chain in &self.contexts {
            let _ = write!(out, "context");
            for c in chain {
                let _ = write!(out, " {}", c.raw());
            }
            let _ = writeln!(out);
        }
        for (a, b) in &self.must_alias_locks {
            let _ = writeln!(out, "mustalias {} {}", a.raw(), b.raw());
        }
        for s in &self.self_alias_locks {
            let _ = writeln!(out, "selfalias {}", s.raw());
        }
        for s in &self.singleton_spawns {
            let _ = writeln!(out, "singleton {}", s.raw());
        }
        for s in &self.elidable_locks {
            let _ = writeln!(out, "elidable {}", s.raw());
        }
        out
    }

    /// Parses the text format produced by [`InvariantSet::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseInvariantsError`] on unknown directives or malformed
    /// numbers.
    pub fn from_text(text: &str) -> Result<Self, ParseInvariantsError> {
        let mut set = InvariantSet::default();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut toks = line.split_whitespace();
            let head = toks.next().expect("non-empty line");
            let nums: Result<Vec<u32>, _> = toks.map(|t| t.parse::<u32>()).collect();
            let nums = nums.map_err(|_| ParseInvariantsError {
                line: ln + 1,
                message: "malformed number".to_string(),
            })?;
            let need = |n: usize| -> Result<(), ParseInvariantsError> {
                if nums.len() < n {
                    Err(ParseInvariantsError {
                        line: ln + 1,
                        message: format!("expected at least {n} operands"),
                    })
                } else {
                    Ok(())
                }
            };
            match head {
                "profiles" => {
                    need(1)?;
                    set.num_profiles = nums[0] as usize;
                }
                "block" => {
                    need(1)?;
                    set.visited_blocks.insert(BlockId::new(nums[0]));
                }
                "callee" => {
                    need(1)?;
                    set.callee_sets
                        .entry(InstId::new(nums[0]))
                        .or_default()
                        .extend(nums[1..].iter().map(|&n| FuncId::new(n)));
                }
                "context" => {
                    need(1)?;
                    set.contexts
                        .insert(nums.iter().map(|&n| InstId::new(n)).collect());
                }
                "mustalias" => {
                    need(2)?;
                    set.must_alias_locks
                        .insert((InstId::new(nums[0]), InstId::new(nums[1])));
                }
                "selfalias" => {
                    need(1)?;
                    set.self_alias_locks.insert(InstId::new(nums[0]));
                }
                "singleton" => {
                    need(1)?;
                    set.singleton_spawns.insert(InstId::new(nums[0]));
                }
                "elidable" => {
                    need(1)?;
                    set.elidable_locks.insert(InstId::new(nums[0]));
                }
                other => {
                    return Err(ParseInvariantsError {
                        line: ln + 1,
                        message: format!("unknown directive {other:?}"),
                    })
                }
            }
        }
        Ok(set)
    }
}

/// Error parsing the invariant text format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseInvariantsError {
    line: usize,
    message: String,
}

impl ParseInvariantsError {
    /// 1-based line of the failure.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseInvariantsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseInvariantsError {}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_interp::{Addr, ObjId};

    fn site(n: u32) -> InstId {
        InstId::new(n)
    }

    #[test]
    fn union_merge_for_reachable_facts() {
        let mut a = RunProfile::default();
        a.block_counts.insert(BlockId::new(0), 3);
        a.callee_obs
            .insert(site(5), [FuncId::new(1)].into_iter().collect());
        a.contexts.insert(vec![site(5)]);
        let mut b = RunProfile::default();
        b.block_counts.insert(BlockId::new(1), 1);
        b.callee_obs
            .insert(site(5), [FuncId::new(2)].into_iter().collect());
        b.contexts.insert(vec![site(9)]);

        let set = InvariantSet::from_profiles(&[a, b]);
        assert_eq!(set.visited_blocks.len(), 2);
        assert_eq!(set.callee_sets[&site(5)].len(), 2, "callee sets union");
        assert_eq!(set.contexts.len(), 2);
        assert_eq!(set.num_profiles, 2);
    }

    #[test]
    fn must_alias_pairs_intersect_across_runs() {
        let addr = |o| Addr::new(ObjId(o), 0);
        // Run A: sites 1,2 lock the same object; site 3 idle.
        let mut a = RunProfile::default();
        a.lock_objs.insert(site(1), [addr(7)].into_iter().collect());
        a.lock_objs.insert(site(2), [addr(7)].into_iter().collect());
        // Run B: sites 1,2 lock different objects; 1,3 alias.
        let mut b = RunProfile::default();
        b.lock_objs.insert(site(1), [addr(8)].into_iter().collect());
        b.lock_objs.insert(site(2), [addr(9)].into_iter().collect());
        b.lock_objs.insert(site(3), [addr(8)].into_iter().collect());

        let set = InvariantSet::from_profiles(&[a.clone(), b.clone()]);
        assert!(set.must_alias_locks.is_empty(), "(1,2) broken by B; (1,3) broken by A because 1 executed with a different partner object");

        // If site 3 never runs in A, (1,3) still fails because in run A
        // site 1 executed but the pair did not hold... unless site 3 was
        // idle, in which case the pair is only checked in B. Verify the
        // "either executed" rule: pair (2,3) never co-held, absent.
        let set_b_only = InvariantSet::from_profiles(&[b]);
        assert!(set_b_only.must_alias_locks.contains(&(site(1), site(3))));
    }

    #[test]
    fn must_alias_survives_idle_runs() {
        let addr = |o| Addr::new(ObjId(o), 0);
        let mut a = RunProfile::default();
        a.lock_objs.insert(site(1), [addr(7)].into_iter().collect());
        a.lock_objs.insert(site(2), [addr(7)].into_iter().collect());
        // Run B never locks anything.
        let b = RunProfile::default();
        let set = InvariantSet::from_profiles(&[a, b]);
        assert!(set.must_alias_locks.contains(&(site(1), site(2))));
    }

    #[test]
    fn singleton_spawns_require_count_one_everywhere() {
        let mut a = RunProfile::default();
        a.spawn_counts.insert(site(1), 1);
        a.spawn_counts.insert(site(2), 1);
        let mut b = RunProfile::default();
        b.spawn_counts.insert(site(2), 4);
        let set = InvariantSet::from_profiles(&[a, b]);
        assert!(set.singleton_spawns.contains(&site(1)));
        assert!(!set.singleton_spawns.contains(&site(2)));
    }

    #[test]
    fn text_round_trip() {
        let mut a = RunProfile::default();
        a.block_counts.insert(BlockId::new(3), 2);
        a.callee_obs.insert(
            site(4),
            [FuncId::new(0), FuncId::new(2)].into_iter().collect(),
        );
        a.contexts.insert(vec![site(4), site(6)]);
        a.spawn_counts.insert(site(9), 1);
        a.lock_objs
            .insert(site(10), [Addr::new(ObjId(1), 0)].into_iter().collect());
        a.lock_objs
            .insert(site(11), [Addr::new(ObjId(1), 0)].into_iter().collect());
        let mut set = InvariantSet::from_profiles(&[a]);
        set.elidable_locks.insert(site(10));

        let text = set.to_text();
        let parsed = InvariantSet::from_text(&text).unwrap();
        assert_eq!(parsed, set);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(InvariantSet::from_text("frobnicate 1").is_err());
        assert!(InvariantSet::from_text("block x").is_err());
        let err = InvariantSet::from_text("profiles 1\nmustalias 3").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn aggressive_threshold_drops_rare_facts() {
        // Block b0 visited in every run; b1 in only one of four.
        let mk = |blocks: &[u32]| {
            let mut p = RunProfile::default();
            for &b in blocks {
                p.block_counts.insert(BlockId::new(b), 1);
            }
            p.contexts.insert(vec![site(9)]);
            p
        };
        let profiles = vec![mk(&[0, 1]), mk(&[0]), mk(&[0]), mk(&[0])];

        let standard = InvariantSet::from_profiles_with_threshold(&profiles, 0.0);
        assert!(standard.visited_blocks.contains(&BlockId::new(1)));

        let aggressive = InvariantSet::from_profiles_with_threshold(&profiles, 0.5);
        assert!(aggressive.visited_blocks.contains(&BlockId::new(0)));
        assert!(
            !aggressive.visited_blocks.contains(&BlockId::new(1)),
            "25% support < 50% threshold"
        );
        assert!(
            aggressive.contexts.contains(&vec![site(9)]),
            "full-support contexts survive"
        );
        // The aggressive set is always a subset of the standard one.
        assert!(aggressive
            .visited_blocks
            .is_subset(&standard.visited_blocks));
    }

    #[test]
    fn aggressive_threshold_prunes_callee_entries() {
        let mut a = RunProfile::default();
        a.callee_obs.insert(
            site(4),
            [FuncId::new(0), FuncId::new(1)].into_iter().collect(),
        );
        let mut b = RunProfile::default();
        b.callee_obs
            .insert(site(4), [FuncId::new(0)].into_iter().collect());
        let profiles = vec![a, b];
        let aggressive = InvariantSet::from_profiles_with_threshold(&profiles, 0.6);
        assert_eq!(
            aggressive.callee_sets[&site(4)],
            [FuncId::new(0)].into_iter().collect(),
            "half-support callee dropped at 60%"
        );
    }

    #[test]
    #[should_panic(expected = "min_support")]
    fn aggressive_threshold_validates_range() {
        let _ = InvariantSet::from_profiles_with_threshold(&[], 1.0);
    }

    #[test]
    fn fact_count_sums_everything() {
        let mut set = InvariantSet::default();
        set.visited_blocks.insert(BlockId::new(0));
        set.contexts.insert(vec![site(1)]);
        set.singleton_spawns.insert(site(2));
        assert_eq!(set.fact_count(), 3);
    }
}
