//! Incremental profile merging.
//!
//! [`InvariantSet::from_profiles`](crate::InvariantSet::from_profiles)
//! re-reads every profile on every call, which makes a profile-until-stable
//! loop that merges after each run quadratic in the number of runs. The
//! [`InvariantAccumulator`] folds profiles in one at a time and can produce
//! the merged [`InvariantSet`] at any point, with the same result as a
//! batch merge of the profiles added so far.

use std::collections::{BTreeMap, BTreeSet};

use oha_ir::{BlockId, FuncId, InstId};

use crate::profile::RunProfile;
use crate::set::InvariantSet;

/// Incremental equivalent of [`InvariantSet::from_profiles`]: feed profiles
/// with [`InvariantAccumulator::add`], read the merged set with
/// [`InvariantAccumulator::snapshot`] or [`InvariantAccumulator::finish`].
///
/// # Examples
///
/// ```
/// use oha_invariants::{InvariantAccumulator, InvariantSet, RunProfile};
/// use oha_ir::BlockId;
///
/// let mut a = RunProfile::default();
/// a.block_counts.insert(BlockId::new(0), 4);
/// let mut b = RunProfile::default();
/// b.block_counts.insert(BlockId::new(1), 1);
///
/// let mut acc = InvariantAccumulator::new();
/// acc.add(&a);
/// acc.add(&b);
/// assert_eq!(acc.finish(), InvariantSet::from_profiles(&[a, b]));
/// ```
#[derive(Clone, Debug, Default)]
pub struct InvariantAccumulator {
    visited_blocks: BTreeSet<BlockId>,
    callee_sets: BTreeMap<InstId, BTreeSet<FuncId>>,
    contexts: BTreeSet<Vec<InstId>>,
    /// Must-alias candidates that have held in every run so far (in the
    /// holds-or-both-idle sense).
    alive_pairs: BTreeSet<(InstId, InstId)>,
    /// Pairs observed at some point but broken by some run; they can never
    /// come back.
    dead_pairs: BTreeSet<(InstId, InstId)>,
    /// Lock sites that executed in any run so far. A pair first observed
    /// now is invalid if an earlier run executed either site without it.
    executed_ever: BTreeSet<InstId>,
    /// Lock sites observed with a singleton locked-object set in some run.
    self_single: BTreeSet<InstId>,
    /// Lock sites observed with a multi-object set in some run (dead for
    /// self-aliasing).
    self_multi: BTreeSet<InstId>,
    /// Max spawn count observed per site across runs.
    max_spawn: BTreeMap<InstId, u64>,
    num_profiles: usize,
}

impl InvariantAccumulator {
    /// Creates an empty accumulator (equivalent to merging zero profiles).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of profiles folded in so far.
    pub fn num_profiles(&self) -> usize {
        self.num_profiles
    }

    /// Folds one run's profile into the merged state.
    pub fn add(&mut self, p: &RunProfile) {
        self.num_profiles += 1;

        // Reachable-style facts: union.
        self.visited_blocks.extend(p.block_counts.keys().copied());
        for (&site, targets) in &p.callee_obs {
            self.callee_sets.entry(site).or_default().extend(targets);
        }
        self.contexts.extend(p.contexts.iter().cloned());

        // Must-alias pairs. Surviving candidates must hold in this run or
        // have both sites idle; pairs first seen now are valid only if no
        // earlier run executed either site (it would have had to exhibit
        // the pair, putting it in `alive_pairs` already).
        let run_pairs = p.must_alias_pairs();
        let executed = p.executed_lock_sites();
        self.alive_pairs.retain(|pair| {
            let ok = run_pairs.contains(pair)
                || (!executed.contains(&pair.0) && !executed.contains(&pair.1));
            if !ok {
                self.dead_pairs.insert(*pair);
            }
            ok
        });
        for pair in run_pairs {
            if self.alive_pairs.contains(&pair) || self.dead_pairs.contains(&pair) {
                continue;
            }
            if self.executed_ever.contains(&pair.0) || self.executed_ever.contains(&pair.1) {
                self.dead_pairs.insert(pair);
            } else {
                self.alive_pairs.insert(pair);
            }
        }
        self.executed_ever.extend(executed);

        // Self-aliasing sites: singleton in some run, never multi.
        for (&site, objs) in &p.lock_objs {
            if objs.len() == 1 {
                self.self_single.insert(site);
            } else {
                self.self_multi.insert(site);
            }
        }

        // Singleton spawns: max count across runs must stay 1.
        for (&site, &count) in &p.spawn_counts {
            let e = self.max_spawn.entry(site).or_insert(0);
            *e = (*e).max(count);
        }
    }

    /// The fact count of the current merged set, without materializing it
    /// (drives the per-run convergence curve, `profile.fact_count`).
    pub fn fact_count(&self) -> usize {
        self.visited_blocks.len()
            + self.callee_sets.values().map(|s| s.len()).sum::<usize>()
            + self.contexts.len()
            + self.alive_pairs.len()
            + self
                .self_single
                .iter()
                .filter(|s| !self.self_multi.contains(*s))
                .count()
            + self.max_spawn.values().filter(|&&c| c == 1).count()
    }

    /// The merged set of every profile added so far (leaves the
    /// accumulator usable).
    pub fn snapshot(&self) -> InvariantSet {
        InvariantSet {
            visited_blocks: self.visited_blocks.clone(),
            callee_sets: self.callee_sets.clone(),
            contexts: self.contexts.clone(),
            must_alias_locks: self.alive_pairs.clone(),
            self_alias_locks: self
                .self_single
                .difference(&self.self_multi)
                .copied()
                .collect(),
            singleton_spawns: self
                .max_spawn
                .iter()
                .filter(|&(_, &c)| c == 1)
                .map(|(&s, _)| s)
                .collect(),
            elidable_locks: BTreeSet::new(),
            num_profiles: self.num_profiles,
        }
    }

    /// Consumes the accumulator, yielding the merged set.
    pub fn finish(self) -> InvariantSet {
        InvariantSet {
            self_alias_locks: self
                .self_single
                .difference(&self.self_multi)
                .copied()
                .collect(),
            singleton_spawns: self
                .max_spawn
                .iter()
                .filter(|&(_, &c)| c == 1)
                .map(|(&s, _)| s)
                .collect(),
            visited_blocks: self.visited_blocks,
            callee_sets: self.callee_sets,
            contexts: self.contexts,
            must_alias_locks: self.alive_pairs,
            elidable_locks: BTreeSet::new(),
            num_profiles: self.num_profiles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_interp::{Addr, ObjId};

    fn site(n: u32) -> InstId {
        InstId::new(n)
    }

    fn addr(o: u32) -> Addr {
        Addr::new(ObjId(o), 0)
    }

    fn batch_vs_incremental(profiles: &[RunProfile]) {
        let batch = InvariantSet::from_profiles(profiles);
        let mut acc = InvariantAccumulator::new();
        for (i, p) in profiles.iter().enumerate() {
            acc.add(p);
            let snap = acc.snapshot();
            assert_eq!(
                snap,
                InvariantSet::from_profiles(&profiles[..=i]),
                "snapshot after {} profiles",
                i + 1
            );
            assert_eq!(snap.fact_count(), acc.fact_count());
        }
        assert_eq!(acc.finish(), batch);
    }

    #[test]
    fn empty_matches_batch() {
        batch_vs_incremental(&[]);
    }

    #[test]
    fn unions_match_batch() {
        let mut a = RunProfile::default();
        a.block_counts.insert(BlockId::new(0), 3);
        a.callee_obs
            .insert(site(5), [FuncId::new(1)].into_iter().collect());
        a.contexts.insert(vec![site(5)]);
        let mut b = RunProfile::default();
        b.block_counts.insert(BlockId::new(1), 1);
        b.callee_obs
            .insert(site(5), [FuncId::new(2)].into_iter().collect());
        b.contexts.insert(vec![site(9)]);
        batch_vs_incremental(&[a, b]);
    }

    #[test]
    fn must_alias_pair_broken_by_later_run() {
        // Run A: 1,2 alias. Run B: they lock different objects.
        let mut a = RunProfile::default();
        a.lock_objs.insert(site(1), [addr(7)].into_iter().collect());
        a.lock_objs.insert(site(2), [addr(7)].into_iter().collect());
        let mut b = RunProfile::default();
        b.lock_objs.insert(site(1), [addr(8)].into_iter().collect());
        b.lock_objs.insert(site(2), [addr(9)].into_iter().collect());
        batch_vs_incremental(&[a, b]);
    }

    #[test]
    fn must_alias_pair_invalidated_by_earlier_run() {
        // Run A executes site 1 alone; run B pairs 1 with 3. The pair is
        // invalid: A executed site 1 without it.
        let mut a = RunProfile::default();
        a.lock_objs.insert(site(1), [addr(7)].into_iter().collect());
        let mut b = RunProfile::default();
        b.lock_objs.insert(site(1), [addr(8)].into_iter().collect());
        b.lock_objs.insert(site(3), [addr(8)].into_iter().collect());
        batch_vs_incremental(&[a, b]);
    }

    #[test]
    fn must_alias_survives_idle_runs() {
        let mut a = RunProfile::default();
        a.lock_objs.insert(site(1), [addr(7)].into_iter().collect());
        a.lock_objs.insert(site(2), [addr(7)].into_iter().collect());
        let idle = RunProfile::default();
        batch_vs_incremental(&[idle.clone(), a, idle]);
    }

    #[test]
    fn self_alias_and_singletons_match_batch() {
        let mut a = RunProfile::default();
        a.lock_objs.insert(site(1), [addr(1)].into_iter().collect());
        a.lock_objs
            .insert(site(2), [addr(1), addr(2)].into_iter().collect());
        a.spawn_counts.insert(site(8), 1);
        a.spawn_counts.insert(site(9), 1);
        let mut b = RunProfile::default();
        b.lock_objs.insert(site(1), [addr(3)].into_iter().collect());
        b.lock_objs.insert(site(2), [addr(4)].into_iter().collect());
        b.spawn_counts.insert(site(9), 5);
        batch_vs_incremental(&[a, b]);
    }

    #[test]
    fn dead_pairs_stay_dead() {
        // A pair killed in run 2 must not resurrect when run 3 re-observes
        // it.
        let pair_run = || {
            let mut p = RunProfile::default();
            p.lock_objs.insert(site(1), [addr(7)].into_iter().collect());
            p.lock_objs.insert(site(2), [addr(7)].into_iter().collect());
            p
        };
        let mut breaker = RunProfile::default();
        breaker
            .lock_objs
            .insert(site(1), [addr(8)].into_iter().collect());
        breaker
            .lock_objs
            .insert(site(2), [addr(9)].into_iter().collect());
        batch_vs_incremental(&[pair_run(), breaker, pair_run()]);
    }
}
