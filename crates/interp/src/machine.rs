//! The interpreter proper: green threads, a seeded scheduler, and the
//! instruction execution loop.

use std::collections::HashMap;
use std::rc::Rc;

use oha_ir::{BlockId, Callee, CmpOp, FuncId, InstId, InstKind, Operand, Program, Reg, Terminator};
use oha_obs::{Counter, MetricsRegistry};

use crate::heap::Heap;
use crate::tracer::{EventCtx, Tracer};
use crate::value::{Addr, FrameId, ObjId, ThreadId, Value};

/// Per-event-kind tracer-dispatch counters plus scheduler counters.
///
/// The default value is fully detached: every field is a
/// [`Counter::detached`] handle, so an unobserved machine pays one branch
/// per event and allocates nothing. [`HookCounters::attached`] registers
/// every counter under `<prefix>.hook.<event>` / `<prefix>.sched.<metric>`.
#[derive(Clone, Debug, Default)]
pub struct HookCounters {
    /// `on_load` dispatches.
    pub load: Counter,
    /// `on_store` dispatches.
    pub store: Counter,
    /// `on_lock` dispatches (acquisitions, not blocked attempts).
    pub lock: Counter,
    /// `on_unlock` dispatches.
    pub unlock: Counter,
    /// `on_spawn` dispatches.
    pub spawn: Counter,
    /// `on_join` dispatches.
    pub join: Counter,
    /// `on_thread_exit` dispatches.
    pub thread_exit: Counter,
    /// `on_block_enter` dispatches.
    pub block_enter: Counter,
    /// `on_call` dispatches.
    pub call: Counter,
    /// `on_return` dispatches.
    pub ret: Counter,
    /// `on_input` dispatches.
    pub input: Counter,
    /// `on_output` dispatches.
    pub output: Counter,
    /// `on_compute` dispatches.
    pub compute: Counter,
    /// Scheduling decisions (quantum slots granted).
    pub sched_decisions: Counter,
    /// Preemptions: slots fully consumed with the thread still runnable.
    pub sched_preemptions: Counter,
}

impl HookCounters {
    /// Registers all counters in `registry` under `prefix`.
    pub fn attached(registry: &MetricsRegistry, prefix: &str) -> Self {
        let hook = |event: &str| registry.counter(&format!("{prefix}.hook.{event}"));
        HookCounters {
            load: hook("load"),
            store: hook("store"),
            lock: hook("lock"),
            unlock: hook("unlock"),
            spawn: hook("spawn"),
            join: hook("join"),
            thread_exit: hook("thread_exit"),
            block_enter: hook("block_enter"),
            call: hook("call"),
            ret: hook("return"),
            input: hook("input"),
            output: hook("output"),
            compute: hook("compute"),
            sched_decisions: registry.counter(&format!("{prefix}.sched.decisions")),
            sched_preemptions: registry.counter(&format!("{prefix}.sched.preemptions")),
        }
    }

    /// Sum of all memory-access hook dispatches (loads + stores).
    pub fn accesses(&self) -> u64 {
        self.load.get() + self.store.get()
    }
}

/// Configuration of a [`Machine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    /// Scheduler seed; two runs with equal program, input and seed are
    /// bit-for-bit identical (the record/replay property).
    pub seed: u64,
    /// Abort the run after this many executed steps.
    pub max_steps: u64,
    /// Maximum instructions a thread runs before the scheduler may preempt
    /// it. Actual slot lengths are drawn uniformly from `1..=quantum`.
    pub quantum: u32,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            seed: 0x5eed_0a11,
            max_steps: 50_000_000,
            quantum: 40,
        }
    }
}

/// Why an execution stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Termination {
    /// Every thread ran to completion.
    Exited,
    /// No thread is runnable but some are blocked.
    Deadlock,
    /// The configured step budget was exhausted.
    StepLimit,
    /// The program performed an illegal operation.
    Error(RuntimeError),
}

/// Illegal operations an interpreted program can perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// A load/store/gep/lock address operand was not a pointer.
    NotAPointer {
        /// The faulting instruction.
        inst: InstId,
    },
    /// A memory access fell outside its object.
    OutOfBounds {
        /// The faulting instruction.
        inst: InstId,
        /// The address accessed.
        addr: Addr,
    },
    /// An indirect call/spawn target was not a function pointer.
    NotAFunction {
        /// The faulting instruction.
        inst: InstId,
    },
    /// An indirect call passed the wrong number of arguments.
    BadArity {
        /// The faulting instruction.
        inst: InstId,
    },
    /// A join operand was not a thread handle.
    NotAThread {
        /// The faulting instruction.
        inst: InstId,
    },
    /// An unlock of a mutex the thread does not hold.
    UnlockNotHeld {
        /// The faulting instruction.
        inst: InstId,
        /// The mutex address.
        addr: Addr,
    },
    /// A lock of a mutex the thread already holds (locks are not
    /// reentrant).
    RelockHeld {
        /// The faulting instruction.
        inst: InstId,
        /// The mutex address.
        addr: Addr,
    },
    /// Arithmetic on a non-integer value.
    NotAnInt {
        /// The faulting instruction.
        inst: InstId,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::NotAPointer { inst } => write!(f, "{inst}: address is not a pointer"),
            RuntimeError::OutOfBounds { inst, addr } => {
                write!(f, "{inst}: access to {addr} is out of bounds")
            }
            RuntimeError::NotAFunction { inst } => {
                write!(f, "{inst}: call target is not a function")
            }
            RuntimeError::BadArity { inst } => write!(f, "{inst}: wrong argument count"),
            RuntimeError::NotAThread { inst } => write!(f, "{inst}: join target is not a thread"),
            RuntimeError::UnlockNotHeld { inst, addr } => {
                write!(f, "{inst}: unlock of {addr} not held")
            }
            RuntimeError::RelockHeld { inst, addr } => {
                write!(f, "{inst}: relock of held mutex {addr}")
            }
            RuntimeError::NotAnInt { inst } => write!(f, "{inst}: arithmetic on non-integer"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// The outcome of one execution.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Why the run stopped.
    pub status: Termination,
    /// Every value produced by `output`, with its producing site.
    pub outputs: Vec<(InstId, Value)>,
    /// Steps (instructions + terminators) executed.
    pub steps: u64,
    /// Number of threads ever created (including main).
    pub num_threads: u32,
    /// Number of objects at the end of the run (globals + allocations).
    pub num_objects: usize,
}

impl RunResult {
    /// The output stream as integers (see [`Value::to_i64_lossy`]).
    pub fn output_values(&self) -> Vec<i64> {
        self.outputs.iter().map(|(_, v)| v.to_i64_lossy()).collect()
    }
}

/// A recorded schedule: the scheduler's decisions, one `(thread, slot)`
/// pair per scheduling quantum. Replaying a trace reproduces the exact
/// interleaving independently of the seed that produced it — the explicit
/// record/replay artifact the paper's rollback assumes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScheduleTrace {
    decisions: Vec<(u32, u32)>,
}

impl ScheduleTrace {
    /// Number of scheduling decisions recorded.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }
}

enum Scheduler {
    Random(SplitMix64),
    Recording(SplitMix64, ScheduleTrace),
    Replaying(ScheduleTrace, usize),
}

impl Scheduler {
    /// Picks the next thread (from `runnable`) and its slot length.
    fn pick(&mut self, runnable: &[u32], quantum: u32) -> (ThreadId, u64) {
        match self {
            Scheduler::Random(rng) => {
                let tid = runnable[rng.below(runnable.len() as u64) as usize];
                (ThreadId(tid), 1 + rng.below(u64::from(quantum)))
            }
            Scheduler::Recording(rng, trace) => {
                let tid = runnable[rng.below(runnable.len() as u64) as usize];
                let slot = 1 + rng.below(u64::from(quantum));
                trace.decisions.push((tid, slot as u32));
                (ThreadId(tid), slot)
            }
            Scheduler::Replaying(trace, pos) => {
                let decision = trace.decisions.get(*pos).copied();
                *pos += 1;
                match decision {
                    // If the recorded thread is not runnable (possible only
                    // if the program under replay diverged), fall back to
                    // the first runnable thread.
                    Some((tid, slot)) if runnable.contains(&tid) => {
                        (ThreadId(tid), u64::from(slot.max(1)))
                    }
                    _ => (ThreadId(runnable[0]), 1),
                }
            }
        }
    }
}

/// Deterministic scheduler randomness (SplitMix64). Implemented inline so
/// schedules are stable across platforms and `rand` versions.
#[derive(Clone, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next() % n
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    BlockedLock(Addr),
    BlockedJoin(ThreadId),
    Done,
}

#[derive(Debug)]
struct Frame {
    func: FuncId,
    frame_id: FrameId,
    block: BlockId,
    pc: usize,
    regs: Vec<Value>,
    /// Where the return value goes in the caller, and the caller's call
    /// site. `None` for thread entry frames.
    ret_to: Option<(Option<Reg>, InstId)>,
}

#[derive(Debug)]
struct ThreadCtx {
    state: ThreadState,
    stack: Vec<Frame>,
    join_waiters: Vec<ThreadId>,
}

#[derive(Debug, Default)]
struct LockState {
    holder: Option<ThreadId>,
    waiters: Vec<ThreadId>,
}

/// A reusable interpreter for one program.
///
/// `Machine` is immutable; every [`Machine::run`] creates fresh execution
/// state, so the same machine can replay an execution (same input and seed)
/// or explore schedules (different seeds).
#[derive(Clone, Debug)]
pub struct Machine<'p> {
    program: &'p Program,
    config: MachineConfig,
    /// Shared by handle: every run construction and counting tracer holds
    /// the same `Rc` instead of paying an O(counters) clone per execution.
    metrics: Rc<HookCounters>,
}

impl<'p> Machine<'p> {
    /// Creates a machine for `program`.
    pub fn new(program: &'p Program, config: MachineConfig) -> Self {
        Self {
            program,
            config,
            metrics: Rc::new(HookCounters::default()),
        }
    }

    /// Attaches hook-dispatch and scheduler counters registered in
    /// `registry` under `prefix` (builder-style).
    pub fn with_metrics(mut self, registry: &MetricsRegistry, prefix: &str) -> Self {
        self.metrics = Rc::new(HookCounters::attached(registry, prefix));
        self
    }

    /// The machine's hook counters (detached unless
    /// [`with_metrics`](Machine::with_metrics) was called).
    pub fn metrics(&self) -> &HookCounters {
        &self.metrics
    }

    /// The program this machine executes.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The machine configuration.
    pub fn config(&self) -> MachineConfig {
        self.config
    }

    /// Executes the program on `input`, reporting events to `tracer`.
    pub fn run<T: Tracer>(&self, input: &[i64], tracer: &mut T) -> RunResult {
        let sched = Scheduler::Random(SplitMix64(self.config.seed));
        let mut counting = crate::tracer::CountingTracer {
            inner: tracer,
            counters: Rc::clone(&self.metrics),
        };
        Execution::new(
            self.program,
            self.config,
            input,
            sched,
            Rc::clone(&self.metrics),
        )
        .run(&mut counting)
        .0
    }

    /// Executes the program while recording every scheduling decision;
    /// feed the returned trace to [`Machine::run_replay`] to reproduce the
    /// identical interleaving.
    pub fn run_recording<T: Tracer>(
        &self,
        input: &[i64],
        tracer: &mut T,
    ) -> (RunResult, ScheduleTrace) {
        let sched = Scheduler::Recording(SplitMix64(self.config.seed), ScheduleTrace::default());
        let mut counting = crate::tracer::CountingTracer {
            inner: tracer,
            counters: Rc::clone(&self.metrics),
        };
        let (result, sched) = Execution::new(
            self.program,
            self.config,
            input,
            sched,
            Rc::clone(&self.metrics),
        )
        .run(&mut counting);
        match sched {
            Scheduler::Recording(_, trace) => (result, trace),
            _ => unreachable!("recording scheduler preserved"),
        }
    }

    /// Re-executes the program following a recorded schedule. With the same
    /// program and input this reproduces the recorded run exactly — the
    /// re-execution primitive speculation rollback uses.
    pub fn run_replay<T: Tracer>(
        &self,
        input: &[i64],
        trace: &ScheduleTrace,
        tracer: &mut T,
    ) -> RunResult {
        let sched = Scheduler::Replaying(trace.clone(), 0);
        let mut counting = crate::tracer::CountingTracer {
            inner: tracer,
            counters: Rc::clone(&self.metrics),
        };
        Execution::new(
            self.program,
            self.config,
            input,
            sched,
            Rc::clone(&self.metrics),
        )
        .run(&mut counting)
        .0
    }
}

struct Execution<'p, 'i> {
    program: &'p Program,
    config: MachineConfig,
    input: &'i [i64],
    input_pos: usize,
    heap: Heap,
    threads: Vec<ThreadCtx>,
    locks: HashMap<Addr, LockState>,
    scheduler: Scheduler,
    next_frame: u64,
    steps: u64,
    outputs: Vec<(InstId, Value)>,
    counters: Rc<HookCounters>,
}

enum StepOutcome {
    Continue,
    /// The thread blocked or finished; end its scheduling slot.
    Yield,
    Fault(RuntimeError),
}

impl<'p, 'i> Execution<'p, 'i> {
    fn new(
        program: &'p Program,
        config: MachineConfig,
        input: &'i [i64],
        scheduler: Scheduler,
        counters: Rc<HookCounters>,
    ) -> Self {
        let mut exec = Self {
            program,
            config,
            input,
            input_pos: 0,
            heap: Heap::new(program),
            threads: Vec::new(),
            locks: HashMap::new(),
            scheduler,
            next_frame: 0,
            steps: 0,
            outputs: Vec::new(),
            counters,
        };
        let entry = program.entry();
        let frame = exec.make_frame(entry, Vec::new(), None);
        exec.threads.push(ThreadCtx {
            state: ThreadState::Runnable,
            stack: vec![frame],
            join_waiters: Vec::new(),
        });
        exec
    }

    fn make_frame(
        &mut self,
        func: FuncId,
        args: Vec<Value>,
        ret_to: Option<(Option<Reg>, InstId)>,
    ) -> Frame {
        let f = self.program.function(func);
        let mut regs = vec![Value::default(); f.num_regs as usize];
        regs[..args.len()].copy_from_slice(&args);
        let frame_id = FrameId(self.next_frame);
        self.next_frame += 1;
        Frame {
            func,
            frame_id,
            block: f.entry,
            pc: 0,
            regs,
            ret_to,
        }
    }

    fn run<T: Tracer>(mut self, tracer: &mut T) -> (RunResult, Scheduler) {
        // The main thread enters its entry block.
        {
            let frame = &self.threads[0].stack[0];
            tracer.on_block_enter(ThreadId::MAIN, frame.frame_id, frame.block);
        }

        let status = loop {
            // Collect runnable threads.
            let runnable: Vec<u32> = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.state == ThreadState::Runnable)
                .map(|(i, _)| i as u32)
                .collect();
            if runnable.is_empty() {
                if self.threads.iter().all(|t| t.state == ThreadState::Done) {
                    break Termination::Exited;
                }
                break Termination::Deadlock;
            }
            let (tid, slot) = self.scheduler.pick(&runnable, self.config.quantum);
            self.counters.sched_decisions.inc();

            let mut fault = None;
            let mut yielded = false;
            for _ in 0..slot {
                if self.steps >= self.config.max_steps {
                    fault = Some(Termination::StepLimit);
                    break;
                }
                match self.step(tid, tracer) {
                    StepOutcome::Continue => {}
                    StepOutcome::Yield => {
                        yielded = true;
                        break;
                    }
                    StepOutcome::Fault(e) => {
                        fault = Some(Termination::Error(e));
                        break;
                    }
                }
            }
            if let Some(status) = fault {
                break status;
            }
            // The slot ran out with the thread still willing to run: that is
            // a preemption, the scheduler event OptFT's framework cost models.
            if !yielded {
                self.counters.sched_preemptions.inc();
            }
        };

        (
            RunResult {
                status,
                outputs: self.outputs,
                steps: self.steps,
                num_threads: self.threads.len() as u32,
                num_objects: self.heap.num_objects(),
            },
            self.scheduler,
        )
    }

    fn eval(&self, tid: ThreadId, op: Operand) -> Value {
        match op {
            Operand::Const(c) => Value::Int(c),
            Operand::Reg(r) => {
                let frame = self.threads[tid.index()]
                    .stack
                    .last()
                    .expect("running thread has a frame");
                frame.regs[r.index()]
            }
        }
    }

    fn set_reg(&mut self, tid: ThreadId, r: Reg, v: Value) {
        let frame = self.threads[tid.index()]
            .stack
            .last_mut()
            .expect("running thread has a frame");
        frame.regs[r.index()] = v;
    }

    fn advance_pc(&mut self, tid: ThreadId) {
        let frame = self.threads[tid.index()]
            .stack
            .last_mut()
            .expect("running thread has a frame");
        frame.pc += 1;
    }

    fn ptr_operand(&self, tid: ThreadId, inst: InstId, op: Operand) -> Result<Addr, RuntimeError> {
        match self.eval(tid, op) {
            Value::Ptr(a) => Ok(a),
            _ => Err(RuntimeError::NotAPointer { inst }),
        }
    }

    /// Executes one instruction or terminator of thread `tid`.
    fn step<T: Tracer>(&mut self, tid: ThreadId, tracer: &mut T) -> StepOutcome {
        self.steps += 1;
        let (_func, frame_id, block, pc) = {
            let frame = self.threads[tid.index()]
                .stack
                .last()
                .expect("running thread has a frame");
            (frame.func, frame.frame_id, frame.block, frame.pc)
        };
        // Borrow the instruction from the program reference itself (not
        // through `self`), so the hot loop never clones instruction data.
        let program: &'p Program = self.program;
        let block_data = program.block(block);

        if pc >= block_data.insts.len() {
            return self.step_terminator(tid, frame_id, block, tracer);
        }

        let inst_id = block_data.insts[pc].id;
        let kind: &'p InstKind = &block_data.insts[pc].kind;
        let ctx = EventCtx {
            thread: tid,
            frame: frame_id,
            inst: inst_id,
        };

        match *kind {
            InstKind::Copy { dst, src } => {
                let v = self.eval(tid, src);
                self.set_reg(tid, dst, v);
                tracer.on_compute(ctx);
            }
            InstKind::BinOp { dst, op, lhs, rhs } => {
                let a = self.eval(tid, lhs);
                let b = self.eval(tid, rhs);
                let v = match (a, b) {
                    (Value::Int(x), Value::Int(y)) => Value::Int(op.eval(x, y)),
                    _ => match op {
                        oha_ir::BinOp::Cmp(CmpOp::Eq) => Value::Int(i64::from(a == b)),
                        oha_ir::BinOp::Cmp(CmpOp::Ne) => Value::Int(i64::from(a != b)),
                        _ => return StepOutcome::Fault(RuntimeError::NotAnInt { inst: inst_id }),
                    },
                };
                self.set_reg(tid, dst, v);
                tracer.on_compute(ctx);
            }
            InstKind::Alloc { dst, fields } => {
                let obj = self.heap.alloc(fields, inst_id);
                self.set_reg(tid, dst, Value::Ptr(Addr::new(obj, 0)));
                tracer.on_compute(ctx);
            }
            InstKind::AddrGlobal { dst, global } => {
                self.set_reg(tid, dst, Value::Ptr(Addr::new(ObjId(global.raw()), 0)));
                tracer.on_compute(ctx);
            }
            InstKind::AddrFunc { dst, func } => {
                self.set_reg(tid, dst, Value::Func(func));
                tracer.on_compute(ctx);
            }
            InstKind::Gep { dst, base, field } => {
                let a = match self.ptr_operand(tid, inst_id, base) {
                    Ok(a) => a,
                    Err(e) => return StepOutcome::Fault(e),
                };
                self.set_reg(tid, dst, Value::Ptr(a.offset(field)));
                tracer.on_compute(ctx);
            }
            InstKind::Load { dst, addr, field } => {
                let a = match self.ptr_operand(tid, inst_id, addr) {
                    Ok(a) => a.offset(field),
                    Err(e) => return StepOutcome::Fault(e),
                };
                let v = match self.heap.load(a) {
                    Some(v) => v,
                    None => {
                        return StepOutcome::Fault(RuntimeError::OutOfBounds {
                            inst: inst_id,
                            addr: a,
                        })
                    }
                };
                self.set_reg(tid, dst, v);
                tracer.on_load(ctx, a, v);
            }
            InstKind::Store { addr, field, value } => {
                let a = match self.ptr_operand(tid, inst_id, addr) {
                    Ok(a) => a.offset(field),
                    Err(e) => return StepOutcome::Fault(e),
                };
                let v = self.eval(tid, value);
                if !self.heap.store(a, v) {
                    return StepOutcome::Fault(RuntimeError::OutOfBounds {
                        inst: inst_id,
                        addr: a,
                    });
                }
                tracer.on_store(ctx, a, v);
            }
            InstKind::Call {
                dst,
                ref callee,
                ref args,
            } => {
                let target = match self.resolve_callee(tid, inst_id, *callee) {
                    Ok(t) => t,
                    Err(e) => return StepOutcome::Fault(e),
                };
                if self.program.function(target).arity() != args.len() {
                    return StepOutcome::Fault(RuntimeError::BadArity { inst: inst_id });
                }
                let argv: Vec<Value> = args.iter().map(|&a| self.eval(tid, a)).collect();
                // Resume after the call on return.
                self.advance_pc(tid);
                let frame = self.make_frame(target, argv, Some((dst, inst_id)));
                let callee_frame = frame.frame_id;
                let entry = frame.block;
                self.threads[tid.index()].stack.push(frame);
                tracer.on_call(ctx, target, callee_frame);
                tracer.on_block_enter(tid, callee_frame, entry);
                return StepOutcome::Continue;
            }
            InstKind::Lock { addr } => {
                let a = match self.ptr_operand(tid, inst_id, addr) {
                    Ok(a) => a,
                    Err(e) => return StepOutcome::Fault(e),
                };
                let lock = self.locks.entry(a).or_default();
                match lock.holder {
                    None => {
                        lock.holder = Some(tid);
                        tracer.on_lock(ctx, a);
                    }
                    Some(h) if h == tid => {
                        return StepOutcome::Fault(RuntimeError::RelockHeld {
                            inst: inst_id,
                            addr: a,
                        })
                    }
                    Some(_) => {
                        if !lock.waiters.contains(&tid) {
                            lock.waiters.push(tid);
                        }
                        self.threads[tid.index()].state = ThreadState::BlockedLock(a);
                        // Do not advance the pc: the lock is retried on wake.
                        return StepOutcome::Yield;
                    }
                }
            }
            InstKind::Unlock { addr } => {
                let a = match self.ptr_operand(tid, inst_id, addr) {
                    Ok(a) => a,
                    Err(e) => return StepOutcome::Fault(e),
                };
                let lock = self.locks.entry(a).or_default();
                if lock.holder != Some(tid) {
                    return StepOutcome::Fault(RuntimeError::UnlockNotHeld {
                        inst: inst_id,
                        addr: a,
                    });
                }
                tracer.on_unlock(ctx, a);
                lock.holder = None;
                let waiters = std::mem::take(&mut lock.waiters);
                for w in waiters {
                    if self.threads[w.index()].state == ThreadState::BlockedLock(a) {
                        self.threads[w.index()].state = ThreadState::Runnable;
                    }
                }
            }
            InstKind::Spawn { dst, ref func, arg } => {
                let target = match self.resolve_callee(tid, inst_id, *func) {
                    Ok(t) => t,
                    Err(e) => return StepOutcome::Fault(e),
                };
                if self.program.function(target).arity() != 1 {
                    return StepOutcome::Fault(RuntimeError::BadArity { inst: inst_id });
                }
                let argv = vec![self.eval(tid, arg)];
                let child = ThreadId(self.threads.len() as u32);
                let frame = self.make_frame(target, argv, None);
                let child_frame = frame.frame_id;
                let entry = frame.block;
                self.threads.push(ThreadCtx {
                    state: ThreadState::Runnable,
                    stack: vec![frame],
                    join_waiters: Vec::new(),
                });
                self.set_reg(tid, dst, Value::Thread(child));
                tracer.on_spawn(ctx, child, target);
                tracer.on_block_enter(child, child_frame, entry);
            }
            InstKind::Join { thread } => {
                let t = match self.eval(tid, thread) {
                    Value::Thread(t) => t,
                    _ => return StepOutcome::Fault(RuntimeError::NotAThread { inst: inst_id }),
                };
                if self.threads[t.index()].state == ThreadState::Done {
                    tracer.on_join(ctx, t);
                } else {
                    if !self.threads[t.index()].join_waiters.contains(&tid) {
                        self.threads[t.index()].join_waiters.push(tid);
                    }
                    self.threads[tid.index()].state = ThreadState::BlockedJoin(t);
                    // Do not advance the pc: the join is retried on wake.
                    return StepOutcome::Yield;
                }
            }
            InstKind::Input { dst } => {
                let v = Value::Int(self.input.get(self.input_pos).copied().unwrap_or(0));
                self.input_pos += 1;
                self.set_reg(tid, dst, v);
                tracer.on_input(ctx, v);
            }
            InstKind::Output { value } => {
                let v = self.eval(tid, value);
                self.outputs.push((inst_id, v));
                tracer.on_output(ctx, v);
            }
        }
        self.advance_pc(tid);
        StepOutcome::Continue
    }

    fn resolve_callee(
        &self,
        tid: ThreadId,
        inst: InstId,
        callee: Callee,
    ) -> Result<FuncId, RuntimeError> {
        match callee {
            Callee::Direct(f) => Ok(f),
            Callee::Indirect(op) => match self.eval(tid, op) {
                Value::Func(f) => Ok(f),
                _ => Err(RuntimeError::NotAFunction { inst }),
            },
        }
    }

    fn step_terminator<T: Tracer>(
        &mut self,
        tid: ThreadId,
        frame_id: FrameId,
        block: BlockId,
        tracer: &mut T,
    ) -> StepOutcome {
        let program: &'p Program = self.program;
        let terminator = &program.block(block).terminator;
        match *terminator {
            Terminator::Jump(b) => {
                self.goto(tid, b);
                tracer.on_block_enter(tid, frame_id, b);
                StepOutcome::Continue
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let b = if self.eval(tid, cond).truthy() {
                    then_bb
                } else {
                    else_bb
                };
                self.goto(tid, b);
                tracer.on_block_enter(tid, frame_id, b);
                StepOutcome::Continue
            }
            Terminator::Return(op) => {
                let value = op.map(|o| self.eval(tid, o));
                let operand = op;
                let frame = self.threads[tid.index()]
                    .stack
                    .pop()
                    .expect("running thread has a frame");
                match frame.ret_to {
                    Some((dst, call_inst)) => {
                        let caller_frame = self.threads[tid.index()]
                            .stack
                            .last()
                            .expect("caller frame exists")
                            .frame_id;
                        if let (Some(d), Some(v)) = (dst, value) {
                            self.set_reg(tid, d, v);
                        }
                        tracer.on_return(
                            tid,
                            frame.frame_id,
                            frame.func,
                            value,
                            operand,
                            caller_frame,
                            call_inst,
                        );
                        StepOutcome::Continue
                    }
                    None => {
                        // Thread entry frame: the thread is done.
                        self.threads[tid.index()].state = ThreadState::Done;
                        tracer.on_thread_exit(tid);
                        let waiters = std::mem::take(&mut self.threads[tid.index()].join_waiters);
                        for w in waiters {
                            if self.threads[w.index()].state == ThreadState::BlockedJoin(tid) {
                                self.threads[w.index()].state = ThreadState::Runnable;
                            }
                        }
                        StepOutcome::Yield
                    }
                }
            }
        }
    }

    fn goto(&mut self, tid: ThreadId, b: BlockId) {
        let frame = self.threads[tid.index()]
            .stack
            .last_mut()
            .expect("running thread has a frame");
        frame.block = b;
        frame.pc = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::NoopTracer;
    use oha_ir::{BinOp, Operand, ProgramBuilder};
    use Operand::{Const, Reg as R};

    fn run(program: &Program, input: &[i64]) -> RunResult {
        Machine::new(program, MachineConfig::default()).run(input, &mut NoopTracer)
    }

    #[test]
    fn arithmetic_and_io() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        let a = f.input();
        let b = f.input();
        let s = f.bin(BinOp::Mul, R(a), R(b));
        f.output(R(s));
        f.ret(None);
        let main = pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        let r = run(&p, &[6, 7]);
        assert_eq!(r.status, Termination::Exited);
        assert_eq!(r.output_values(), vec![42]);
        assert_eq!(r.num_threads, 1);
    }

    #[test]
    fn exhausted_input_reads_zero() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        let a = f.input();
        f.output(R(a));
        f.ret(None);
        let main = pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        assert_eq!(run(&p, &[]).output_values(), vec![0]);
    }

    #[test]
    fn heap_programs_and_recursion() {
        // fib(n) via recursion with memory traffic.
        let mut pb = ProgramBuilder::new();
        let fib = pb.declare("fib", 1);
        let mut m = pb.function("main", 0);
        let n = m.input();
        let r = m.call(fib, vec![R(n)]);
        m.output(R(r));
        m.ret(None);
        let main = pb.finish_function(m);

        let mut f = pb.function("fib", 1);
        let n = f.param(0);
        let base = f.block();
        let rec = f.block();
        let c = f.cmp(oha_ir::CmpOp::Lt, R(n), Const(2));
        f.branch(R(c), base, rec);
        f.select(base);
        f.ret(Some(R(n)));
        f.select(rec);
        let n1 = f.bin(BinOp::Sub, R(n), Const(1));
        let n2 = f.bin(BinOp::Sub, R(n), Const(2));
        let a = f.call(fib, vec![R(n1)]);
        let b = f.call(fib, vec![R(n2)]);
        let s = f.bin(BinOp::Add, R(a), R(b));
        f.ret(Some(R(s)));
        pb.finish_function(f);

        let p = pb.finish(main).unwrap();
        assert_eq!(run(&p, &[10]).output_values(), vec![55]);
    }

    /// Two threads increment a shared counter under a lock; with mutual
    /// exclusion the final value is always 2 * iterations.
    fn counter_program(iterations: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("shared", 2); // field 0 = counter, field 1 = lock word
        let worker = pb.declare("worker", 1);

        let mut m = pb.function("main", 0);
        let t1 = m.spawn(worker, Const(iterations));
        let t2 = m.spawn(worker, Const(iterations));
        m.join(R(t1));
        m.join(R(t2));
        let ga = m.addr_global(g);
        let v = m.load(R(ga), 0);
        m.output(R(v));
        m.ret(None);
        let main = pb.finish_function(m);

        let mut w = pb.function("worker", 1);
        let iters = w.param(0);
        let head = w.block();
        let body = w.block();
        let exit = w.block();
        let ga = w.addr_global(g);
        let i = w.copy(Const(0));
        w.jump(head);
        w.select(head);
        let c = w.cmp(oha_ir::CmpOp::Lt, R(i), R(iters));
        w.branch(R(c), body, exit);
        w.select(body);
        w.lock(R(ga));
        let v = w.load(R(ga), 0);
        let v1 = w.bin(BinOp::Add, R(v), Const(1));
        w.store(R(ga), 0, R(v1));
        w.unlock(R(ga));
        let i1 = w.bin(BinOp::Add, R(i), Const(1));
        w.copy_to(i, R(i1));
        w.jump(head);
        w.select(exit);
        w.ret(None);
        pb.finish_function(w);
        pb.finish(main).unwrap()
    }

    #[test]
    fn locks_provide_mutual_exclusion() {
        let p = counter_program(200);
        for seed in 0..10 {
            let cfg = MachineConfig {
                seed,
                quantum: 3,
                ..MachineConfig::default()
            };
            let r = Machine::new(&p, cfg).run(&[], &mut NoopTracer);
            assert_eq!(r.status, Termination::Exited, "seed {seed}");
            assert_eq!(r.output_values(), vec![400], "seed {seed}");
            assert_eq!(r.num_threads, 3);
        }
    }

    /// The same program *without* the lock loses updates under some
    /// schedule — evidence the scheduler really interleaves.
    #[test]
    fn unlocked_counter_races() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("shared", 1);
        let worker = pb.declare("worker", 1);
        let mut m = pb.function("main", 0);
        let t1 = m.spawn(worker, Const(300));
        let t2 = m.spawn(worker, Const(300));
        m.join(R(t1));
        m.join(R(t2));
        let ga = m.addr_global(g);
        let v = m.load(R(ga), 0);
        m.output(R(v));
        m.ret(None);
        let main = pb.finish_function(m);
        let mut w = pb.function("worker", 1);
        let iters = w.param(0);
        let head = w.block();
        let body = w.block();
        let exit = w.block();
        let ga = w.addr_global(g);
        let i = w.copy(Const(0));
        w.jump(head);
        w.select(head);
        let c = w.cmp(oha_ir::CmpOp::Lt, R(i), R(iters));
        w.branch(R(c), body, exit);
        w.select(body);
        let v = w.load(R(ga), 0);
        let v1 = w.bin(BinOp::Add, R(v), Const(1));
        w.store(R(ga), 0, R(v1));
        let i1 = w.bin(BinOp::Add, R(i), Const(1));
        w.copy_to(i, R(i1));
        w.jump(head);
        w.select(exit);
        w.ret(None);
        pb.finish_function(w);
        let p = pb.finish(main).unwrap();

        let lost_updates = (0..10).any(|seed| {
            let cfg = MachineConfig {
                seed,
                quantum: 3,
                ..MachineConfig::default()
            };
            let r = Machine::new(&p, cfg).run(&[], &mut NoopTracer);
            r.output_values()[0] < 600
        });
        assert!(
            lost_updates,
            "expected at least one lost update across seeds"
        );
    }

    #[test]
    fn recorded_schedules_replay_exactly() {
        let p = counter_program(40);
        for seed in [3u64, 99] {
            let cfg = MachineConfig {
                seed,
                quantum: 4,
                ..MachineConfig::default()
            };
            let machine = Machine::new(&p, cfg);
            let (original, trace) = machine.run_recording(&[], &mut NoopTracer);
            assert!(!trace.is_empty());
            // Replay with a *different* seed in the config: the trace, not
            // the seed, dictates the interleaving.
            let other = MachineConfig {
                seed: seed ^ 0xffff,
                ..cfg
            };
            let replayed = Machine::new(&p, other).run_replay(&[], &trace, &mut NoopTracer);
            assert_eq!(original.steps, replayed.steps);
            assert_eq!(original.outputs, replayed.outputs);
            assert_eq!(original.status, replayed.status);
        }
    }

    #[test]
    fn recording_matches_plain_run() {
        let p = counter_program(25);
        let cfg = MachineConfig::default();
        let plain = Machine::new(&p, cfg).run(&[], &mut NoopTracer);
        let (recorded, _) = Machine::new(&p, cfg).run_recording(&[], &mut NoopTracer);
        assert_eq!(plain.outputs, recorded.outputs);
        assert_eq!(plain.steps, recorded.steps);
    }

    #[test]
    fn determinism_same_seed_same_run() {
        let p = counter_program(50);
        let cfg = MachineConfig {
            seed: 42,
            quantum: 5,
            ..MachineConfig::default()
        };
        let a = Machine::new(&p, cfg).run(&[], &mut NoopTracer);
        let b = Machine::new(&p, cfg).run(&[], &mut NoopTracer);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn deadlock_detected() {
        // main locks a then b; worker locks b then a; tight loop to force
        // the overlap under most schedules — run several seeds and require
        // at least one deadlock.
        let mut pb = ProgramBuilder::new();
        let ga = pb.global("a", 1);
        let gb = pb.global("b", 1);
        let worker = pb.declare("worker", 1);
        let mut m = pb.function("main", 0);
        let t = m.spawn(worker, Const(0));
        let a = m.addr_global(ga);
        let b = m.addr_global(gb);
        m.lock(R(a));
        m.lock(R(b));
        m.unlock(R(b));
        m.unlock(R(a));
        m.join(R(t));
        m.ret(None);
        let main = pb.finish_function(m);
        let mut w = pb.function("worker", 1);
        let a = w.addr_global(ga);
        let b = w.addr_global(gb);
        w.lock(R(b));
        w.lock(R(a));
        w.unlock(R(a));
        w.unlock(R(b));
        w.ret(None);
        pb.finish_function(w);
        let p = pb.finish(main).unwrap();

        let mut saw_deadlock = false;
        let mut saw_exit = false;
        for seed in 0..40 {
            let cfg = MachineConfig {
                seed,
                quantum: 1,
                ..MachineConfig::default()
            };
            match Machine::new(&p, cfg).run(&[], &mut NoopTracer).status {
                Termination::Deadlock => saw_deadlock = true,
                Termination::Exited => saw_exit = true,
                s => panic!("unexpected status {s:?}"),
            }
        }
        assert!(saw_deadlock, "no deadlock observed in 40 schedules");
        assert!(saw_exit, "no clean exit observed in 40 schedules");
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        let head = f.block();
        f.jump(head);
        f.select(head);
        f.jump(head);
        let main = pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        let cfg = MachineConfig {
            max_steps: 1000,
            ..MachineConfig::default()
        };
        let r = Machine::new(&p, cfg).run(&[], &mut NoopTracer);
        assert_eq!(r.status, Termination::StepLimit);
        assert!(r.steps >= 1000);
    }

    #[test]
    fn runtime_errors_reported() {
        // Unlock of a lock never taken.
        let mut pb = ProgramBuilder::new();
        let g = pb.global("g", 1);
        let mut f = pb.function("main", 0);
        let a = f.addr_global(g);
        f.unlock(R(a));
        f.ret(None);
        let main = pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        match run(&p, &[]).status {
            Termination::Error(RuntimeError::UnlockNotHeld { .. }) => {}
            s => panic!("unexpected status {s:?}"),
        }
    }

    #[test]
    fn indirect_calls_dispatch_at_runtime() {
        let mut pb = ProgramBuilder::new();
        let double = pb.declare("double", 1);
        let square = pb.declare("square", 1);
        let mut m = pb.function("main", 0);
        let sel = m.input();
        let fp = m.addr_func(double);
        let fp2 = m.addr_func(square);
        let then_b = m.block();
        let else_b = m.block();
        let call_b = m.block();
        let target = m.reg();
        m.branch(R(sel), then_b, else_b);
        m.select(then_b);
        m.copy_to(target, R(fp));
        m.jump(call_b);
        m.select(else_b);
        m.copy_to(target, R(fp2));
        m.jump(call_b);
        m.select(call_b);
        let r = m.call_indirect(R(target), vec![Const(5)]);
        m.output(R(r));
        m.ret(None);
        let main = pb.finish_function(m);
        let mut d = pb.function("double", 1);
        let x = d.bin(BinOp::Add, R(d.param(0)), R(d.param(0)));
        d.ret(Some(R(x)));
        pb.finish_function(d);
        let mut s = pb.function("square", 1);
        let x = s.bin(BinOp::Mul, R(s.param(0)), R(s.param(0)));
        s.ret(Some(R(x)));
        pb.finish_function(s);
        let p = pb.finish(main).unwrap();
        assert_eq!(run(&p, &[1]).output_values(), vec![10]);
        assert_eq!(run(&p, &[0]).output_values(), vec![25]);
    }

    #[test]
    fn tracer_sees_sync_events_in_order() {
        #[derive(Default)]
        struct Log(Vec<String>);
        impl Tracer for Log {
            fn on_lock(&mut self, ctx: EventCtx, _a: Addr) {
                self.0.push(format!("lock:{}", ctx.thread));
            }
            fn on_unlock(&mut self, ctx: EventCtx, _a: Addr) {
                self.0.push(format!("unlock:{}", ctx.thread));
            }
            fn on_spawn(&mut self, _ctx: EventCtx, child: ThreadId, _e: FuncId) {
                self.0.push(format!("spawn:{child}"));
            }
            fn on_join(&mut self, _ctx: EventCtx, child: ThreadId) {
                self.0.push(format!("join:{child}"));
            }
            fn on_thread_exit(&mut self, t: ThreadId) {
                self.0.push(format!("exit:{t}"));
            }
        }
        let p = counter_program(2);
        let mut log = Log::default();
        let r = Machine::new(&p, MachineConfig::default()).run(&[], &mut log);
        assert_eq!(r.status, Termination::Exited);
        // Lock/unlock strictly alternate because the lock is exclusive.
        let mut held = false;
        let mut lock_events = 0;
        for e in &log.0 {
            if e.starts_with("lock:") {
                assert!(!held, "lock acquired while held: {:?}", log.0);
                held = true;
                lock_events += 1;
            } else if e.starts_with("unlock:") {
                assert!(held, "unlock without lock");
                held = false;
            }
        }
        assert_eq!(lock_events, 4, "2 threads x 2 iterations");
        assert!(log.0.contains(&"spawn:t1".to_string()));
        assert!(log.0.contains(&"exit:t1".to_string()));
        assert!(log.0.contains(&"join:t2".to_string()));
    }

    #[test]
    fn frame_ids_distinguish_activations() {
        #[derive(Default)]
        struct Frames(Vec<u64>);
        impl Tracer for Frames {
            fn on_call(&mut self, _ctx: EventCtx, _f: FuncId, callee_frame: FrameId) {
                self.0.push(callee_frame.0);
            }
        }
        let mut pb = ProgramBuilder::new();
        let id = pb.declare("id", 1);
        let mut m = pb.function("main", 0);
        m.call_void(id, vec![Const(1)]);
        m.call_void(id, vec![Const(2)]);
        m.ret(None);
        let main = pb.finish_function(m);
        let mut f = pb.function("id", 1);
        f.ret(Some(R(f.param(0))));
        pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        let mut frames = Frames::default();
        Machine::new(&p, MachineConfig::default()).run(&[], &mut frames);
        assert_eq!(frames.0.len(), 2);
        assert_ne!(frames.0[0], frames.0[1]);
    }
}
