//! The interpreter proper: green threads, a seeded scheduler, and the
//! instruction execution loop.

use std::cell::Cell;
use std::rc::Rc;

use oha_ir::{BlockId, Callee, CmpOp, FuncId, InstId, InstKind, Operand, Program, Reg, Terminator};
use oha_obs::{Counter, MetricsRegistry};

use crate::heap::Heap;
use crate::plan::{hooks, ElisionCells, InstrPlan};
use crate::shadow::ShadowMap;
use crate::tracer::{EventCtx, Tracer};
use crate::value::{Addr, FrameId, ObjId, ThreadId, Value};

/// Per-event-kind tracer-dispatch counters plus scheduler counters.
///
/// The default value is fully detached: every field is a
/// [`Counter::detached`] handle, so an unobserved machine pays one branch
/// per event and allocates nothing. [`HookCounters::attached`] registers
/// every counter under `<prefix>.hook.<event>` / `<prefix>.sched.<metric>`.
#[derive(Clone, Debug, Default)]
pub struct HookCounters {
    /// `on_load` dispatches.
    pub load: Counter,
    /// `on_store` dispatches.
    pub store: Counter,
    /// `on_lock` dispatches (acquisitions, not blocked attempts).
    pub lock: Counter,
    /// `on_unlock` dispatches.
    pub unlock: Counter,
    /// `on_spawn` dispatches.
    pub spawn: Counter,
    /// `on_join` dispatches.
    pub join: Counter,
    /// `on_thread_exit` dispatches.
    pub thread_exit: Counter,
    /// `on_block_enter` dispatches.
    pub block_enter: Counter,
    /// `on_call` dispatches.
    pub call: Counter,
    /// `on_return` dispatches.
    pub ret: Counter,
    /// `on_input` dispatches.
    pub input: Counter,
    /// `on_output` dispatches.
    pub output: Counter,
    /// `on_compute` dispatches.
    pub compute: Counter,
    /// Scheduling decisions (quantum slots granted).
    pub sched_decisions: Counter,
    /// Preemptions: slots fully consumed with the thread still runnable.
    pub sched_preemptions: Counter,
}

impl HookCounters {
    /// Registers all counters in `registry` under `prefix`.
    pub fn attached(registry: &MetricsRegistry, prefix: &str) -> Self {
        let hook = |event: &str| registry.counter(&format!("{prefix}.hook.{event}"));
        HookCounters {
            load: hook("load"),
            store: hook("store"),
            lock: hook("lock"),
            unlock: hook("unlock"),
            spawn: hook("spawn"),
            join: hook("join"),
            thread_exit: hook("thread_exit"),
            block_enter: hook("block_enter"),
            call: hook("call"),
            ret: hook("return"),
            input: hook("input"),
            output: hook("output"),
            compute: hook("compute"),
            sched_decisions: registry.counter(&format!("{prefix}.sched.decisions")),
            sched_preemptions: registry.counter(&format!("{prefix}.sched.preemptions")),
        }
    }

    /// Sum of all memory-access hook dispatches (loads + stores).
    pub fn accesses(&self) -> u64 {
        self.load.get() + self.store.get()
    }
}

/// Configuration of a [`Machine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    /// Scheduler seed; two runs with equal program, input and seed are
    /// bit-for-bit identical (the record/replay property).
    pub seed: u64,
    /// Abort the run after this many executed steps.
    pub max_steps: u64,
    /// Maximum instructions a thread runs before the scheduler may preempt
    /// it. Actual slot lengths are drawn uniformly from `1..=quantum`.
    pub quantum: u32,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            seed: 0x5eed_0a11,
            max_steps: 50_000_000,
            quantum: 40,
        }
    }
}

/// Why an execution stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Termination {
    /// Every thread ran to completion.
    Exited,
    /// No thread is runnable but some are blocked.
    Deadlock,
    /// The configured step budget was exhausted.
    StepLimit,
    /// The program performed an illegal operation.
    Error(RuntimeError),
}

/// Illegal operations an interpreted program can perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// A load/store/gep/lock address operand was not a pointer.
    NotAPointer {
        /// The faulting instruction.
        inst: InstId,
    },
    /// A memory access fell outside its object.
    OutOfBounds {
        /// The faulting instruction.
        inst: InstId,
        /// The address accessed.
        addr: Addr,
    },
    /// An indirect call/spawn target was not a function pointer.
    NotAFunction {
        /// The faulting instruction.
        inst: InstId,
    },
    /// An indirect call passed the wrong number of arguments.
    BadArity {
        /// The faulting instruction.
        inst: InstId,
    },
    /// A join operand was not a thread handle.
    NotAThread {
        /// The faulting instruction.
        inst: InstId,
    },
    /// An unlock of a mutex the thread does not hold.
    UnlockNotHeld {
        /// The faulting instruction.
        inst: InstId,
        /// The mutex address.
        addr: Addr,
    },
    /// A lock of a mutex the thread already holds (locks are not
    /// reentrant).
    RelockHeld {
        /// The faulting instruction.
        inst: InstId,
        /// The mutex address.
        addr: Addr,
    },
    /// Arithmetic on a non-integer value.
    NotAnInt {
        /// The faulting instruction.
        inst: InstId,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::NotAPointer { inst } => write!(f, "{inst}: address is not a pointer"),
            RuntimeError::OutOfBounds { inst, addr } => {
                write!(f, "{inst}: access to {addr} is out of bounds")
            }
            RuntimeError::NotAFunction { inst } => {
                write!(f, "{inst}: call target is not a function")
            }
            RuntimeError::BadArity { inst } => write!(f, "{inst}: wrong argument count"),
            RuntimeError::NotAThread { inst } => write!(f, "{inst}: join target is not a thread"),
            RuntimeError::UnlockNotHeld { inst, addr } => {
                write!(f, "{inst}: unlock of {addr} not held")
            }
            RuntimeError::RelockHeld { inst, addr } => {
                write!(f, "{inst}: relock of held mutex {addr}")
            }
            RuntimeError::NotAnInt { inst } => write!(f, "{inst}: arithmetic on non-integer"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// The outcome of one execution.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Why the run stopped.
    pub status: Termination,
    /// Every value produced by `output`, with its producing site.
    pub outputs: Vec<(InstId, Value)>,
    /// Steps (instructions + terminators) executed.
    pub steps: u64,
    /// Number of threads ever created (including main).
    pub num_threads: u32,
    /// Number of objects at the end of the run (globals + allocations).
    pub num_objects: usize,
}

impl RunResult {
    /// The output stream as integers (see [`Value::to_i64_lossy`]).
    pub fn output_values(&self) -> Vec<i64> {
        self.outputs.iter().map(|(_, v)| v.to_i64_lossy()).collect()
    }
}

/// A recorded schedule: the scheduler's decisions, one `(thread, slot)`
/// pair per scheduling quantum. Replaying a trace reproduces the exact
/// interleaving independently of the seed that produced it — the explicit
/// record/replay artifact the paper's rollback assumes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScheduleTrace {
    decisions: Vec<(u32, u32)>,
}

impl ScheduleTrace {
    /// Number of scheduling decisions recorded.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }
}

enum Scheduler {
    Random(SplitMix64),
    Recording(SplitMix64, ScheduleTrace),
    Replaying(ScheduleTrace, usize),
}

impl Scheduler {
    /// Picks the next thread (from `runnable`) and its slot length.
    fn pick(&mut self, runnable: &[u32], quantum: u32) -> (ThreadId, u64) {
        match self {
            Scheduler::Random(rng) => {
                let tid = runnable[rng.below(runnable.len() as u64) as usize];
                (ThreadId(tid), 1 + rng.below(u64::from(quantum)))
            }
            Scheduler::Recording(rng, trace) => {
                let tid = runnable[rng.below(runnable.len() as u64) as usize];
                let slot = 1 + rng.below(u64::from(quantum));
                trace.decisions.push((tid, slot as u32));
                (ThreadId(tid), slot)
            }
            Scheduler::Replaying(trace, pos) => {
                let decision = trace.decisions.get(*pos).copied();
                *pos += 1;
                match decision {
                    // If the recorded thread is not runnable (possible only
                    // if the program under replay diverged), fall back to
                    // the first runnable thread.
                    Some((tid, slot)) if runnable.contains(&tid) => {
                        (ThreadId(tid), u64::from(slot.max(1)))
                    }
                    _ => (ThreadId(runnable[0]), 1),
                }
            }
        }
    }
}

/// Deterministic scheduler randomness (SplitMix64). Implemented inline so
/// schedules are stable across platforms and `rand` versions.
#[derive(Clone, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next() % n
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    BlockedLock(Addr),
    BlockedJoin(ThreadId),
    Done,
}

#[derive(Debug)]
struct Frame {
    func: FuncId,
    frame_id: FrameId,
    block: BlockId,
    pc: usize,
    regs: Vec<Value>,
    /// Where the return value goes in the caller, and the caller's call
    /// site. `None` for thread entry frames.
    ret_to: Option<(Option<Reg>, InstId)>,
}

#[derive(Debug)]
struct ThreadCtx {
    state: ThreadState,
    stack: Vec<Frame>,
    join_waiters: Vec<ThreadId>,
}

#[derive(Clone, Debug, Default)]
struct LockState {
    holder: Option<ThreadId>,
    waiters: Vec<ThreadId>,
}

/// Pre-decoded per-function facts, indexed by [`FuncId`], so frame
/// creation does not consult the program's function table per call.
#[derive(Clone, Copy, Debug)]
struct DecodedFunc {
    entry: BlockId,
    num_regs: u32,
    arity: u32,
}

/// Pre-resolved direct call/spawn site: the callee and everything frame
/// creation needs, with the arity check done once at decode time.
#[derive(Clone, Copy, Debug)]
struct DecodedCallee {
    func: FuncId,
    entry: BlockId,
    num_regs: u32,
    arity_ok: bool,
}

/// Per-instruction operand/callee pre-decode, built once at
/// [`Machine::new`] so the inner `step` match stops re-resolving callees
/// and re-checking arities on every visit.
#[derive(Debug)]
struct DecodedProgram {
    funcs: Vec<DecodedFunc>,
    /// `Some` at `Call`/`Spawn` sites with a direct callee, indexed by
    /// [`InstId`]; indirect sites stay `None` and resolve at run time.
    calls: Vec<Option<DecodedCallee>>,
}

impl DecodedProgram {
    fn new(program: &Program) -> Self {
        let funcs: Vec<DecodedFunc> = program
            .functions()
            .iter()
            .map(|f| DecodedFunc {
                entry: f.entry,
                num_regs: f.num_regs,
                arity: f.arity() as u32,
            })
            .collect();
        let mut calls = vec![None; program.num_insts()];
        if !crate::fastpath::enabled() {
            // Reference configuration: leave every call site undecoded
            // so it resolves (and arity-checks) per visit, as the
            // pre-decode-free interpreter did. Behaviour is identical;
            // only the per-call cost profile differs.
            return Self { funcs, calls };
        }
        for inst in program.insts() {
            let (callee, want_arity) = match &inst.kind {
                InstKind::Call { callee, args, .. } => (callee, args.len()),
                InstKind::Spawn { func, .. } => (func, 1),
                _ => continue,
            };
            if let Callee::Direct(f) = *callee {
                let d = funcs[f.index()];
                calls[inst.id.index()] = Some(DecodedCallee {
                    func: f,
                    entry: d.entry,
                    num_regs: d.num_regs,
                    arity_ok: d.arity as usize == want_arity,
                });
            }
        }
        Self { funcs, calls }
    }
}

/// A reusable interpreter for one program.
///
/// `Machine` is immutable; every [`Machine::run`] creates fresh execution
/// state, so the same machine can replay an execution (same input and seed)
/// or explore schedules (different seeds).
#[derive(Clone, Debug)]
pub struct Machine<'p> {
    program: &'p Program,
    config: MachineConfig,
    /// Shared by handle: every run construction and counting tracer holds
    /// the same `Rc` instead of paying an O(counters) clone per execution.
    metrics: Rc<HookCounters>,
    /// Per-instruction callee/operand pre-decode, built once here and
    /// shared by every execution (`Rc` keeps machine clones cheap).
    decoded: Rc<DecodedProgram>,
}

impl<'p> Machine<'p> {
    /// Creates a machine for `program`.
    pub fn new(program: &'p Program, config: MachineConfig) -> Self {
        Self {
            program,
            config,
            metrics: Rc::new(HookCounters::default()),
            decoded: Rc::new(DecodedProgram::new(program)),
        }
    }

    /// Attaches hook-dispatch and scheduler counters registered in
    /// `registry` under `prefix` (builder-style).
    pub fn with_metrics(mut self, registry: &MetricsRegistry, prefix: &str) -> Self {
        self.metrics = Rc::new(HookCounters::attached(registry, prefix));
        self
    }

    /// The machine's hook counters (detached unless
    /// [`with_metrics`](Machine::with_metrics) was called).
    pub fn metrics(&self) -> &HookCounters {
        &self.metrics
    }

    /// The program this machine executes.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The machine configuration.
    pub fn config(&self) -> MachineConfig {
        self.config
    }

    /// Executes the program on `input`, reporting events to `tracer`.
    pub fn run<T: Tracer>(&self, input: &[i64], tracer: &mut T) -> RunResult {
        self.run_with_plan(input, tracer, None)
    }

    /// [`Machine::run`] under an instrumentation plan: hooks the plan
    /// masks out are skipped (but counted) inside the step loop. `None`
    /// dispatches everything. The execution itself — scheduling, heap,
    /// outputs — is identical either way; only tracer dispatch changes.
    pub fn run_with_plan<T: Tracer>(
        &self,
        input: &[i64],
        tracer: &mut T,
        plan: Option<&InstrPlan>,
    ) -> RunResult {
        let sched = Scheduler::Random(SplitMix64(self.config.seed));
        let mut counting = crate::tracer::CountingTracer {
            inner: tracer,
            counters: Rc::clone(&self.metrics),
        };
        Execution::new(
            self.program,
            &self.decoded,
            self.config,
            input,
            sched,
            Rc::clone(&self.metrics),
            plan,
        )
        .run(&mut counting)
        .0
    }

    /// Executes the program while recording every scheduling decision;
    /// feed the returned trace to [`Machine::run_replay`] to reproduce the
    /// identical interleaving.
    pub fn run_recording<T: Tracer>(
        &self,
        input: &[i64],
        tracer: &mut T,
    ) -> (RunResult, ScheduleTrace) {
        self.run_recording_with_plan(input, tracer, None)
    }

    /// [`Machine::run_recording`] under an instrumentation plan (see
    /// [`Machine::run_with_plan`]).
    pub fn run_recording_with_plan<T: Tracer>(
        &self,
        input: &[i64],
        tracer: &mut T,
        plan: Option<&InstrPlan>,
    ) -> (RunResult, ScheduleTrace) {
        let sched = Scheduler::Recording(SplitMix64(self.config.seed), ScheduleTrace::default());
        let mut counting = crate::tracer::CountingTracer {
            inner: tracer,
            counters: Rc::clone(&self.metrics),
        };
        let (result, sched) = Execution::new(
            self.program,
            &self.decoded,
            self.config,
            input,
            sched,
            Rc::clone(&self.metrics),
            plan,
        )
        .run(&mut counting);
        match sched {
            Scheduler::Recording(_, trace) => (result, trace),
            _ => unreachable!("recording scheduler preserved"),
        }
    }

    /// Re-executes the program following a recorded schedule. With the same
    /// program and input this reproduces the recorded run exactly — the
    /// re-execution primitive speculation rollback uses.
    pub fn run_replay<T: Tracer>(
        &self,
        input: &[i64],
        trace: &ScheduleTrace,
        tracer: &mut T,
    ) -> RunResult {
        self.run_replay_with_plan(input, trace, tracer, None)
    }

    /// [`Machine::run_replay`] under an instrumentation plan (see
    /// [`Machine::run_with_plan`]).
    pub fn run_replay_with_plan<T: Tracer>(
        &self,
        input: &[i64],
        trace: &ScheduleTrace,
        tracer: &mut T,
        plan: Option<&InstrPlan>,
    ) -> RunResult {
        let sched = Scheduler::Replaying(trace.clone(), 0);
        let mut counting = crate::tracer::CountingTracer {
            inner: tracer,
            counters: Rc::clone(&self.metrics),
        };
        Execution::new(
            self.program,
            &self.decoded,
            self.config,
            input,
            sched,
            Rc::clone(&self.metrics),
            plan,
        )
        .run(&mut counting)
        .0
    }
}

struct Execution<'p, 'i> {
    program: &'p Program,
    decoded: &'i DecodedProgram,
    config: MachineConfig,
    input: &'i [i64],
    input_pos: usize,
    heap: Heap,
    threads: Vec<ThreadCtx>,
    locks: ShadowMap<LockState>,
    scheduler: Scheduler,
    next_frame: u64,
    steps: u64,
    outputs: Vec<(InstId, Value)>,
    counters: Rc<HookCounters>,
    /// Hook mask per site; `None` dispatches everything.
    plan: Option<&'i InstrPlan>,
    /// Captured at construction from [`fastpath::enabled`]: selects the
    /// tuned [`Execution::step_fast`] loop (frame resolved once per
    /// instruction) over the reference [`Execution::step`]. Semantics,
    /// event order and RNG draws are identical either way.
    fast: bool,
    /// Register storage recycled from popped frames (fast path only);
    /// bounded by the deepest call stack the run reaches.
    regs_pool: Vec<Vec<Value>>,
    /// Argument buffers recycled from frame creation (fast path only).
    argv_pool: Vec<Vec<Value>>,
}

enum StepOutcome {
    Continue,
    /// The thread blocked or finished; end its scheduling slot.
    Yield,
    Fault(RuntimeError),
}

/// Outcome of one whole scheduling slot on the tuned path.
enum SlotOutcome {
    /// The slot ran to completion (`yielded: false`, a preemption) or the
    /// thread gave up the remainder (`yielded: true`).
    Done {
        yielded: bool,
    },
    Fault(RuntimeError),
    StepLimit,
}

/// Builds an event context — called only at sites that dispatch.
#[inline]
fn ctx(tid: ThreadId, frame: FrameId, inst: InstId) -> EventCtx {
    EventCtx {
        thread: tid,
        frame,
        inst,
    }
}

impl<'p, 'i> Execution<'p, 'i> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        program: &'p Program,
        decoded: &'i DecodedProgram,
        config: MachineConfig,
        input: &'i [i64],
        scheduler: Scheduler,
        counters: Rc<HookCounters>,
        plan: Option<&'i InstrPlan>,
    ) -> Self {
        let mut exec = Self {
            program,
            decoded,
            config,
            input,
            input_pos: 0,
            heap: Heap::new(program),
            threads: Vec::new(),
            locks: ShadowMap::new(LockState::default()),
            scheduler,
            next_frame: 0,
            steps: 0,
            outputs: Vec::new(),
            counters,
            plan,
            fast: crate::fastpath::enabled(),
            regs_pool: Vec::new(),
            argv_pool: Vec::new(),
        };
        let entry = program.entry();
        let frame = exec.make_frame(entry, Vec::new(), None);
        exec.threads.push(ThreadCtx {
            state: ThreadState::Runnable,
            stack: vec![frame],
            join_waiters: Vec::new(),
        });
        exec
    }

    fn make_frame(
        &mut self,
        func: FuncId,
        args: Vec<Value>,
        ret_to: Option<(Option<Reg>, InstId)>,
    ) -> Frame {
        let f = self.decoded.funcs[func.index()];
        self.make_frame_at(func, f.entry, f.num_regs, args, ret_to)
    }

    /// Frame creation with pre-decoded entry/register facts (direct call
    /// sites skip the function-table lookup entirely).
    fn make_frame_at(
        &mut self,
        func: FuncId,
        entry: BlockId,
        num_regs: u32,
        args: Vec<Value>,
        ret_to: Option<(Option<Reg>, InstId)>,
    ) -> Frame {
        // Fast path: register storage comes from the pool of popped
        // frames and the spent argument buffer goes back to its pool, so
        // steady-state calls allocate nothing. Contents are identical to
        // a fresh zeroed vector either way.
        let mut regs = if self.fast {
            let mut r = self.regs_pool.pop().unwrap_or_default();
            r.clear();
            r.resize(num_regs as usize, Value::default());
            r
        } else {
            vec![Value::default(); num_regs as usize]
        };
        regs[..args.len()].copy_from_slice(&args);
        if self.fast {
            let mut spent = args;
            spent.clear();
            self.argv_pool.push(spent);
        }
        let frame_id = FrameId(self.next_frame);
        self.next_frame += 1;
        Frame {
            func,
            frame_id,
            block: entry,
            pc: 0,
            regs,
            ret_to,
        }
    }

    /// Whether the plan dispatches `bit` at `inst` (everything without a
    /// plan): one array load and one branch.
    #[inline]
    fn wants(&self, inst: InstId, bit: u8) -> bool {
        match self.plan {
            None => true,
            Some(p) => p.mask(inst) & bit != 0,
        }
    }

    /// Whether block-enter events are dispatched.
    #[inline]
    fn block_enter_wanted(&self) -> bool {
        self.plan.is_none_or(InstrPlan::block_enter)
    }

    /// Tallies one plan-skipped dispatch (no-op without a plan). The
    /// matching hook counter is deliberately NOT bumped here — the run
    /// loop flushes the tally into the hook counters in bulk at end of
    /// run, keeping the skip path at one 8-byte RMW per event.
    #[inline]
    fn note_elided(&self, select: impl FnOnce(&ElisionCells) -> &Cell<u64>) {
        if let Some(p) = self.plan {
            p.note(select);
        }
    }

    /// Dispatches or elides a block-enter event.
    #[inline]
    fn block_enter_event<T: Tracer>(
        &self,
        tracer: &mut T,
        tid: ThreadId,
        frame: FrameId,
        block: BlockId,
    ) {
        if self.block_enter_wanted() {
            tracer.on_block_enter(tid, frame, block);
        } else {
            self.note_elided(|e| &e.block_enters);
        }
    }

    /// Dispatches or elides a compute event.
    #[inline]
    fn compute_event<T: Tracer>(
        &self,
        tracer: &mut T,
        pmask: u8,
        tid: ThreadId,
        frame: FrameId,
        inst: InstId,
    ) {
        if pmask & hooks::COMPUTE != 0 {
            tracer.on_compute(EventCtx {
                thread: tid,
                frame,
                inst,
            });
        } else {
            self.note_elided(|e| &e.computes);
        }
    }

    fn run<T: Tracer>(mut self, tracer: &mut T) -> (RunResult, Scheduler) {
        // The main thread enters its entry block.
        {
            let frame = &self.threads[0].stack[0];
            let (frame_id, block) = (frame.frame_id, frame.block);
            self.block_enter_event(tracer, ThreadId::MAIN, frame_id, block);
        }

        // Reused across scheduling decisions: one decision fires every
        // few steps, so a fresh `collect` here is an allocation on the
        // hot path for nothing — the contents are identical either way.
        let mut runnable: Vec<u32> = Vec::with_capacity(self.threads.len());
        let status = loop {
            // Collect runnable threads.
            runnable.clear();
            runnable.extend(
                self.threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.state == ThreadState::Runnable)
                    .map(|(i, _)| i as u32),
            );
            if runnable.is_empty() {
                if self.threads.iter().all(|t| t.state == ThreadState::Done) {
                    break Termination::Exited;
                }
                break Termination::Deadlock;
            }
            let (tid, slot) = self.scheduler.pick(&runnable, self.config.quantum);
            self.counters.sched_decisions.inc();

            let mut fault = None;
            let mut yielded = false;
            if self.fast {
                match self.step_slot(tid, slot, tracer) {
                    SlotOutcome::Done { yielded: y } => yielded = y,
                    SlotOutcome::Fault(e) => fault = Some(Termination::Error(e)),
                    SlotOutcome::StepLimit => fault = Some(Termination::StepLimit),
                }
            } else {
                for _ in 0..slot {
                    if self.steps >= self.config.max_steps {
                        fault = Some(Termination::StepLimit);
                        break;
                    }
                    match self.step(tid, tracer) {
                        StepOutcome::Continue => {}
                        StepOutcome::Yield => {
                            yielded = true;
                            break;
                        }
                        StepOutcome::Fault(e) => {
                            fault = Some(Termination::Error(e));
                            break;
                        }
                    }
                }
            }
            if let Some(status) = fault {
                break status;
            }
            // The slot ran out with the thread still willing to run: that is
            // a preemption, the scheduler event OptFT's framework cost models.
            if !yielded {
                self.counters.sched_preemptions.inc();
            }
        };

        // Bulk-flush the plan's elision tally into the hook counters, so
        // the identity "hook counter = dispatched + elided" holds without
        // a per-event counter bump on the skip path. The tally itself is
        // left for the owning tool's `take_elisions`.
        if let Some(p) = self.plan {
            let e = p.peek_elisions();
            self.counters.load.add(e.loads);
            self.counters.store.add(e.stores);
            self.counters.lock.add(e.locks);
            self.counters.unlock.add(e.unlocks);
            self.counters.compute.add(e.computes);
            self.counters.call.add(e.calls);
            self.counters.ret.add(e.returns);
            self.counters.input.add(e.inputs);
            self.counters.output.add(e.outputs);
            self.counters.block_enter.add(e.block_enters);
        }

        (
            RunResult {
                status,
                outputs: self.outputs,
                steps: self.steps,
                num_threads: self.threads.len() as u32,
                num_objects: self.heap.num_objects(),
            },
            self.scheduler,
        )
    }

    /// The running thread's current frame.
    #[inline]
    fn cur_frame(&self, tid: ThreadId) -> &Frame {
        self.threads[tid.index()]
            .stack
            .last()
            .expect("running thread has a frame")
    }

    /// Operand evaluation against an already-resolved frame, so
    /// multi-operand instructions resolve the frame once per visit.
    #[inline]
    fn eval_in(frame: &Frame, op: Operand) -> Value {
        match op {
            Operand::Const(c) => Value::Int(c),
            Operand::Reg(r) => frame.regs[r.index()],
        }
    }

    fn eval(&self, tid: ThreadId, op: Operand) -> Value {
        match op {
            Operand::Const(c) => Value::Int(c),
            Operand::Reg(r) => self.cur_frame(tid).regs[r.index()],
        }
    }

    fn set_reg(&mut self, tid: ThreadId, r: Reg, v: Value) {
        let frame = self.threads[tid.index()]
            .stack
            .last_mut()
            .expect("running thread has a frame");
        frame.regs[r.index()] = v;
    }

    fn advance_pc(&mut self, tid: ThreadId) {
        let frame = self.threads[tid.index()]
            .stack
            .last_mut()
            .expect("running thread has a frame");
        frame.pc += 1;
    }

    fn ptr_operand(&self, tid: ThreadId, inst: InstId, op: Operand) -> Result<Addr, RuntimeError> {
        match self.eval(tid, op) {
            Value::Ptr(a) => Ok(a),
            _ => Err(RuntimeError::NotAPointer { inst }),
        }
    }

    /// Executes one instruction or terminator of thread `tid`.
    fn step<T: Tracer>(&mut self, tid: ThreadId, tracer: &mut T) -> StepOutcome {
        self.steps += 1;
        let (_func, frame_id, block, pc) = {
            let frame = self.threads[tid.index()]
                .stack
                .last()
                .expect("running thread has a frame");
            (frame.func, frame.frame_id, frame.block, frame.pc)
        };
        // Borrow the instruction from the program reference itself (not
        // through `self`), so the hot loop never clones instruction data.
        let program: &'p Program = self.program;
        let block_data = program.block(block);

        if pc >= block_data.insts.len() {
            return self.step_terminator(tid, frame_id, block, tracer);
        }

        let inst_id = block_data.insts[pc].id;
        let kind: &'p InstKind = &block_data.insts[pc].kind;
        // One array load decides what this site dispatches; a fully
        // elided site never builds an `EventCtx` or calls the tracer.
        let pmask = match self.plan {
            None => hooks::ALL,
            Some(p) => p.mask(inst_id),
        };

        match *kind {
            InstKind::Copy { dst, src } => {
                let v = self.eval(tid, src);
                self.set_reg(tid, dst, v);
                self.compute_event(tracer, pmask, tid, frame_id, inst_id);
            }
            InstKind::BinOp { dst, op, lhs, rhs } => {
                let (a, b) = {
                    let frame = self.cur_frame(tid);
                    (Self::eval_in(frame, lhs), Self::eval_in(frame, rhs))
                };
                let v = match (a, b) {
                    (Value::Int(x), Value::Int(y)) => Value::Int(op.eval(x, y)),
                    _ => match op {
                        oha_ir::BinOp::Cmp(CmpOp::Eq) => Value::Int(i64::from(a == b)),
                        oha_ir::BinOp::Cmp(CmpOp::Ne) => Value::Int(i64::from(a != b)),
                        _ => return StepOutcome::Fault(RuntimeError::NotAnInt { inst: inst_id }),
                    },
                };
                self.set_reg(tid, dst, v);
                self.compute_event(tracer, pmask, tid, frame_id, inst_id);
            }
            InstKind::Alloc { dst, fields } => {
                let obj = self.heap.alloc(fields, inst_id);
                self.set_reg(tid, dst, Value::Ptr(Addr::new(obj, 0)));
                self.compute_event(tracer, pmask, tid, frame_id, inst_id);
            }
            InstKind::AddrGlobal { dst, global } => {
                self.set_reg(tid, dst, Value::Ptr(Addr::new(ObjId(global.raw()), 0)));
                self.compute_event(tracer, pmask, tid, frame_id, inst_id);
            }
            InstKind::AddrFunc { dst, func } => {
                self.set_reg(tid, dst, Value::Func(func));
                self.compute_event(tracer, pmask, tid, frame_id, inst_id);
            }
            InstKind::Gep { dst, base, field } => {
                let a = match self.ptr_operand(tid, inst_id, base) {
                    Ok(a) => a,
                    Err(e) => return StepOutcome::Fault(e),
                };
                self.set_reg(tid, dst, Value::Ptr(a.offset(field)));
                self.compute_event(tracer, pmask, tid, frame_id, inst_id);
            }
            InstKind::Load { dst, addr, field } => {
                let a = match self.ptr_operand(tid, inst_id, addr) {
                    Ok(a) => a.offset(field),
                    Err(e) => return StepOutcome::Fault(e),
                };
                let v = match self.heap.load(a) {
                    Some(v) => v,
                    None => {
                        return StepOutcome::Fault(RuntimeError::OutOfBounds {
                            inst: inst_id,
                            addr: a,
                        })
                    }
                };
                self.set_reg(tid, dst, v);
                if pmask & hooks::LOAD != 0 {
                    tracer.on_load(ctx(tid, frame_id, inst_id), a, v);
                } else {
                    self.note_elided(|e| &e.loads);
                }
            }
            InstKind::Store { addr, field, value } => {
                let (av, v) = {
                    let frame = self.cur_frame(tid);
                    (Self::eval_in(frame, addr), Self::eval_in(frame, value))
                };
                let a = match av {
                    Value::Ptr(a) => a.offset(field),
                    _ => return StepOutcome::Fault(RuntimeError::NotAPointer { inst: inst_id }),
                };
                if !self.heap.store(a, v) {
                    return StepOutcome::Fault(RuntimeError::OutOfBounds {
                        inst: inst_id,
                        addr: a,
                    });
                }
                if pmask & hooks::STORE != 0 {
                    tracer.on_store(ctx(tid, frame_id, inst_id), a, v);
                } else {
                    self.note_elided(|e| &e.stores);
                }
            }
            InstKind::Call { .. }
            | InstKind::Lock { .. }
            | InstKind::Unlock { .. }
            | InstKind::Spawn { .. }
            | InstKind::Join { .. } => {
                return self.step_cold(tid, tracer, frame_id, inst_id, kind, pmask)
            }
            InstKind::Input { dst } => {
                let v = Value::Int(self.input.get(self.input_pos).copied().unwrap_or(0));
                self.input_pos += 1;
                self.set_reg(tid, dst, v);
                if pmask & hooks::INPUT != 0 {
                    tracer.on_input(ctx(tid, frame_id, inst_id), v);
                } else {
                    self.note_elided(|e| &e.inputs);
                }
            }
            InstKind::Output { value } => {
                let v = self.eval(tid, value);
                self.outputs.push((inst_id, v));
                if pmask & hooks::OUTPUT != 0 {
                    tracer.on_output(ctx(tid, frame_id, inst_id), v);
                } else {
                    self.note_elided(|e| &e.outputs);
                }
            }
        }
        self.advance_pc(tid);
        StepOutcome::Continue
    }

    /// Executes the rare control/sync instruction kinds (call, lock,
    /// unlock, spawn, join). Shared verbatim by both step loops, so the
    /// fast path cannot drift from the reference on the cold arms.
    fn step_cold<T: Tracer>(
        &mut self,
        tid: ThreadId,
        tracer: &mut T,
        frame_id: FrameId,
        inst_id: InstId,
        kind: &InstKind,
        pmask: u8,
    ) -> StepOutcome {
        match *kind {
            InstKind::Call {
                dst,
                ref callee,
                ref args,
            } => {
                let (target, entry, num_regs) = match self.decoded.calls[inst_id.index()] {
                    // Direct call: callee facts pre-decoded, arity
                    // pre-checked at machine construction.
                    Some(d) => {
                        if !d.arity_ok {
                            return StepOutcome::Fault(RuntimeError::BadArity { inst: inst_id });
                        }
                        (d.func, d.entry, d.num_regs)
                    }
                    None => {
                        let target = match self.resolve_callee(tid, inst_id, *callee) {
                            Ok(t) => t,
                            Err(e) => return StepOutcome::Fault(e),
                        };
                        let f = self.decoded.funcs[target.index()];
                        if f.arity as usize != args.len() {
                            return StepOutcome::Fault(RuntimeError::BadArity { inst: inst_id });
                        }
                        (target, f.entry, f.num_regs)
                    }
                };
                let argv: Vec<Value> = {
                    // The fast path reuses a pooled buffer (returned by
                    // `make_frame_at`); the reference allocates per call.
                    let mut argv = if self.fast {
                        self.argv_pool.pop().unwrap_or_default()
                    } else {
                        Vec::with_capacity(args.len())
                    };
                    let frame = self.cur_frame(tid);
                    argv.extend(args.iter().map(|&a| Self::eval_in(frame, a)));
                    argv
                };
                // Resume after the call on return.
                self.advance_pc(tid);
                let frame = self.make_frame_at(target, entry, num_regs, argv, Some((dst, inst_id)));
                let callee_frame = frame.frame_id;
                self.threads[tid.index()].stack.push(frame);
                if pmask & hooks::CALL != 0 {
                    tracer.on_call(ctx(tid, frame_id, inst_id), target, callee_frame);
                } else {
                    self.note_elided(|e| &e.calls);
                }
                self.block_enter_event(tracer, tid, callee_frame, entry);
                return StepOutcome::Continue;
            }
            InstKind::Lock { addr } => {
                let a = match self.ptr_operand(tid, inst_id, addr) {
                    Ok(a) => a,
                    Err(e) => return StepOutcome::Fault(e),
                };
                let lock = self.locks.get_mut(a);
                match lock.holder {
                    None => {
                        lock.holder = Some(tid);
                        if pmask & hooks::LOCK != 0 {
                            tracer.on_lock(ctx(tid, frame_id, inst_id), a);
                        } else {
                            self.note_elided(|e| &e.locks);
                        }
                    }
                    Some(h) if h == tid => {
                        return StepOutcome::Fault(RuntimeError::RelockHeld {
                            inst: inst_id,
                            addr: a,
                        })
                    }
                    Some(_) => {
                        if !lock.waiters.contains(&tid) {
                            lock.waiters.push(tid);
                        }
                        self.threads[tid.index()].state = ThreadState::BlockedLock(a);
                        // Do not advance the pc: the lock is retried on wake.
                        return StepOutcome::Yield;
                    }
                }
            }
            InstKind::Unlock { addr } => {
                let a = match self.ptr_operand(tid, inst_id, addr) {
                    Ok(a) => a,
                    Err(e) => return StepOutcome::Fault(e),
                };
                if self.locks.get(a).holder != Some(tid) {
                    return StepOutcome::Fault(RuntimeError::UnlockNotHeld {
                        inst: inst_id,
                        addr: a,
                    });
                }
                // Dispatch before releasing, matching the original order.
                if pmask & hooks::UNLOCK != 0 {
                    tracer.on_unlock(ctx(tid, frame_id, inst_id), a);
                } else {
                    self.note_elided(|e| &e.unlocks);
                }
                let lock = self.locks.get_mut(a);
                lock.holder = None;
                let waiters = std::mem::take(&mut lock.waiters);
                for w in waiters {
                    if self.threads[w.index()].state == ThreadState::BlockedLock(a) {
                        self.threads[w.index()].state = ThreadState::Runnable;
                    }
                }
            }
            InstKind::Spawn { dst, ref func, arg } => {
                let (target, entry, num_regs) = match self.decoded.calls[inst_id.index()] {
                    Some(d) => {
                        if !d.arity_ok {
                            return StepOutcome::Fault(RuntimeError::BadArity { inst: inst_id });
                        }
                        (d.func, d.entry, d.num_regs)
                    }
                    None => {
                        let target = match self.resolve_callee(tid, inst_id, *func) {
                            Ok(t) => t,
                            Err(e) => return StepOutcome::Fault(e),
                        };
                        let f = self.decoded.funcs[target.index()];
                        if f.arity != 1 {
                            return StepOutcome::Fault(RuntimeError::BadArity { inst: inst_id });
                        }
                        (target, f.entry, f.num_regs)
                    }
                };
                let argv = vec![self.eval(tid, arg)];
                let child = ThreadId(self.threads.len() as u32);
                let frame = self.make_frame_at(target, entry, num_regs, argv, None);
                let child_frame = frame.frame_id;
                self.threads.push(ThreadCtx {
                    state: ThreadState::Runnable,
                    stack: vec![frame],
                    join_waiters: Vec::new(),
                });
                self.set_reg(tid, dst, Value::Thread(child));
                // Spawn/join/thread-exit are rare sync-skeleton events:
                // always dispatched, never plan-elided.
                tracer.on_spawn(ctx(tid, frame_id, inst_id), child, target);
                self.block_enter_event(tracer, child, child_frame, entry);
            }
            InstKind::Join { thread } => {
                let t = match self.eval(tid, thread) {
                    Value::Thread(t) => t,
                    _ => return StepOutcome::Fault(RuntimeError::NotAThread { inst: inst_id }),
                };
                if self.threads[t.index()].state == ThreadState::Done {
                    tracer.on_join(ctx(tid, frame_id, inst_id), t);
                } else {
                    if !self.threads[t.index()].join_waiters.contains(&tid) {
                        self.threads[t.index()].join_waiters.push(tid);
                    }
                    self.threads[tid.index()].state = ThreadState::BlockedJoin(t);
                    // Do not advance the pc: the join is retried on wake.
                    return StepOutcome::Yield;
                }
            }
            _ => unreachable!("hot instruction kinds are handled by the step loops"),
        }
        self.advance_pc(tid);
        StepOutcome::Continue
    }

    /// Runs one whole scheduling slot (up to `slot` steps of thread
    /// `tid`) on the tuned path. Hot instructions — register computes,
    /// loads/stores, jumps and branches — execute in a burst that keeps
    /// the thread, frame, program and plan resolved across instructions
    /// (the plan, program and decode-table borrows are independent of
    /// `&mut self`, and every hot arm touches a disjoint field, so the
    /// frame borrow can live across iterations). Returns-with-a-caller
    /// and pre-decoded direct calls exit the burst just far enough for
    /// the frame borrow to die, pop/push the frame inline, and re-enter.
    /// Genuinely cold instructions — indirect calls, thread exits,
    /// lock/unlock, spawn/join — fall back to [`Execution::step_fast`]
    /// one instruction at a time. Step accounting, fault order, event
    /// order and payloads are identical to running the slot through
    /// `step` `slot` times, so executions are bit-for-bit identical.
    fn step_slot<T: Tracer>(&mut self, tid: ThreadId, slot: u64, tracer: &mut T) -> SlotOutcome {
        /// How a burst hands a frame-changing instruction to the code
        /// after it (where the frame borrow is out of scope).
        enum BurstExit {
            /// A `Return` with a caller: pop the frame.
            Ret(Option<Operand>),
            /// A pre-decoded direct call: push the callee frame.
            Call {
                dst: Option<Reg>,
                inst_id: InstId,
                caller_frame: FrameId,
                pmask: u8,
                d: DecodedCallee,
                argv: Vec<Value>,
            },
        }
        let ti = tid.index();
        let program: &'p Program = self.program;
        let decoded = self.decoded;
        let plan = self.plan;
        let mut left = slot;
        while left > 0 {
            // The reference loop checks the step budget before every
            // step; the burst below never exceeds it, so checking once
            // per burst entry is equivalent.
            if self.steps >= self.config.max_steps {
                return SlotOutcome::StepLimit;
            }
            let budget = left.min(self.config.max_steps - self.steps);
            let mut done: u64 = 0;
            let mut fault = None;
            let mut cold = false;
            {
                let Self {
                    threads,
                    heap,
                    input,
                    input_pos,
                    outputs,
                    next_frame,
                    regs_pool,
                    argv_pool,
                    ..
                } = self;
                let thread = &mut threads[ti];
                // Each `'frames` iteration runs one frame until it
                // returns (inline pop, then re-resolve the caller), the
                // budget runs out, a fault fires, or a cold instruction
                // needs the per-instruction path.
                'frames: while done < budget {
                    let frame = thread.stack.last_mut().expect("running thread has a frame");
                    let exit = 'burst: loop {
                        if done >= budget {
                            break 'frames;
                        }
                        let (frame_id, block, pc) = (frame.frame_id, frame.block, frame.pc);
                        let block_data = program.block(block);
                        if pc >= block_data.insts.len() {
                            match block_data.terminator {
                                Terminator::Jump(b) => {
                                    done += 1;
                                    frame.block = b;
                                    frame.pc = 0;
                                    if plan.is_none_or(InstrPlan::block_enter) {
                                        tracer.on_block_enter(tid, frame_id, b);
                                    } else if let Some(p) = plan {
                                        p.note(|e| &e.block_enters);
                                    }
                                    continue 'burst;
                                }
                                Terminator::Branch {
                                    cond,
                                    then_bb,
                                    else_bb,
                                } => {
                                    done += 1;
                                    let b = if Self::eval_in(frame, cond).truthy() {
                                        then_bb
                                    } else {
                                        else_bb
                                    };
                                    frame.block = b;
                                    frame.pc = 0;
                                    if plan.is_none_or(InstrPlan::block_enter) {
                                        tracer.on_block_enter(tid, frame_id, b);
                                    } else if let Some(p) = plan {
                                        p.note(|e| &e.block_enters);
                                    }
                                    continue 'burst;
                                }
                                Terminator::Return(op) => {
                                    // Thread exit (no caller): cold.
                                    if frame.ret_to.is_none() {
                                        cold = true;
                                        break 'frames;
                                    }
                                    done += 1;
                                    break 'burst BurstExit::Ret(op);
                                }
                            }
                        }
                        let inst_id = block_data.insts[pc].id;
                        let pmask = match plan {
                            None => hooks::ALL,
                            Some(p) => p.mask(inst_id),
                        };
                        macro_rules! compute_event {
                            () => {
                                if pmask & hooks::COMPUTE != 0 {
                                    tracer.on_compute(ctx(tid, frame_id, inst_id));
                                } else if let Some(p) = plan {
                                    p.note(|e| &e.computes);
                                }
                            };
                        }
                        match block_data.insts[pc].kind {
                            InstKind::Copy { dst, src } => {
                                done += 1;
                                let v = Self::eval_in(frame, src);
                                frame.regs[dst.index()] = v;
                                frame.pc += 1;
                                compute_event!();
                            }
                            InstKind::BinOp { dst, op, lhs, rhs } => {
                                done += 1;
                                let (a, b) = (Self::eval_in(frame, lhs), Self::eval_in(frame, rhs));
                                let v = match (a, b) {
                                    (Value::Int(x), Value::Int(y)) => Value::Int(op.eval(x, y)),
                                    _ => match op {
                                        oha_ir::BinOp::Cmp(CmpOp::Eq) => {
                                            Value::Int(i64::from(a == b))
                                        }
                                        oha_ir::BinOp::Cmp(CmpOp::Ne) => {
                                            Value::Int(i64::from(a != b))
                                        }
                                        _ => {
                                            fault = Some(RuntimeError::NotAnInt { inst: inst_id });
                                            break 'frames;
                                        }
                                    },
                                };
                                frame.regs[dst.index()] = v;
                                frame.pc += 1;
                                compute_event!();
                            }
                            InstKind::Alloc { dst, fields } => {
                                done += 1;
                                let obj = heap.alloc(fields, inst_id);
                                frame.regs[dst.index()] = Value::Ptr(Addr::new(obj, 0));
                                frame.pc += 1;
                                compute_event!();
                            }
                            InstKind::AddrGlobal { dst, global } => {
                                done += 1;
                                frame.regs[dst.index()] =
                                    Value::Ptr(Addr::new(ObjId(global.raw()), 0));
                                frame.pc += 1;
                                compute_event!();
                            }
                            InstKind::AddrFunc { dst, func } => {
                                done += 1;
                                frame.regs[dst.index()] = Value::Func(func);
                                frame.pc += 1;
                                compute_event!();
                            }
                            InstKind::Gep { dst, base, field } => {
                                done += 1;
                                let a = match Self::eval_in(frame, base) {
                                    Value::Ptr(a) => a,
                                    _ => {
                                        fault = Some(RuntimeError::NotAPointer { inst: inst_id });
                                        break 'frames;
                                    }
                                };
                                frame.regs[dst.index()] = Value::Ptr(a.offset(field));
                                frame.pc += 1;
                                compute_event!();
                            }
                            InstKind::Load { dst, addr, field } => {
                                done += 1;
                                let a = match Self::eval_in(frame, addr) {
                                    Value::Ptr(a) => a.offset(field),
                                    _ => {
                                        fault = Some(RuntimeError::NotAPointer { inst: inst_id });
                                        break 'frames;
                                    }
                                };
                                let v = match heap.load(a) {
                                    Some(v) => v,
                                    None => {
                                        fault = Some(RuntimeError::OutOfBounds {
                                            inst: inst_id,
                                            addr: a,
                                        });
                                        break 'frames;
                                    }
                                };
                                frame.regs[dst.index()] = v;
                                frame.pc += 1;
                                if pmask & hooks::LOAD != 0 {
                                    tracer.on_load(ctx(tid, frame_id, inst_id), a, v);
                                } else if let Some(p) = plan {
                                    p.note(|e| &e.loads);
                                }
                            }
                            InstKind::Store { addr, field, value } => {
                                done += 1;
                                let (av, v) =
                                    (Self::eval_in(frame, addr), Self::eval_in(frame, value));
                                let a = match av {
                                    Value::Ptr(a) => a.offset(field),
                                    _ => {
                                        fault = Some(RuntimeError::NotAPointer { inst: inst_id });
                                        break 'frames;
                                    }
                                };
                                if !heap.store(a, v) {
                                    fault = Some(RuntimeError::OutOfBounds {
                                        inst: inst_id,
                                        addr: a,
                                    });
                                    break 'frames;
                                }
                                frame.pc += 1;
                                if pmask & hooks::STORE != 0 {
                                    tracer.on_store(ctx(tid, frame_id, inst_id), a, v);
                                } else if let Some(p) = plan {
                                    p.note(|e| &e.stores);
                                }
                            }
                            InstKind::Input { dst } => {
                                done += 1;
                                let v = Value::Int(input.get(*input_pos).copied().unwrap_or(0));
                                *input_pos += 1;
                                frame.regs[dst.index()] = v;
                                frame.pc += 1;
                                if pmask & hooks::INPUT != 0 {
                                    tracer.on_input(ctx(tid, frame_id, inst_id), v);
                                } else if let Some(p) = plan {
                                    p.note(|e| &e.inputs);
                                }
                            }
                            InstKind::Output { value } => {
                                done += 1;
                                let v = Self::eval_in(frame, value);
                                frame.pc += 1;
                                outputs.push((inst_id, v));
                                if pmask & hooks::OUTPUT != 0 {
                                    tracer.on_output(ctx(tid, frame_id, inst_id), v);
                                } else if let Some(p) = plan {
                                    p.note(|e| &e.outputs);
                                }
                            }
                            InstKind::Call { dst, ref args, .. } => {
                                // Indirect (undecoded) call sites take
                                // the per-instruction path.
                                let Some(d) = decoded.calls[inst_id.index()] else {
                                    cold = true;
                                    break 'frames;
                                };
                                done += 1;
                                if !d.arity_ok {
                                    fault = Some(RuntimeError::BadArity { inst: inst_id });
                                    break 'frames;
                                }
                                let mut argv = argv_pool.pop().unwrap_or_default();
                                argv.extend(args.iter().map(|&a| Self::eval_in(frame, a)));
                                // Resume after the call on return.
                                frame.pc += 1;
                                break 'burst BurstExit::Call {
                                    dst,
                                    inst_id,
                                    caller_frame: frame_id,
                                    pmask,
                                    d,
                                    argv,
                                };
                            }
                            InstKind::Lock { .. }
                            | InstKind::Unlock { .. }
                            | InstKind::Spawn { .. }
                            | InstKind::Join { .. } => {
                                cold = true;
                                break 'frames;
                            }
                        }
                    };
                    match exit {
                        // Inline return: same pops, writes, event payload
                        // and register recycling as
                        // `step_terminator_fast`.
                        BurstExit::Ret(ret_op) => {
                            let mut popped =
                                thread.stack.pop().expect("running thread has a frame");
                            let value = ret_op.map(|o| Self::eval_in(&popped, o));
                            let (dst, call_inst) = popped.ret_to.expect("checked above");
                            let caller = thread.stack.last_mut().expect("caller frame exists");
                            let caller_frame = caller.frame_id;
                            if let (Some(d), Some(v)) = (dst, value) {
                                caller.regs[d.index()] = v;
                            }
                            let wants_call = match plan {
                                None => true,
                                Some(p) => p.mask(call_inst) & hooks::CALL != 0,
                            };
                            if wants_call {
                                tracer.on_return(
                                    tid,
                                    popped.frame_id,
                                    popped.func,
                                    value,
                                    ret_op,
                                    caller_frame,
                                    call_inst,
                                );
                            } else if let Some(p) = plan {
                                p.note(|e| &e.returns);
                            }
                            let mut regs = std::mem::take(&mut popped.regs);
                            regs.clear();
                            regs_pool.push(regs);
                        }
                        // Inline call: same frame construction, pool
                        // recycling and event payloads as `step_cold` +
                        // `make_frame_at`.
                        BurstExit::Call {
                            dst,
                            inst_id,
                            caller_frame,
                            pmask,
                            d,
                            argv,
                        } => {
                            let mut regs = regs_pool.pop().unwrap_or_default();
                            regs.clear();
                            regs.resize(d.num_regs as usize, Value::default());
                            regs[..argv.len()].copy_from_slice(&argv);
                            let mut spent = argv;
                            spent.clear();
                            argv_pool.push(spent);
                            let callee_frame = FrameId(*next_frame);
                            *next_frame += 1;
                            thread.stack.push(Frame {
                                func: d.func,
                                frame_id: callee_frame,
                                block: d.entry,
                                pc: 0,
                                regs,
                                ret_to: Some((dst, inst_id)),
                            });
                            if pmask & hooks::CALL != 0 {
                                tracer.on_call(
                                    ctx(tid, caller_frame, inst_id),
                                    d.func,
                                    callee_frame,
                                );
                            } else if let Some(p) = plan {
                                p.note(|e| &e.calls);
                            }
                            if plan.is_none_or(InstrPlan::block_enter) {
                                tracer.on_block_enter(tid, callee_frame, d.entry);
                            } else if let Some(p) = plan {
                                p.note(|e| &e.block_enters);
                            }
                        }
                    }
                }
            }
            self.steps += done;
            left -= done;
            if let Some(e) = fault {
                // `done` includes the faulting step, as in `step_fast`.
                return SlotOutcome::Fault(e);
            }
            if cold {
                // One cold instruction via the per-instruction path; the
                // budget arithmetic above guarantees steps < max_steps.
                match self.step_fast(tid, tracer) {
                    StepOutcome::Continue => left -= 1,
                    StepOutcome::Yield => return SlotOutcome::Done { yielded: true },
                    StepOutcome::Fault(e) => return SlotOutcome::Fault(e),
                }
            }
        }
        SlotOutcome::Done { yielded: false }
    }

    /// Tuned step loop, selected when the fast path is enabled. Same
    /// instruction semantics as [`Execution::step`], with the running
    /// frame resolved once per instruction instead of once per
    /// operand/register/pc access (the reference loop re-resolves it
    /// through `eval`/`set_reg`/`advance_pc`). Fault checks happen in the
    /// same order, events dispatch in the same order with identical
    /// payloads, and the scheduler is untouched, so executions are
    /// bit-for-bit identical across the two loops.
    fn step_fast<T: Tracer>(&mut self, tid: ThreadId, tracer: &mut T) -> StepOutcome {
        self.steps += 1;
        let ti = tid.index();
        let program: &'p Program = self.program;
        // One mutable frame resolution serves fetch and execute alike;
        // heap/input/output accesses below borrow disjoint fields.
        let frame = self.threads[ti]
            .stack
            .last_mut()
            .expect("running thread has a frame");
        let (frame_id, block, pc) = (frame.frame_id, frame.block, frame.pc);
        let block_data = program.block(block);

        if pc >= block_data.insts.len() {
            // Jump/Branch are the hot terminators (one per executed basic
            // block): handled inline on the frame already in hand. Return
            // and thread exit pop frames and go through the cold path.
            match block_data.terminator {
                Terminator::Jump(b) => {
                    frame.block = b;
                    frame.pc = 0;
                    self.block_enter_event(tracer, tid, frame_id, b);
                    return StepOutcome::Continue;
                }
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let b = if Self::eval_in(frame, cond).truthy() {
                        then_bb
                    } else {
                        else_bb
                    };
                    frame.block = b;
                    frame.pc = 0;
                    self.block_enter_event(tracer, tid, frame_id, b);
                    return StepOutcome::Continue;
                }
                Terminator::Return(_) => return self.step_terminator_fast(tid, block, tracer),
            }
        }

        let inst_id = block_data.insts[pc].id;
        let kind: &'p InstKind = &block_data.insts[pc].kind;
        let pmask = match self.plan {
            None => hooks::ALL,
            Some(p) => p.mask(inst_id),
        };

        match *kind {
            InstKind::Copy { dst, src } => {
                let v = Self::eval_in(frame, src);
                frame.regs[dst.index()] = v;
                frame.pc += 1;
                self.compute_event(tracer, pmask, tid, frame_id, inst_id);
            }
            InstKind::BinOp { dst, op, lhs, rhs } => {
                let (a, b) = (Self::eval_in(frame, lhs), Self::eval_in(frame, rhs));
                let v = match (a, b) {
                    (Value::Int(x), Value::Int(y)) => Value::Int(op.eval(x, y)),
                    _ => match op {
                        oha_ir::BinOp::Cmp(CmpOp::Eq) => Value::Int(i64::from(a == b)),
                        oha_ir::BinOp::Cmp(CmpOp::Ne) => Value::Int(i64::from(a != b)),
                        _ => return StepOutcome::Fault(RuntimeError::NotAnInt { inst: inst_id }),
                    },
                };
                frame.regs[dst.index()] = v;
                frame.pc += 1;
                self.compute_event(tracer, pmask, tid, frame_id, inst_id);
            }
            InstKind::Alloc { dst, fields } => {
                let obj = self.heap.alloc(fields, inst_id);
                frame.regs[dst.index()] = Value::Ptr(Addr::new(obj, 0));
                frame.pc += 1;
                self.compute_event(tracer, pmask, tid, frame_id, inst_id);
            }
            InstKind::AddrGlobal { dst, global } => {
                frame.regs[dst.index()] = Value::Ptr(Addr::new(ObjId(global.raw()), 0));
                frame.pc += 1;
                self.compute_event(tracer, pmask, tid, frame_id, inst_id);
            }
            InstKind::AddrFunc { dst, func } => {
                frame.regs[dst.index()] = Value::Func(func);
                frame.pc += 1;
                self.compute_event(tracer, pmask, tid, frame_id, inst_id);
            }
            InstKind::Gep { dst, base, field } => {
                let a = match Self::eval_in(frame, base) {
                    Value::Ptr(a) => a,
                    _ => return StepOutcome::Fault(RuntimeError::NotAPointer { inst: inst_id }),
                };
                frame.regs[dst.index()] = Value::Ptr(a.offset(field));
                frame.pc += 1;
                self.compute_event(tracer, pmask, tid, frame_id, inst_id);
            }
            InstKind::Load { dst, addr, field } => {
                let a = match Self::eval_in(frame, addr) {
                    Value::Ptr(a) => a.offset(field),
                    _ => return StepOutcome::Fault(RuntimeError::NotAPointer { inst: inst_id }),
                };
                let v = match self.heap.load(a) {
                    Some(v) => v,
                    None => {
                        return StepOutcome::Fault(RuntimeError::OutOfBounds {
                            inst: inst_id,
                            addr: a,
                        })
                    }
                };
                frame.regs[dst.index()] = v;
                frame.pc += 1;
                if pmask & hooks::LOAD != 0 {
                    tracer.on_load(ctx(tid, frame_id, inst_id), a, v);
                } else {
                    self.note_elided(|e| &e.loads);
                }
            }
            InstKind::Store { addr, field, value } => {
                let (av, v) = (Self::eval_in(frame, addr), Self::eval_in(frame, value));
                let a = match av {
                    Value::Ptr(a) => a.offset(field),
                    _ => return StepOutcome::Fault(RuntimeError::NotAPointer { inst: inst_id }),
                };
                if !self.heap.store(a, v) {
                    return StepOutcome::Fault(RuntimeError::OutOfBounds {
                        inst: inst_id,
                        addr: a,
                    });
                }
                frame.pc += 1;
                if pmask & hooks::STORE != 0 {
                    tracer.on_store(ctx(tid, frame_id, inst_id), a, v);
                } else {
                    self.note_elided(|e| &e.stores);
                }
            }
            InstKind::Input { dst } => {
                let v = Value::Int(self.input.get(self.input_pos).copied().unwrap_or(0));
                self.input_pos += 1;
                frame.regs[dst.index()] = v;
                frame.pc += 1;
                if pmask & hooks::INPUT != 0 {
                    tracer.on_input(ctx(tid, frame_id, inst_id), v);
                } else {
                    self.note_elided(|e| &e.inputs);
                }
            }
            InstKind::Output { value } => {
                let v = Self::eval_in(frame, value);
                frame.pc += 1;
                self.outputs.push((inst_id, v));
                if pmask & hooks::OUTPUT != 0 {
                    tracer.on_output(ctx(tid, frame_id, inst_id), v);
                } else {
                    self.note_elided(|e| &e.outputs);
                }
            }
            InstKind::Call { .. }
            | InstKind::Lock { .. }
            | InstKind::Unlock { .. }
            | InstKind::Spawn { .. }
            | InstKind::Join { .. } => {
                return self.step_cold(tid, tracer, frame_id, inst_id, kind, pmask)
            }
        }
        StepOutcome::Continue
    }

    fn resolve_callee(
        &self,
        tid: ThreadId,
        inst: InstId,
        callee: Callee,
    ) -> Result<FuncId, RuntimeError> {
        match callee {
            Callee::Direct(f) => Ok(f),
            Callee::Indirect(op) => match self.eval(tid, op) {
                Value::Func(f) => Ok(f),
                _ => Err(RuntimeError::NotAFunction { inst }),
            },
        }
    }

    fn step_terminator<T: Tracer>(
        &mut self,
        tid: ThreadId,
        frame_id: FrameId,
        block: BlockId,
        tracer: &mut T,
    ) -> StepOutcome {
        let program: &'p Program = self.program;
        let terminator = &program.block(block).terminator;
        match *terminator {
            Terminator::Jump(b) => {
                self.goto(tid, b);
                self.block_enter_event(tracer, tid, frame_id, b);
                StepOutcome::Continue
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let b = if self.eval(tid, cond).truthy() {
                    then_bb
                } else {
                    else_bb
                };
                self.goto(tid, b);
                self.block_enter_event(tracer, tid, frame_id, b);
                StepOutcome::Continue
            }
            Terminator::Return(op) => {
                let value = op.map(|o| self.eval(tid, o));
                let operand = op;
                let frame = self.threads[tid.index()]
                    .stack
                    .pop()
                    .expect("running thread has a frame");
                match frame.ret_to {
                    Some((dst, call_inst)) => {
                        let caller_frame = self.threads[tid.index()]
                            .stack
                            .last()
                            .expect("caller frame exists")
                            .frame_id;
                        if let (Some(d), Some(v)) = (dst, value) {
                            self.set_reg(tid, d, v);
                        }
                        // `on_return` is gated by the CALL bit of the
                        // call site the frame returns to (see plan.rs).
                        if self.wants(call_inst, hooks::CALL) {
                            tracer.on_return(
                                tid,
                                frame.frame_id,
                                frame.func,
                                value,
                                operand,
                                caller_frame,
                                call_inst,
                            );
                        } else {
                            self.note_elided(|e| &e.returns);
                        }
                        StepOutcome::Continue
                    }
                    None => {
                        // Thread entry frame: the thread is done.
                        self.threads[tid.index()].state = ThreadState::Done;
                        tracer.on_thread_exit(tid);
                        let waiters = std::mem::take(&mut self.threads[tid.index()].join_waiters);
                        for w in waiters {
                            if self.threads[w.index()].state == ThreadState::BlockedJoin(tid) {
                                self.threads[w.index()].state = ThreadState::Runnable;
                            }
                        }
                        StepOutcome::Yield
                    }
                }
            }
        }
    }

    fn goto(&mut self, tid: ThreadId, b: BlockId) {
        let frame = self.threads[tid.index()]
            .stack
            .last_mut()
            .expect("running thread has a frame");
        frame.block = b;
        frame.pc = 0;
    }

    /// Tuned terminator step used by [`Execution::step_fast`]: one frame
    /// resolution per jump/branch, and popped frames return their
    /// register storage to the pool. Same semantics, fault order and
    /// event order as [`Execution::step_terminator`].
    fn step_terminator_fast<T: Tracer>(
        &mut self,
        tid: ThreadId,
        block: BlockId,
        tracer: &mut T,
    ) -> StepOutcome {
        let program: &'p Program = self.program;
        let terminator = &program.block(block).terminator;
        let ti = tid.index();
        match *terminator {
            Terminator::Jump(_) | Terminator::Branch { .. } => {
                unreachable!("jump/branch terminators are handled inline by step_fast")
            }
            Terminator::Return(op) => {
                let mut frame = self.threads[ti]
                    .stack
                    .pop()
                    .expect("running thread has a frame");
                let value = op.map(|o| Self::eval_in(&frame, o));
                let operand = op;
                let out = match frame.ret_to {
                    Some((dst, call_inst)) => {
                        let caller = self.threads[ti]
                            .stack
                            .last_mut()
                            .expect("caller frame exists");
                        let caller_frame = caller.frame_id;
                        if let (Some(d), Some(v)) = (dst, value) {
                            caller.regs[d.index()] = v;
                        }
                        // `on_return` is gated by the CALL bit of the
                        // call site the frame returns to (see plan.rs).
                        if self.wants(call_inst, hooks::CALL) {
                            tracer.on_return(
                                tid,
                                frame.frame_id,
                                frame.func,
                                value,
                                operand,
                                caller_frame,
                                call_inst,
                            );
                        } else {
                            self.note_elided(|e| &e.returns);
                        }
                        StepOutcome::Continue
                    }
                    None => {
                        // Thread entry frame: the thread is done.
                        self.threads[ti].state = ThreadState::Done;
                        tracer.on_thread_exit(tid);
                        let waiters = std::mem::take(&mut self.threads[ti].join_waiters);
                        for w in waiters {
                            if self.threads[w.index()].state == ThreadState::BlockedJoin(tid) {
                                self.threads[w.index()].state = ThreadState::Runnable;
                            }
                        }
                        StepOutcome::Yield
                    }
                };
                let mut regs = std::mem::take(&mut frame.regs);
                regs.clear();
                self.regs_pool.push(regs);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::NoopTracer;
    use oha_ir::{BinOp, Operand, ProgramBuilder};
    use Operand::{Const, Reg as R};

    fn run(program: &Program, input: &[i64]) -> RunResult {
        Machine::new(program, MachineConfig::default()).run(input, &mut NoopTracer)
    }

    #[test]
    fn arithmetic_and_io() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        let a = f.input();
        let b = f.input();
        let s = f.bin(BinOp::Mul, R(a), R(b));
        f.output(R(s));
        f.ret(None);
        let main = pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        let r = run(&p, &[6, 7]);
        assert_eq!(r.status, Termination::Exited);
        assert_eq!(r.output_values(), vec![42]);
        assert_eq!(r.num_threads, 1);
    }

    #[test]
    fn exhausted_input_reads_zero() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        let a = f.input();
        f.output(R(a));
        f.ret(None);
        let main = pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        assert_eq!(run(&p, &[]).output_values(), vec![0]);
    }

    #[test]
    fn heap_programs_and_recursion() {
        // fib(n) via recursion with memory traffic.
        let mut pb = ProgramBuilder::new();
        let fib = pb.declare("fib", 1);
        let mut m = pb.function("main", 0);
        let n = m.input();
        let r = m.call(fib, vec![R(n)]);
        m.output(R(r));
        m.ret(None);
        let main = pb.finish_function(m);

        let mut f = pb.function("fib", 1);
        let n = f.param(0);
        let base = f.block();
        let rec = f.block();
        let c = f.cmp(oha_ir::CmpOp::Lt, R(n), Const(2));
        f.branch(R(c), base, rec);
        f.select(base);
        f.ret(Some(R(n)));
        f.select(rec);
        let n1 = f.bin(BinOp::Sub, R(n), Const(1));
        let n2 = f.bin(BinOp::Sub, R(n), Const(2));
        let a = f.call(fib, vec![R(n1)]);
        let b = f.call(fib, vec![R(n2)]);
        let s = f.bin(BinOp::Add, R(a), R(b));
        f.ret(Some(R(s)));
        pb.finish_function(f);

        let p = pb.finish(main).unwrap();
        assert_eq!(run(&p, &[10]).output_values(), vec![55]);
    }

    /// Two threads increment a shared counter under a lock; with mutual
    /// exclusion the final value is always 2 * iterations.
    fn counter_program(iterations: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("shared", 2); // field 0 = counter, field 1 = lock word
        let worker = pb.declare("worker", 1);

        let mut m = pb.function("main", 0);
        let t1 = m.spawn(worker, Const(iterations));
        let t2 = m.spawn(worker, Const(iterations));
        m.join(R(t1));
        m.join(R(t2));
        let ga = m.addr_global(g);
        let v = m.load(R(ga), 0);
        m.output(R(v));
        m.ret(None);
        let main = pb.finish_function(m);

        let mut w = pb.function("worker", 1);
        let iters = w.param(0);
        let head = w.block();
        let body = w.block();
        let exit = w.block();
        let ga = w.addr_global(g);
        let i = w.copy(Const(0));
        w.jump(head);
        w.select(head);
        let c = w.cmp(oha_ir::CmpOp::Lt, R(i), R(iters));
        w.branch(R(c), body, exit);
        w.select(body);
        w.lock(R(ga));
        let v = w.load(R(ga), 0);
        let v1 = w.bin(BinOp::Add, R(v), Const(1));
        w.store(R(ga), 0, R(v1));
        w.unlock(R(ga));
        let i1 = w.bin(BinOp::Add, R(i), Const(1));
        w.copy_to(i, R(i1));
        w.jump(head);
        w.select(exit);
        w.ret(None);
        pb.finish_function(w);
        pb.finish(main).unwrap()
    }

    #[test]
    fn locks_provide_mutual_exclusion() {
        let p = counter_program(200);
        for seed in 0..10 {
            let cfg = MachineConfig {
                seed,
                quantum: 3,
                ..MachineConfig::default()
            };
            let r = Machine::new(&p, cfg).run(&[], &mut NoopTracer);
            assert_eq!(r.status, Termination::Exited, "seed {seed}");
            assert_eq!(r.output_values(), vec![400], "seed {seed}");
            assert_eq!(r.num_threads, 3);
        }
    }

    /// The same program *without* the lock loses updates under some
    /// schedule — evidence the scheduler really interleaves.
    #[test]
    fn unlocked_counter_races() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("shared", 1);
        let worker = pb.declare("worker", 1);
        let mut m = pb.function("main", 0);
        let t1 = m.spawn(worker, Const(300));
        let t2 = m.spawn(worker, Const(300));
        m.join(R(t1));
        m.join(R(t2));
        let ga = m.addr_global(g);
        let v = m.load(R(ga), 0);
        m.output(R(v));
        m.ret(None);
        let main = pb.finish_function(m);
        let mut w = pb.function("worker", 1);
        let iters = w.param(0);
        let head = w.block();
        let body = w.block();
        let exit = w.block();
        let ga = w.addr_global(g);
        let i = w.copy(Const(0));
        w.jump(head);
        w.select(head);
        let c = w.cmp(oha_ir::CmpOp::Lt, R(i), R(iters));
        w.branch(R(c), body, exit);
        w.select(body);
        let v = w.load(R(ga), 0);
        let v1 = w.bin(BinOp::Add, R(v), Const(1));
        w.store(R(ga), 0, R(v1));
        let i1 = w.bin(BinOp::Add, R(i), Const(1));
        w.copy_to(i, R(i1));
        w.jump(head);
        w.select(exit);
        w.ret(None);
        pb.finish_function(w);
        let p = pb.finish(main).unwrap();

        let lost_updates = (0..10).any(|seed| {
            let cfg = MachineConfig {
                seed,
                quantum: 3,
                ..MachineConfig::default()
            };
            let r = Machine::new(&p, cfg).run(&[], &mut NoopTracer);
            r.output_values()[0] < 600
        });
        assert!(
            lost_updates,
            "expected at least one lost update across seeds"
        );
    }

    #[test]
    fn recorded_schedules_replay_exactly() {
        let p = counter_program(40);
        for seed in [3u64, 99] {
            let cfg = MachineConfig {
                seed,
                quantum: 4,
                ..MachineConfig::default()
            };
            let machine = Machine::new(&p, cfg);
            let (original, trace) = machine.run_recording(&[], &mut NoopTracer);
            assert!(!trace.is_empty());
            // Replay with a *different* seed in the config: the trace, not
            // the seed, dictates the interleaving.
            let other = MachineConfig {
                seed: seed ^ 0xffff,
                ..cfg
            };
            let replayed = Machine::new(&p, other).run_replay(&[], &trace, &mut NoopTracer);
            assert_eq!(original.steps, replayed.steps);
            assert_eq!(original.outputs, replayed.outputs);
            assert_eq!(original.status, replayed.status);
        }
    }

    #[test]
    fn recording_matches_plain_run() {
        let p = counter_program(25);
        let cfg = MachineConfig::default();
        let plain = Machine::new(&p, cfg).run(&[], &mut NoopTracer);
        let (recorded, _) = Machine::new(&p, cfg).run_recording(&[], &mut NoopTracer);
        assert_eq!(plain.outputs, recorded.outputs);
        assert_eq!(plain.steps, recorded.steps);
    }

    #[test]
    fn determinism_same_seed_same_run() {
        let p = counter_program(50);
        let cfg = MachineConfig {
            seed: 42,
            quantum: 5,
            ..MachineConfig::default()
        };
        let a = Machine::new(&p, cfg).run(&[], &mut NoopTracer);
        let b = Machine::new(&p, cfg).run(&[], &mut NoopTracer);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn deadlock_detected() {
        // main locks a then b; worker locks b then a; tight loop to force
        // the overlap under most schedules — run several seeds and require
        // at least one deadlock.
        let mut pb = ProgramBuilder::new();
        let ga = pb.global("a", 1);
        let gb = pb.global("b", 1);
        let worker = pb.declare("worker", 1);
        let mut m = pb.function("main", 0);
        let t = m.spawn(worker, Const(0));
        let a = m.addr_global(ga);
        let b = m.addr_global(gb);
        m.lock(R(a));
        m.lock(R(b));
        m.unlock(R(b));
        m.unlock(R(a));
        m.join(R(t));
        m.ret(None);
        let main = pb.finish_function(m);
        let mut w = pb.function("worker", 1);
        let a = w.addr_global(ga);
        let b = w.addr_global(gb);
        w.lock(R(b));
        w.lock(R(a));
        w.unlock(R(a));
        w.unlock(R(b));
        w.ret(None);
        pb.finish_function(w);
        let p = pb.finish(main).unwrap();

        let mut saw_deadlock = false;
        let mut saw_exit = false;
        for seed in 0..40 {
            let cfg = MachineConfig {
                seed,
                quantum: 1,
                ..MachineConfig::default()
            };
            match Machine::new(&p, cfg).run(&[], &mut NoopTracer).status {
                Termination::Deadlock => saw_deadlock = true,
                Termination::Exited => saw_exit = true,
                s => panic!("unexpected status {s:?}"),
            }
        }
        assert!(saw_deadlock, "no deadlock observed in 40 schedules");
        assert!(saw_exit, "no clean exit observed in 40 schedules");
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        let head = f.block();
        f.jump(head);
        f.select(head);
        f.jump(head);
        let main = pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        let cfg = MachineConfig {
            max_steps: 1000,
            ..MachineConfig::default()
        };
        let r = Machine::new(&p, cfg).run(&[], &mut NoopTracer);
        assert_eq!(r.status, Termination::StepLimit);
        assert!(r.steps >= 1000);
    }

    #[test]
    fn runtime_errors_reported() {
        // Unlock of a lock never taken.
        let mut pb = ProgramBuilder::new();
        let g = pb.global("g", 1);
        let mut f = pb.function("main", 0);
        let a = f.addr_global(g);
        f.unlock(R(a));
        f.ret(None);
        let main = pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        match run(&p, &[]).status {
            Termination::Error(RuntimeError::UnlockNotHeld { .. }) => {}
            s => panic!("unexpected status {s:?}"),
        }
    }

    #[test]
    fn indirect_calls_dispatch_at_runtime() {
        let mut pb = ProgramBuilder::new();
        let double = pb.declare("double", 1);
        let square = pb.declare("square", 1);
        let mut m = pb.function("main", 0);
        let sel = m.input();
        let fp = m.addr_func(double);
        let fp2 = m.addr_func(square);
        let then_b = m.block();
        let else_b = m.block();
        let call_b = m.block();
        let target = m.reg();
        m.branch(R(sel), then_b, else_b);
        m.select(then_b);
        m.copy_to(target, R(fp));
        m.jump(call_b);
        m.select(else_b);
        m.copy_to(target, R(fp2));
        m.jump(call_b);
        m.select(call_b);
        let r = m.call_indirect(R(target), vec![Const(5)]);
        m.output(R(r));
        m.ret(None);
        let main = pb.finish_function(m);
        let mut d = pb.function("double", 1);
        let x = d.bin(BinOp::Add, R(d.param(0)), R(d.param(0)));
        d.ret(Some(R(x)));
        pb.finish_function(d);
        let mut s = pb.function("square", 1);
        let x = s.bin(BinOp::Mul, R(s.param(0)), R(s.param(0)));
        s.ret(Some(R(x)));
        pb.finish_function(s);
        let p = pb.finish(main).unwrap();
        assert_eq!(run(&p, &[1]).output_values(), vec![10]);
        assert_eq!(run(&p, &[0]).output_values(), vec![25]);
    }

    #[test]
    fn tracer_sees_sync_events_in_order() {
        #[derive(Default)]
        struct Log(Vec<String>);
        impl Tracer for Log {
            fn on_lock(&mut self, ctx: EventCtx, _a: Addr) {
                self.0.push(format!("lock:{}", ctx.thread));
            }
            fn on_unlock(&mut self, ctx: EventCtx, _a: Addr) {
                self.0.push(format!("unlock:{}", ctx.thread));
            }
            fn on_spawn(&mut self, _ctx: EventCtx, child: ThreadId, _e: FuncId) {
                self.0.push(format!("spawn:{child}"));
            }
            fn on_join(&mut self, _ctx: EventCtx, child: ThreadId) {
                self.0.push(format!("join:{child}"));
            }
            fn on_thread_exit(&mut self, t: ThreadId) {
                self.0.push(format!("exit:{t}"));
            }
        }
        let p = counter_program(2);
        let mut log = Log::default();
        let r = Machine::new(&p, MachineConfig::default()).run(&[], &mut log);
        assert_eq!(r.status, Termination::Exited);
        // Lock/unlock strictly alternate because the lock is exclusive.
        let mut held = false;
        let mut lock_events = 0;
        for e in &log.0 {
            if e.starts_with("lock:") {
                assert!(!held, "lock acquired while held: {:?}", log.0);
                held = true;
                lock_events += 1;
            } else if e.starts_with("unlock:") {
                assert!(held, "unlock without lock");
                held = false;
            }
        }
        assert_eq!(lock_events, 4, "2 threads x 2 iterations");
        assert!(log.0.contains(&"spawn:t1".to_string()));
        assert!(log.0.contains(&"exit:t1".to_string()));
        assert!(log.0.contains(&"join:t2".to_string()));
    }

    #[test]
    fn frame_ids_distinguish_activations() {
        #[derive(Default)]
        struct Frames(Vec<u64>);
        impl Tracer for Frames {
            fn on_call(&mut self, _ctx: EventCtx, _f: FuncId, callee_frame: FrameId) {
                self.0.push(callee_frame.0);
            }
        }
        let mut pb = ProgramBuilder::new();
        let id = pb.declare("id", 1);
        let mut m = pb.function("main", 0);
        m.call_void(id, vec![Const(1)]);
        m.call_void(id, vec![Const(2)]);
        m.ret(None);
        let main = pb.finish_function(m);
        let mut f = pb.function("id", 1);
        f.ret(Some(R(f.param(0))));
        pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        let mut frames = Frames::default();
        Machine::new(&p, MachineConfig::default()).run(&[], &mut frames);
        assert_eq!(frames.0.len(), 2);
        assert_ne!(frames.0[0], frames.0[1]);
    }
}
