//! Instrumentation hooks.
//!
//! A [`Tracer`] observes an execution. The interpreter invokes hooks
//! synchronously, in execution order; per-thread event order matches the
//! thread's program order. Dynamic analyses, likely-invariant profilers and
//! invariant checkers are all tracers; [`MultiTracer`] composes two of them.

use oha_ir::{BlockId, FuncId, InstId};

use crate::value::{Addr, FrameId, ThreadId, Value};

/// Context common to instruction-level events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventCtx {
    /// The executing thread.
    pub thread: ThreadId,
    /// The activation (stack frame instance) executing the instruction.
    pub frame: FrameId,
    /// The instruction (instrumentation site).
    pub inst: InstId,
}

/// Observer of an execution. All hooks default to no-ops so tracers
/// implement only what they need.
#[allow(unused_variables)]
pub trait Tracer {
    /// A value was loaded from `addr`.
    fn on_load(&mut self, ctx: EventCtx, addr: Addr, value: Value) {}

    /// `value` was stored to `addr`.
    fn on_store(&mut self, ctx: EventCtx, addr: Addr, value: Value) {}

    /// The mutex identified by `addr` was acquired.
    fn on_lock(&mut self, ctx: EventCtx, addr: Addr) {}

    /// The mutex identified by `addr` is about to be released.
    fn on_unlock(&mut self, ctx: EventCtx, addr: Addr) {}

    /// A thread was spawned at this site (`ctx` is the parent's context).
    fn on_spawn(&mut self, ctx: EventCtx, child: ThreadId, entry: FuncId) {}

    /// A join on `child` completed (`ctx` is the joining thread's context).
    fn on_join(&mut self, ctx: EventCtx, child: ThreadId) {}

    /// A thread finished executing.
    fn on_thread_exit(&mut self, thread: ThreadId) {}

    /// Control entered a basic block.
    fn on_block_enter(&mut self, thread: ThreadId, frame: FrameId, block: BlockId) {}

    /// A call at `ctx.inst` resolved to `callee`; the callee executes in
    /// activation `callee_frame`. Fired for both direct and indirect calls.
    fn on_call(&mut self, ctx: EventCtx, callee: FuncId, callee_frame: FrameId) {}

    /// The activation `frame` of `func` returned `value` to the activation
    /// `caller_frame`, whose call site was `call_inst`. `operand` is the
    /// `return` terminator's operand (so tracers can resolve which register
    /// carried the value).
    #[allow(clippy::too_many_arguments)]
    fn on_return(
        &mut self,
        thread: ThreadId,
        frame: FrameId,
        func: FuncId,
        value: Option<Value>,
        operand: Option<oha_ir::Operand>,
        caller_frame: FrameId,
        call_inst: InstId,
    ) {
    }

    /// An input value was consumed.
    fn on_input(&mut self, ctx: EventCtx, value: Value) {}

    /// An output value was produced.
    fn on_output(&mut self, ctx: EventCtx, value: Value) {}

    /// A register-only instruction (copy, binop, alloc, address-of, gep)
    /// executed. Only the dynamic slicer needs this firehose; other tracers
    /// leave it as a no-op.
    fn on_compute(&mut self, ctx: EventCtx) {}
}

/// A tracer that observes nothing. Running under `NoopTracer` measures the
/// baseline (framework-only) execution cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {}

/// Composes two tracers; `first` sees every event before `second`.
///
/// # Examples
///
/// ```
/// use oha_interp::{MultiTracer, NoopTracer};
/// let mut t = MultiTracer::new(NoopTracer, NoopTracer);
/// # let _ = &mut t;
/// ```
#[derive(Debug)]
pub struct MultiTracer<A, B> {
    /// The tracer that receives each event first.
    pub first: A,
    /// The tracer that receives each event second.
    pub second: B,
}

impl<A: Tracer, B: Tracer> MultiTracer<A, B> {
    /// Composes `first` and `second`.
    pub fn new(first: A, second: B) -> Self {
        Self { first, second }
    }
}

macro_rules! forward_both {
    ($self:ident, $method:ident($($arg:expr),*)) => {{
        $self.first.$method($($arg),*);
        $self.second.$method($($arg),*);
    }};
}

impl<A: Tracer, B: Tracer> Tracer for MultiTracer<A, B> {
    fn on_load(&mut self, ctx: EventCtx, addr: Addr, value: Value) {
        forward_both!(self, on_load(ctx, addr, value));
    }
    fn on_store(&mut self, ctx: EventCtx, addr: Addr, value: Value) {
        forward_both!(self, on_store(ctx, addr, value));
    }
    fn on_lock(&mut self, ctx: EventCtx, addr: Addr) {
        forward_both!(self, on_lock(ctx, addr));
    }
    fn on_unlock(&mut self, ctx: EventCtx, addr: Addr) {
        forward_both!(self, on_unlock(ctx, addr));
    }
    fn on_spawn(&mut self, ctx: EventCtx, child: ThreadId, entry: FuncId) {
        forward_both!(self, on_spawn(ctx, child, entry));
    }
    fn on_join(&mut self, ctx: EventCtx, child: ThreadId) {
        forward_both!(self, on_join(ctx, child));
    }
    fn on_thread_exit(&mut self, thread: ThreadId) {
        forward_both!(self, on_thread_exit(thread));
    }
    fn on_block_enter(&mut self, thread: ThreadId, frame: FrameId, block: BlockId) {
        forward_both!(self, on_block_enter(thread, frame, block));
    }
    fn on_call(&mut self, ctx: EventCtx, callee: FuncId, callee_frame: FrameId) {
        forward_both!(self, on_call(ctx, callee, callee_frame));
    }
    fn on_return(
        &mut self,
        thread: ThreadId,
        frame: FrameId,
        func: FuncId,
        value: Option<Value>,
        operand: Option<oha_ir::Operand>,
        caller_frame: FrameId,
        call_inst: InstId,
    ) {
        forward_both!(
            self,
            on_return(thread, frame, func, value, operand, caller_frame, call_inst)
        );
    }
    fn on_input(&mut self, ctx: EventCtx, value: Value) {
        forward_both!(self, on_input(ctx, value));
    }
    fn on_output(&mut self, ctx: EventCtx, value: Value) {
        forward_both!(self, on_output(ctx, value));
    }
    fn on_compute(&mut self, ctx: EventCtx) {
        forward_both!(self, on_compute(ctx));
    }
}

/// Internal adapter: forwards every hook to `inner` while bumping the
/// machine's [`HookCounters`](crate::machine::HookCounters). Wrapping the
/// user tracer here (instead of instrumenting each dispatch site in the
/// interpreter loop) guarantees the counters equal the dispatch counts.
pub(crate) struct CountingTracer<'a, T> {
    pub(crate) inner: &'a mut T,
    pub(crate) counters: std::rc::Rc<crate::machine::HookCounters>,
}

impl<T: Tracer> Tracer for CountingTracer<'_, T> {
    fn on_load(&mut self, ctx: EventCtx, addr: Addr, value: Value) {
        self.counters.load.inc();
        self.inner.on_load(ctx, addr, value);
    }
    fn on_store(&mut self, ctx: EventCtx, addr: Addr, value: Value) {
        self.counters.store.inc();
        self.inner.on_store(ctx, addr, value);
    }
    fn on_lock(&mut self, ctx: EventCtx, addr: Addr) {
        self.counters.lock.inc();
        self.inner.on_lock(ctx, addr);
    }
    fn on_unlock(&mut self, ctx: EventCtx, addr: Addr) {
        self.counters.unlock.inc();
        self.inner.on_unlock(ctx, addr);
    }
    fn on_spawn(&mut self, ctx: EventCtx, child: ThreadId, entry: FuncId) {
        self.counters.spawn.inc();
        self.inner.on_spawn(ctx, child, entry);
    }
    fn on_join(&mut self, ctx: EventCtx, child: ThreadId) {
        self.counters.join.inc();
        self.inner.on_join(ctx, child);
    }
    fn on_thread_exit(&mut self, thread: ThreadId) {
        self.counters.thread_exit.inc();
        self.inner.on_thread_exit(thread);
    }
    fn on_block_enter(&mut self, thread: ThreadId, frame: FrameId, block: BlockId) {
        self.counters.block_enter.inc();
        self.inner.on_block_enter(thread, frame, block);
    }
    fn on_call(&mut self, ctx: EventCtx, callee: FuncId, callee_frame: FrameId) {
        self.counters.call.inc();
        self.inner.on_call(ctx, callee, callee_frame);
    }
    fn on_return(
        &mut self,
        thread: ThreadId,
        frame: FrameId,
        func: FuncId,
        value: Option<Value>,
        operand: Option<oha_ir::Operand>,
        caller_frame: FrameId,
        call_inst: InstId,
    ) {
        self.counters.ret.inc();
        self.inner
            .on_return(thread, frame, func, value, operand, caller_frame, call_inst);
    }
    fn on_input(&mut self, ctx: EventCtx, value: Value) {
        self.counters.input.inc();
        self.inner.on_input(ctx, value);
    }
    fn on_output(&mut self, ctx: EventCtx, value: Value) {
        self.counters.output.inc();
        self.inner.on_output(ctx, value);
    }
    fn on_compute(&mut self, ctx: EventCtx) {
        self.counters.compute.inc();
        self.inner.on_compute(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        loads: usize,
    }

    impl Tracer for Counter {
        fn on_load(&mut self, _ctx: EventCtx, _addr: Addr, _value: Value) {
            self.loads += 1;
        }
    }

    #[test]
    fn multi_tracer_forwards_to_both() {
        let mut t = MultiTracer::new(Counter::default(), Counter::default());
        let ctx = EventCtx {
            thread: ThreadId::MAIN,
            frame: FrameId(0),
            inst: InstId::new(0),
        };
        t.on_load(ctx, Addr::default(), Value::Int(1));
        t.on_store(ctx, Addr::default(), Value::Int(1));
        assert_eq!(t.first.loads, 1);
        assert_eq!(t.second.loads, 1);
    }
}
