//! Compiled instrumentation plans for the step loop.
//!
//! A dynamic analysis declares up front which tracer hooks it needs at
//! which instruction sites (its *elision sets*: FastTrack's instrument
//! `BitSet` and elided-lock set, Giri's trace filter, the invariant
//! checker's watch sets). An [`InstrPlan`] compiles that declaration
//! into a dense `Vec<u8>` of hook-bit masks indexed by [`InstId`], so
//! inside the step loop each event site costs one array load and one
//! branch, and a fully elided site skips `EventCtx` construction and
//! tracer dispatch entirely.
//!
//! Two event classes are not per-instruction masked:
//!
//! * `on_block_enter` fires at block transitions (terminators), not
//!   instructions; it is gated by a plan-level flag.
//! * `on_spawn` / `on_join` / `on_thread_exit` are rare sync-skeleton
//!   events and are always dispatched.
//!
//! `on_return` fires at `Return` terminators, which have no [`InstId`];
//! it is gated by the [`hooks::CALL`] bit of the *call site* the frame
//! returns to. That is safe because every consumer (Giri's def-use
//! linking, the checker's context stack) needs return events exactly
//! when it needs the matching call events.
//!
//! **Elided events stay counted.** When the machine skips a dispatch it
//! tallies the skip in the plan's per-kind cells (one 8-byte RMW); at
//! end of run the machine flushes the tallies into its hook counters in
//! bulk, and the owning tool absorbs the same [`PlanElisions`] into its
//! own elision counters. That keeps the elision identity from
//! `tests/observability.rs` (hook dispatches = elided + executed)
//! balanced to the event, with or without a plan.

use std::cell::Cell;

use oha_ir::InstId;

/// Per-instruction hook bits. A set bit means "dispatch this hook at
/// this site"; a clear bit means "skip it (counted)".
pub mod hooks {
    /// `on_load`.
    pub const LOAD: u8 = 1 << 0;
    /// `on_store`.
    pub const STORE: u8 = 1 << 1;
    /// `on_lock`.
    pub const LOCK: u8 = 1 << 2;
    /// `on_unlock`.
    pub const UNLOCK: u8 = 1 << 3;
    /// `on_compute`.
    pub const COMPUTE: u8 = 1 << 4;
    /// `on_call`, and `on_return` for frames created at this call site.
    pub const CALL: u8 = 1 << 5;
    /// `on_input`.
    pub const INPUT: u8 = 1 << 6;
    /// `on_output`.
    pub const OUTPUT: u8 = 1 << 7;
    /// Every hook bit.
    pub const ALL: u8 = 0xff;
}

/// Tally of plan-elided (skipped but counted) dispatches from one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanElisions {
    /// Skipped `on_load` dispatches.
    pub loads: u64,
    /// Skipped `on_store` dispatches.
    pub stores: u64,
    /// Skipped `on_lock` dispatches.
    pub locks: u64,
    /// Skipped `on_unlock` dispatches.
    pub unlocks: u64,
    /// Skipped `on_compute` dispatches.
    pub computes: u64,
    /// Skipped `on_call` dispatches.
    pub calls: u64,
    /// Skipped `on_return` dispatches.
    pub returns: u64,
    /// Skipped `on_input` dispatches.
    pub inputs: u64,
    /// Skipped `on_output` dispatches.
    pub outputs: u64,
    /// Skipped `on_block_enter` dispatches.
    pub block_enters: u64,
}

impl PlanElisions {
    /// Skipped memory-access dispatches (loads + stores).
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// Skipped lock-operation dispatches (locks + unlocks).
    pub fn lock_ops(&self) -> u64 {
        self.locks + self.unlocks
    }

    /// Skipped dispatches of the hooks Giri traces through its filter
    /// (load, store, compute, input, output).
    pub fn traceable(&self) -> u64 {
        self.loads + self.stores + self.computes + self.inputs + self.outputs
    }
}

/// Per-kind elision tallies as individual cells, so the step loop's
/// skip path costs one 8-byte read-modify-write (a whole-struct
/// `Cell<PlanElisions>` would make every skip a 80-byte copy in and
/// out — measurably slower than just dispatching on compute-heavy
/// workloads).
#[derive(Clone, Debug, Default)]
pub(crate) struct ElisionCells {
    pub(crate) loads: Cell<u64>,
    pub(crate) stores: Cell<u64>,
    pub(crate) locks: Cell<u64>,
    pub(crate) unlocks: Cell<u64>,
    pub(crate) computes: Cell<u64>,
    pub(crate) calls: Cell<u64>,
    pub(crate) returns: Cell<u64>,
    pub(crate) inputs: Cell<u64>,
    pub(crate) outputs: Cell<u64>,
    pub(crate) block_enters: Cell<u64>,
}

/// A compiled instrumentation plan: per-instruction hook masks plus the
/// block-enter flag, with the elision tally for the current run.
#[derive(Clone, Debug)]
pub struct InstrPlan {
    mask: Vec<u8>,
    block_enter: bool,
    elided: ElisionCells,
}

impl InstrPlan {
    /// A plan that dispatches nothing (every event elided-but-counted).
    /// The right plan for an uninstrumented baseline run.
    pub fn none(num_insts: usize) -> Self {
        Self {
            mask: vec![0; num_insts],
            block_enter: false,
            elided: ElisionCells::default(),
        }
    }

    /// A plan that dispatches everything — behaviourally identical to
    /// running without a plan.
    pub fn all(num_insts: usize) -> Self {
        Self {
            mask: vec![hooks::ALL; num_insts],
            block_enter: true,
            elided: ElisionCells::default(),
        }
    }

    /// Ors `bits` into the mask of `inst`.
    pub fn require(&mut self, inst: InstId, bits: u8) {
        self.mask[inst.index()] |= bits;
    }

    /// Enables `on_block_enter` dispatch.
    pub fn require_block_enter(&mut self) {
        self.block_enter = true;
    }

    /// Whether `on_block_enter` is dispatched.
    #[inline]
    pub fn block_enter(&self) -> bool {
        self.block_enter
    }

    /// The hook mask of `inst`: one array load.
    #[inline]
    pub fn mask(&self, inst: InstId) -> u8 {
        self.mask[inst.index()]
    }

    /// Unions another plan's requirements into this one (for composite
    /// tracers: a `MultiTracer` needs the union of its parts' plans).
    pub fn union_with(&mut self, other: &InstrPlan) {
        assert_eq!(self.mask.len(), other.mask.len(), "plans for one program");
        for (m, &o) in self.mask.iter_mut().zip(other.mask.iter()) {
            *m |= o;
        }
        self.block_enter |= other.block_enter;
    }

    /// Drains the elision tally accumulated since the last call; the
    /// owning tool adds it to its own elision counters after each run.
    pub fn take_elisions(&self) -> PlanElisions {
        PlanElisions {
            loads: self.elided.loads.take(),
            stores: self.elided.stores.take(),
            locks: self.elided.locks.take(),
            unlocks: self.elided.unlocks.take(),
            computes: self.elided.computes.take(),
            calls: self.elided.calls.take(),
            returns: self.elided.returns.take(),
            inputs: self.elided.inputs.take(),
            outputs: self.elided.outputs.take(),
            block_enters: self.elided.block_enters.take(),
        }
    }

    /// Reads the tally without draining it (machine-internal: the bulk
    /// hook-counter flush at end of run must leave the tally for the
    /// owning tool's `take_elisions`).
    #[inline]
    pub(crate) fn peek_elisions(&self) -> PlanElisions {
        PlanElisions {
            loads: self.elided.loads.get(),
            stores: self.elided.stores.get(),
            locks: self.elided.locks.get(),
            unlocks: self.elided.unlocks.get(),
            computes: self.elided.computes.get(),
            calls: self.elided.calls.get(),
            returns: self.elided.returns.get(),
            inputs: self.elided.inputs.get(),
            outputs: self.elided.outputs.get(),
            block_enters: self.elided.block_enters.get(),
        }
    }

    /// Records one skipped dispatch (machine-internal): one 8-byte RMW
    /// on the cell `select` picks.
    #[inline]
    pub(crate) fn note(&self, select: impl FnOnce(&ElisionCells) -> &Cell<u64>) {
        let cell = select(&self.elided);
        cell.set(cell.get() + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_union_and_tally() {
        let mut a = InstrPlan::none(3);
        a.require(InstId::new(1), hooks::LOAD | hooks::STORE);
        let mut b = InstrPlan::none(3);
        b.require(InstId::new(1), hooks::LOCK);
        b.require(InstId::new(2), hooks::CALL);
        b.require_block_enter();
        a.union_with(&b);
        assert_eq!(a.mask(InstId::new(0)), 0);
        assert_eq!(
            a.mask(InstId::new(1)),
            hooks::LOAD | hooks::STORE | hooks::LOCK
        );
        assert_eq!(a.mask(InstId::new(2)), hooks::CALL);
        assert!(a.block_enter());

        a.note(|e| &e.loads);
        a.note(|e| &e.loads);
        a.note(|e| &e.locks);
        let e = a.take_elisions();
        assert_eq!((e.loads, e.locks), (2, 1));
        assert_eq!(e.accesses(), 2);
        assert_eq!(a.take_elisions(), PlanElisions::default());
    }

    #[test]
    fn all_plan_dispatches_everything() {
        let p = InstrPlan::all(2);
        assert_eq!(p.mask(InstId::new(0)), hooks::ALL);
        assert!(p.block_enter());
    }
}
