//! A deterministic multithreaded interpreter for the OHA IR.
//!
//! This crate stands in for the paper's execution and instrumentation
//! substrate (RoadRunner for Java, LLVM-inserted instrumentation for C).
//! Key properties:
//!
//! * **Simulated threads.** Threads are green threads interleaved at
//!   instruction granularity by a seeded scheduler. Given the same program,
//!   input and seed, an execution is bit-for-bit reproducible — this is the
//!   record/replay property the paper relies on for speculation rollback
//!   ("restarting a deterministic replay … is trivial", §2.3).
//! * **Instrumentation hooks.** A [`Tracer`] receives callbacks for loads,
//!   stores, lock operations, thread lifecycle events, calls, block entries
//!   and I/O. Dynamic analyses (FastTrack, Giri), profilers and invariant
//!   checkers are all tracers.
//! * **Honest cost accounting.** The interpreter reports executed step
//!   counts and the harness measures real wall-clock time, so "eliding
//!   instrumentation" (not doing analysis work for a site) translates into
//!   measurable speedup exactly as in the paper.
//!
//! # Examples
//!
//! ```
//! use oha_ir::{Operand, ProgramBuilder};
//! use oha_interp::{Machine, MachineConfig, NoopTracer, Termination};
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("main", 0);
//! let x = f.input();
//! f.output(Operand::Reg(x));
//! f.ret(None);
//! let main = pb.finish_function(f);
//! let program = pb.finish(main).unwrap();
//!
//! let machine = Machine::new(&program, MachineConfig::default());
//! let result = machine.run(&[41], &mut NoopTracer);
//! assert_eq!(result.status, Termination::Exited);
//! assert_eq!(result.output_values(), vec![41]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fastpath;
mod heap;
mod machine;
mod plan;
mod shadow;
mod tracer;
mod value;

pub use heap::Heap;
pub use machine::{
    HookCounters, Machine, MachineConfig, RunResult, RuntimeError, ScheduleTrace, Termination,
};
pub use plan::{hooks, InstrPlan, PlanElisions};
pub use shadow::ShadowMap;
pub use tracer::{EventCtx, MultiTracer, NoopTracer, Tracer};
pub use value::{Addr, FrameId, ObjId, ThreadId, Value};
