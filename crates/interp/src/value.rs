//! Runtime values, addresses and thread/frame identifiers.

use std::fmt;

use oha_ir::FuncId;

/// Identifier of a runtime object (global or heap-allocated).
///
/// Globals occupy object ids `0..num_globals`; heap objects are numbered
/// upwards from there in allocation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ObjId(pub u32);

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// A memory address: an object plus a field offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr {
    /// The object.
    pub obj: ObjId,
    /// The field within the object.
    pub field: u32,
}

impl Addr {
    /// Creates an address.
    pub fn new(obj: ObjId, field: u32) -> Self {
        Self { obj, field }
    }

    /// Returns this address shifted by `field` more fields.
    pub fn offset(self, field: u32) -> Self {
        Self {
            obj: self.obj,
            field: self.field + field,
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.obj, self.field)
    }
}

/// Identifier of a simulated thread; the main thread is `ThreadId(0)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The main thread.
    pub const MAIN: ThreadId = ThreadId(0);

    /// The dense index of this thread id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of a function activation (stack frame instance), unique across
/// the whole execution. Used by the dynamic slicer to distinguish registers
/// of different activations of the same function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FrameId(pub u64);

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fr{}", self.0)
    }
}

/// A runtime value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Value {
    /// A 64-bit integer.
    Int(i64),
    /// A pointer to an object field.
    Ptr(Addr),
    /// A function pointer.
    Func(FuncId),
    /// A thread handle.
    Thread(ThreadId),
}

impl Default for Value {
    fn default() -> Self {
        Value::Int(0)
    }
}

impl Value {
    /// Nonzero integers and all non-integer values are truthy.
    pub fn truthy(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            _ => true,
        }
    }

    /// A lossy integer rendering used for program outputs: integers map to
    /// themselves, pointers to their object id, function pointers and
    /// thread handles to their raw index.
    pub fn to_i64_lossy(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Ptr(a) => i64::from(a.obj.0),
            Value::Func(f) => i64::from(f.raw()),
            Value::Thread(t) => i64::from(t.0),
        }
    }

    /// Returns the integer if this is an [`Value::Int`].
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the address if this is a [`Value::Ptr`].
    pub fn as_ptr(self) -> Option<Addr> {
        match self {
            Value::Ptr(a) => Some(a),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Ptr(a) => write!(f, "&{a}"),
            Value::Func(func) => write!(f, "{func}"),
            Value::Thread(t) => write!(f, "{t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(-1).truthy());
        assert!(Value::Ptr(Addr::default()).truthy());
        assert!(Value::Func(FuncId::new(0)).truthy());
    }

    #[test]
    fn addr_offset_accumulates() {
        let a = Addr::new(ObjId(3), 1).offset(2);
        assert_eq!(a, Addr::new(ObjId(3), 3));
        assert_eq!(a.to_string(), "o3.3");
    }

    #[test]
    fn lossy_conversion() {
        assert_eq!(Value::Int(-7).to_i64_lossy(), -7);
        assert_eq!(Value::Ptr(Addr::new(ObjId(9), 5)).to_i64_lossy(), 9);
        assert_eq!(Value::Thread(ThreadId(2)).to_i64_lossy(), 2);
    }

    #[test]
    fn default_value_is_zero() {
        assert_eq!(Value::default(), Value::Int(0));
        assert_eq!(Value::default().as_int(), Some(0));
        assert_eq!(Value::default().as_ptr(), None);
    }
}
