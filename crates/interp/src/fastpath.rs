//! Process-wide toggle between the dynamic-phase fast path and the
//! reference path.
//!
//! The fast path is two orthogonal mechanisms that must produce
//! byte-identical results to the originals they replace:
//!
//! * **Instrumentation plans** ([`crate::InstrPlan`]): compiled hook
//!   masks that let the step loop skip tracer dispatch at fully elided
//!   sites.
//! * **Dense shadow memory** ([`crate::ShadowMap`]): addr-indexed flat
//!   arrays replacing per-event hash-map probes.
//!
//! The reference path — spill-map-only shadow memory and no plans — is
//! the pre-optimization behaviour, kept selectable at run time so one
//! binary can measure both (`bench_dynamic`) and the equivalence suite
//! (`tests/dynamic_equivalence.rs`) can compare them side by side.
//!
//! Selection order: an explicit [`force`] override wins; otherwise the
//! `OHA_DYN_REFERENCE` environment variable (any non-empty value other
//! than `0` selects the reference path); otherwise the fast path.

use std::sync::atomic::{AtomicU8, Ordering};

/// Environment variable selecting the reference path when set to a
/// non-empty value other than `0`.
pub const REFERENCE_ENV: &str = "OHA_DYN_REFERENCE";

const UNSET: u8 = 0;
const FORCED_ON: u8 = 1;
const FORCED_OFF: u8 = 2;

static OVERRIDE: AtomicU8 = AtomicU8::new(UNSET);

/// Whether the dynamic-phase fast path is enabled.
///
/// Consulted at *construction* points (shadow-map layout selection, plan
/// compilation), never per event, so the cost of the environment probe
/// is off the hot path.
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        FORCED_ON => true,
        FORCED_OFF => false,
        _ => match std::env::var(REFERENCE_ENV) {
            Ok(v) => {
                let v = v.trim();
                v.is_empty() || v == "0"
            }
            Err(_) => true,
        },
    }
}

/// Overrides the fast-path selection for the whole process: `Some(true)`
/// forces it on, `Some(false)` forces the reference path, `None` returns
/// to the environment default. Used by the benchmark harness and the
/// equivalence tests to measure both configurations in one binary.
pub fn force(on: Option<bool>) {
    let v = match on {
        None => UNSET,
        Some(true) => FORCED_ON,
        Some(false) => FORCED_OFF,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_overrides_and_resets() {
        // Note: other tests in this binary do not touch the override, so
        // exercising it here is safe.
        force(Some(false));
        assert!(!enabled());
        force(Some(true));
        assert!(enabled());
        force(None);
        let _ = enabled(); // env-dependent; just must not panic
    }
}
