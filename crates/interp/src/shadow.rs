//! Dense addr-indexed shadow memory with a spill fallback.
//!
//! Dynamic analyses keep per-address metadata: FastTrack's variable and
//! lock states, Giri's last-store event index, the interpreter's own
//! mutex table. Address-keyed `HashMap`s pay a hash and a probe on every
//! event; but the interpreter's [`Addr`] space is *dense by
//! construction* — object ids count up from zero (globals first, heap
//! allocations in order) and field offsets are small — so shadow state
//! can live in flat arrays indexed directly by `(obj, field)`.
//!
//! [`ShadowMap`] stores one lazily-grown row of values per object
//! ("pages" keyed off the `Addr` layout) and falls back to a spill
//! `HashMap` for addresses outside the dense window (huge object ids or
//! field offsets, which only adversarial programs produce). A map
//! constructed in *spill-only* mode is exactly the pre-optimization
//! representation; the equivalence suite runs both modes side by side.
//!
//! The map has value semantics: every address implicitly holds `empty`
//! until written, and no operation observes whether a slot was
//! materialized, so dense and spill-only layouts are indistinguishable
//! to callers. There is deliberately no iteration — iteration order
//! would differ between layouts.

use std::collections::HashMap;

use crate::value::Addr;

/// Object ids at or above this spill to the fallback map.
const MAX_DENSE_OBJECTS: usize = 1 << 20;
/// Field offsets at or above this spill to the fallback map.
const MAX_DENSE_FIELDS: usize = 1 << 12;

/// Dense addr-indexed shadow memory (see the module docs).
#[derive(Clone, Debug)]
pub struct ShadowMap<V> {
    /// The implicit value of every never-written address.
    empty: V,
    /// Whether the dense rows are in use (fast path) or everything goes
    /// through `spill` (reference path).
    dense: bool,
    /// Per-object value rows, indexed by `Addr::obj` then `Addr::field`.
    rows: Vec<Vec<V>>,
    /// Fallback for addresses outside the dense window — and the entire
    /// store in spill-only mode.
    spill: HashMap<Addr, V>,
}

impl<V: Clone> ShadowMap<V> {
    /// A shadow map whose layout follows the process-wide
    /// [`fastpath`](crate::fastpath) toggle.
    pub fn new(empty: V) -> Self {
        Self::with_layout(empty, crate::fastpath::enabled())
    }

    /// A shadow map that keeps everything in the spill `HashMap` — the
    /// reference representation the fast path is checked against.
    pub fn spill_only(empty: V) -> Self {
        Self::with_layout(empty, false)
    }

    /// A shadow map with an explicit layout choice.
    pub fn with_layout(empty: V, dense: bool) -> Self {
        Self {
            empty,
            dense,
            rows: Vec::new(),
            spill: HashMap::new(),
        }
    }

    #[inline]
    fn in_dense_window(&self, a: Addr) -> bool {
        self.dense
            && (a.obj.0 as usize) < MAX_DENSE_OBJECTS
            && (a.field as usize) < MAX_DENSE_FIELDS
    }

    /// The value at `a` (`empty` if never written). Never allocates.
    #[inline]
    pub fn get(&self, a: Addr) -> &V {
        if self.in_dense_window(a) {
            self.rows
                .get(a.obj.0 as usize)
                .and_then(|row| row.get(a.field as usize))
                .unwrap_or(&self.empty)
        } else {
            self.spill.get(&a).unwrap_or(&self.empty)
        }
    }

    /// A mutable reference to the value at `a`, materializing `empty`
    /// slots on demand.
    #[inline]
    pub fn get_mut(&mut self, a: Addr) -> &mut V {
        if self.in_dense_window(a) {
            let obj = a.obj.0 as usize;
            if self.rows.len() <= obj {
                self.rows.resize_with(obj + 1, Vec::new);
            }
            let row = &mut self.rows[obj];
            let field = a.field as usize;
            if row.len() <= field {
                row.resize(field + 1, self.empty.clone());
            }
            &mut row[field]
        } else {
            let empty = &self.empty;
            self.spill.entry(a).or_insert_with(|| empty.clone())
        }
    }

    /// Replaces the value at `a`.
    #[inline]
    pub fn insert(&mut self, a: Addr, v: V) {
        *self.get_mut(a) = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ObjId;

    fn addr(obj: u32, field: u32) -> Addr {
        Addr::new(ObjId(obj), field)
    }

    #[test]
    fn dense_and_spill_layouts_agree() {
        let probes = [
            addr(0, 0),
            addr(3, 7),
            addr(3, 8),
            addr(0x7fff_ffff, 5), // beyond the dense object window
            addr(2, (MAX_DENSE_FIELDS + 9) as u32), // beyond the dense field window
        ];
        let mut dense = ShadowMap::with_layout(0u32, true);
        let mut spill = ShadowMap::spill_only(0u32);
        for (i, &a) in probes.iter().enumerate() {
            assert_eq!(*dense.get(a), 0);
            assert_eq!(*spill.get(a), 0);
            dense.insert(a, i as u32 + 1);
            spill.insert(a, i as u32 + 1);
        }
        for (i, &a) in probes.iter().enumerate() {
            assert_eq!(*dense.get(a), i as u32 + 1);
            assert_eq!(*spill.get(a), i as u32 + 1);
            assert_eq!(*dense.get_mut(a), i as u32 + 1);
        }
    }

    #[test]
    fn empty_value_is_configurable() {
        let mut m = ShadowMap::with_layout(u32::MAX, true);
        assert_eq!(*m.get(addr(9, 9)), u32::MAX);
        *m.get_mut(addr(9, 9)) = 0;
        assert_eq!(*m.get(addr(9, 9)), 0);
        // Materializing one slot fills earlier slots with `empty`, not a
        // type default.
        assert_eq!(*m.get(addr(9, 3)), u32::MAX);
    }
}
