//! The simulated memory: globals plus heap objects.

use oha_ir::{InstId, Program};

use crate::value::{Addr, ObjId, Value};

#[derive(Clone, Debug)]
struct Object {
    fields: Vec<Value>,
    /// The allocation site, `None` for globals.
    alloc_site: Option<InstId>,
}

/// The memory of one execution.
///
/// Globals are materialized up front (object ids `0..num_globals`); heap
/// objects are appended by [`Heap::alloc`]. All fields start as `Int(0)`.
#[derive(Clone, Debug)]
pub struct Heap {
    objects: Vec<Object>,
    num_globals: usize,
}

impl Heap {
    /// Creates the heap for a program, materializing its globals.
    pub fn new(program: &Program) -> Self {
        let objects = program
            .globals()
            .iter()
            .map(|g| Object {
                fields: vec![Value::default(); g.fields as usize],
                alloc_site: None,
            })
            .collect::<Vec<_>>();
        let num_globals = objects.len();
        Self {
            objects,
            num_globals,
        }
    }

    /// Allocates a fresh object with `fields` zeroed fields at `site`.
    pub fn alloc(&mut self, fields: u32, site: InstId) -> ObjId {
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(Object {
            fields: vec![Value::default(); fields as usize],
            alloc_site: Some(site),
        });
        id
    }

    /// Reads the value at `addr`, or `None` if the address is out of range.
    pub fn load(&self, addr: Addr) -> Option<Value> {
        self.objects
            .get(addr.obj.0 as usize)?
            .fields
            .get(addr.field as usize)
            .copied()
    }

    /// Writes `value` at `addr`; returns `false` if the address is out of
    /// range.
    pub fn store(&mut self, addr: Addr, value: Value) -> bool {
        match self
            .objects
            .get_mut(addr.obj.0 as usize)
            .and_then(|o| o.fields.get_mut(addr.field as usize))
        {
            Some(slot) => {
                *slot = value;
                true
            }
            None => false,
        }
    }

    /// The allocation site of an object (`None` for globals and unknown
    /// ids).
    pub fn alloc_site(&self, obj: ObjId) -> Option<InstId> {
        self.objects.get(obj.0 as usize)?.alloc_site
    }

    /// Whether `obj` is a global.
    pub fn is_global(&self, obj: ObjId) -> bool {
        (obj.0 as usize) < self.num_globals
    }

    /// Total number of objects (globals + heap allocations).
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_ir::ProgramBuilder;

    fn tiny_program() -> Program {
        let mut pb = ProgramBuilder::new();
        pb.global("a", 2);
        pb.global("b", 1);
        let mut f = pb.function("main", 0);
        f.ret(None);
        let main = pb.finish_function(f);
        pb.finish(main).unwrap()
    }

    use oha_ir::Program;

    #[test]
    fn globals_materialized_first() {
        let p = tiny_program();
        let h = Heap::new(&p);
        assert_eq!(h.num_objects(), 2);
        assert!(h.is_global(ObjId(0)));
        assert!(h.is_global(ObjId(1)));
        assert_eq!(h.load(Addr::new(ObjId(0), 1)), Some(Value::Int(0)));
        assert_eq!(h.load(Addr::new(ObjId(0), 2)), None, "out of range field");
    }

    #[test]
    fn alloc_load_store_round_trip() {
        let p = tiny_program();
        let mut h = Heap::new(&p);
        let o = h.alloc(3, InstId::new(0));
        assert!(!h.is_global(o));
        assert_eq!(h.alloc_site(o), Some(InstId::new(0)));
        let a = Addr::new(o, 2);
        assert!(h.store(a, Value::Int(99)));
        assert_eq!(h.load(a), Some(Value::Int(99)));
        assert!(!h.store(Addr::new(o, 3), Value::Int(1)));
        assert_eq!(h.load(Addr::new(ObjId(77), 0)), None);
    }
}
