//! Property tests for the data-flow substrate: the bit set against a
//! `BTreeSet` model, SCCs against mutual reachability, and dominators
//! against the cut definition.

use std::collections::BTreeSet;

use oha_dataflow::{BitSet, Cfg, DiGraph, DomTree};
use oha_ir::{Operand, ProgramBuilder};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum SetOp {
    Insert(u16),
    Remove(u16),
    UnionRange(u16, u16),
    SubtractRange(u16, u16),
    IntersectRange(u16, u16),
}

fn set_op() -> impl Strategy<Value = SetOp> {
    prop_oneof![
        (0u16..500).prop_map(SetOp::Insert),
        (0u16..500).prop_map(SetOp::Remove),
        (0u16..400, 1u16..100).prop_map(|(a, n)| SetOp::UnionRange(a, n)),
        (0u16..400, 1u16..100).prop_map(|(a, n)| SetOp::SubtractRange(a, n)),
        (0u16..400, 1u16..100).prop_map(|(a, n)| SetOp::IntersectRange(a, n)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BitSet behaves exactly like a BTreeSet<usize> model under a random
    /// operation sequence.
    #[test]
    fn bitset_matches_model(ops in prop::collection::vec(set_op(), 0..60)) {
        let mut bits = BitSet::new();
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for op in ops {
            match op {
                SetOp::Insert(x) => {
                    let novel = bits.insert(x as usize);
                    prop_assert_eq!(novel, model.insert(x as usize));
                }
                SetOp::Remove(x) => {
                    let had = bits.remove(x as usize);
                    prop_assert_eq!(had, model.remove(&(x as usize)));
                }
                SetOp::UnionRange(a, n) => {
                    let other: BitSet = (a as usize..(a + n) as usize).collect();
                    bits.union_with(&other);
                    model.extend(a as usize..(a + n) as usize);
                }
                SetOp::SubtractRange(a, n) => {
                    let other: BitSet = (a as usize..(a + n) as usize).collect();
                    bits.subtract(&other);
                    model.retain(|&x| !(a as usize..(a + n) as usize).contains(&x));
                }
                SetOp::IntersectRange(a, n) => {
                    let other: BitSet = (a as usize..(a + n) as usize).collect();
                    bits.intersect_with(&other);
                    model.retain(|&x| (a as usize..(a + n) as usize).contains(&x));
                }
            }
            prop_assert_eq!(bits.len(), model.len());
            prop_assert_eq!(bits.iter().collect::<Vec<_>>(), model.iter().copied().collect::<Vec<_>>());
        }
    }

    /// Two nodes share an SCC iff they are mutually reachable.
    #[test]
    fn sccs_match_mutual_reachability(
        n in 2usize..14,
        edges in prop::collection::vec((0usize..14, 0usize..14), 0..40),
    ) {
        let mut g = DiGraph::new(n);
        for (a, b) in edges {
            if a < n && b < n {
                g.add_edge(a, b);
            }
        }
        let (comp, _) = g.sccs();
        for a in 0..n {
            let from_a = g.reachable_from([a]);
            for b in 0..n {
                let from_b = g.reachable_from([b]);
                let mutual = from_a.contains(b) && from_b.contains(a);
                prop_assert_eq!(comp[a] == comp[b], mutual, "nodes {} {}", a, b);
            }
        }
    }

    /// `a` dominates `b` iff every entry→b path passes `a` — checked by
    /// cutting `a` out of the graph and testing reachability.
    #[test]
    fn dominators_match_cut_definition(
        nblocks in 2usize..8,
        branches in prop::collection::vec((0usize..8, 0usize..8), 1..12),
    ) {
        // Build a random single-function CFG via the IR builder.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        let blocks: Vec<_> = std::iter::once(f.entry_block())
            .chain((1..nblocks).map(|_| f.block()))
            .collect();
        let c = f.input();
        // Terminate every block with a branch derived from the spec.
        for (i, &b) in blocks.iter().enumerate() {
            if i > 0 {
                f.select(b);
            }
            let (x, y) = branches[i % branches.len()];
            let (tx, ty) = (blocks[x % nblocks], blocks[y % nblocks]);
            if i == nblocks - 1 {
                f.ret(None);
            } else {
                f.branch(Operand::Reg(c), tx, ty);
            }
        }
        let main = pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        let cfg = Cfg::new(&p, main);
        let dt = DomTree::new(&cfg);

        let entry = cfg.local(cfg.entry());
        let reachable = cfg.graph().reachable_from([entry]);
        for a in 0..nblocks {
            for b in 0..nblocks {
                if !reachable.contains(a) || !reachable.contains(b) {
                    continue;
                }
                // Reachability of b from entry avoiding a.
                let avoiding = {
                    let mut seen = vec![false; nblocks];
                    let mut stack = vec![entry];
                    if entry != a {
                        seen[entry] = true;
                    } else {
                        stack.clear();
                    }
                    while let Some(x) = stack.pop() {
                        for s in cfg.graph().succs(x) {
                            if s != a && !seen[s] {
                                seen[s] = true;
                                stack.push(s);
                            }
                        }
                    }
                    seen[b]
                };
                let dominates = dt.dominates(cfg.global(a), cfg.global(b));
                let expected = a == b || !avoiding;
                prop_assert_eq!(dominates, expected, "a={} b={}", a, b);
            }
        }
    }
}
