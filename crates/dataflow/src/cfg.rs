//! Per-function control-flow graphs.

use oha_ir::{BlockId, FuncId, Program};

use crate::bitset::BitSet;
use crate::graph::DiGraph;

/// The control-flow graph of one function.
///
/// Wraps a [`DiGraph`] over the function's blocks (in function-local index
/// space) and exposes block-id based queries plus the *may-precede* relation
/// used by the flow-sensitive slicer: block `a` may precede block `b` iff
/// some execution can visit `a` and later `b` (i.e. `b` is reachable from
/// `a`, including `a == b` when `a` lies on a cycle or trivially within one
/// block).
///
/// # Examples
///
/// ```
/// use oha_dataflow::Cfg;
/// use oha_ir::{Operand, ProgramBuilder};
///
/// let mut pb = ProgramBuilder::new();
/// let mut f = pb.function("main", 0);
/// let exit = f.block();
/// f.jump(exit);
/// f.select(exit);
/// f.ret(None);
/// let main = pb.finish_function(f);
/// let p = pb.finish(main).unwrap();
///
/// let cfg = Cfg::new(&p, main);
/// assert_eq!(cfg.len(), 2);
/// assert_eq!(cfg.succs(cfg.entry()).len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Cfg {
    func: FuncId,
    base: u32,
    graph: DiGraph,
    rpo: Vec<BlockId>,
}

impl Cfg {
    /// Builds the CFG of `func`.
    pub fn new(program: &Program, func: FuncId) -> Self {
        let f = program.function(func);
        let base = f.entry.raw();
        let mut graph = DiGraph::new(f.blocks.len());
        for &bid in &f.blocks {
            for succ in program.block(bid).successors() {
                graph.add_edge((bid.raw() - base) as usize, (succ.raw() - base) as usize);
            }
        }
        let rpo = graph
            .reverse_post_order(0)
            .into_iter()
            .map(|i| BlockId::new(base + i as u32))
            .collect();
        Self {
            func,
            base,
            graph,
            rpo,
        }
    }

    /// The function this CFG describes.
    pub fn func(&self) -> FuncId {
        self.func
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        BlockId::new(self.base)
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Returns `true` if the function has no blocks (never happens for
    /// builder-produced programs).
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// The function-local index of a block (the index used by
    /// [`Cfg::graph`] and [`Cfg::may_precede`]).
    pub fn local(&self, b: BlockId) -> usize {
        (b.raw() - self.base) as usize
    }

    /// The block id for a function-local index.
    pub fn global(&self, i: usize) -> BlockId {
        BlockId::new(self.base + i as u32)
    }

    /// Successor blocks of `b`.
    pub fn succs(&self, b: BlockId) -> Vec<BlockId> {
        self.graph
            .succs(self.local(b))
            .map(|i| self.global(i))
            .collect()
    }

    /// Predecessor blocks of `b`.
    pub fn preds(&self, b: BlockId) -> Vec<BlockId> {
        self.graph
            .preds(self.local(b))
            .map(|i| self.global(i))
            .collect()
    }

    /// Blocks in reverse post-order from the entry. Unreachable blocks are
    /// not included.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Blocks reachable from the entry.
    pub fn reachable(&self) -> Vec<BlockId> {
        self.graph
            .reachable_from([0])
            .iter()
            .map(|i| self.global(i))
            .collect()
    }

    /// The underlying graph in local index space.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Computes the full may-precede relation.
    ///
    /// `result[local(a)].contains(local(b))` iff control can flow from `a`
    /// to `b` through zero or more edges — i.e. a store in `a` may execute
    /// before a load in `b`. A block always may-precede itself (intra-block
    /// order is refined by instruction position at the use site).
    pub fn may_precede(&self) -> Vec<BitSet> {
        (0..self.graph.len())
            .map(|i| self.graph.reachable_from([i]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_ir::{Operand, ProgramBuilder};

    /// Builds: entry → loop_head → (body → loop_head | exit).
    fn looped() -> (Program, FuncId) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        let head = f.block();
        let body = f.block();
        let exit = f.block();
        let c = f.input();
        f.jump(head);
        f.select(head);
        f.branch(Operand::Reg(c), body, exit);
        f.select(body);
        f.jump(head);
        f.select(exit);
        f.ret(None);
        let main = pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        (p, main)
    }

    use oha_ir::Program;

    #[test]
    fn succs_and_preds_match_terminators() {
        let (p, main) = looped();
        let cfg = Cfg::new(&p, main);
        assert_eq!(cfg.len(), 4);
        let entry = cfg.entry();
        let head = cfg.succs(entry)[0];
        assert_eq!(cfg.preds(head).len(), 2, "entry and body reach the head");
        assert_eq!(cfg.succs(head).len(), 2);
    }

    #[test]
    fn rpo_visits_entry_first() {
        let (p, main) = looped();
        let cfg = Cfg::new(&p, main);
        assert_eq!(cfg.rpo()[0], cfg.entry());
        assert_eq!(cfg.rpo().len(), 4);
    }

    #[test]
    fn may_precede_includes_loop_back_edges() {
        let (p, main) = looped();
        let cfg = Cfg::new(&p, main);
        let mp = cfg.may_precede();
        let entry = cfg.local(cfg.entry());
        let head = entry + 1; // blocks were created in order head, body, exit
        let body = entry + 2;
        let exit = entry + 3;
        assert!(mp[entry].contains(exit));
        assert!(mp[body].contains(head), "back edge makes body precede head");
        assert!(mp[body].contains(body), "body lies on a cycle");
        assert!(!mp[exit].contains(entry));
    }
}
