//! Dominator trees via the Cooper–Harvey–Kennedy algorithm.

use oha_ir::BlockId;

use crate::cfg::Cfg;

/// The dominator tree of a function's CFG.
///
/// Used by the race detector's lockset phase to reason about which lock
/// acquisitions dominate a memory access.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// `idom[local]` = immediate dominator (local index); entry points at
    /// itself; unreachable blocks are `u32::MAX`.
    idom: Vec<u32>,
    base: u32,
}

const UNREACHABLE: u32 = u32::MAX;

impl DomTree {
    /// Computes the dominator tree of `cfg`.
    pub fn new(cfg: &Cfg) -> Self {
        let n = cfg.len();
        let rpo: Vec<usize> = cfg.rpo().iter().map(|&b| cfg.local(b)).collect();
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b] = i;
        }
        let mut idom = vec![UNREACHABLE; n];
        let entry = 0usize;
        idom[entry] = entry as u32;

        let intersect = |idom: &[u32], rpo_pos: &[usize], mut a: usize, mut b: usize| -> usize {
            while a != b {
                while rpo_pos[a] > rpo_pos[b] {
                    a = idom[a] as usize;
                }
                while rpo_pos[b] > rpo_pos[a] {
                    b = idom[b] as usize;
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom = usize::MAX;
                for p in cfg.graph().preds(b) {
                    if idom[p] == UNREACHABLE {
                        continue;
                    }
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        intersect(&idom, &rpo_pos, p, new_idom)
                    };
                }
                if new_idom != usize::MAX && idom[b] != new_idom as u32 {
                    idom[b] = new_idom as u32;
                    changed = true;
                }
            }
        }

        Self {
            idom,
            base: cfg.entry().raw(),
        }
    }

    fn local(&self, b: BlockId) -> usize {
        (b.raw() - self.base) as usize
    }

    /// The immediate dominator of `b`, or `None` for the entry block and
    /// unreachable blocks.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        let l = self.local(b);
        let d = self.idom[l];
        if d == UNREACHABLE || d as usize == l {
            None
        } else {
            Some(BlockId::new(self.base + d))
        }
    }

    /// Returns `true` if `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let a = self.local(a);
        let mut cur = self.local(b);
        if self.idom[cur] == UNREACHABLE {
            return false;
        }
        loop {
            if cur == a {
                return true;
            }
            let next = self.idom[cur] as usize;
            if next == cur {
                return false;
            }
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_ir::{Operand, ProgramBuilder};

    #[test]
    fn diamond_dominators() {
        // entry → {left, right} → merge
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        let left = f.block();
        let right = f.block();
        let merge = f.block();
        let c = f.input();
        f.branch(Operand::Reg(c), left, right);
        f.select(left);
        f.jump(merge);
        f.select(right);
        f.jump(merge);
        f.select(merge);
        f.ret(None);
        let main = pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        let cfg = Cfg::new(&p, main);
        let dt = DomTree::new(&cfg);

        let entry = cfg.entry();
        let blocks = p.function(main).blocks.clone();
        let (left, right, merge) = (blocks[1], blocks[2], blocks[3]);

        assert_eq!(dt.idom(entry), None);
        assert_eq!(dt.idom(left), Some(entry));
        assert_eq!(dt.idom(right), Some(entry));
        assert_eq!(dt.idom(merge), Some(entry), "merge's idom skips the arms");
        assert!(dt.dominates(entry, merge));
        assert!(dt.dominates(merge, merge), "dominance is reflexive");
        assert!(!dt.dominates(left, merge));
    }

    #[test]
    fn loop_header_dominates_body() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        let head = f.block();
        let body = f.block();
        let exit = f.block();
        let c = f.input();
        f.jump(head);
        f.select(head);
        f.branch(Operand::Reg(c), body, exit);
        f.select(body);
        f.jump(head);
        f.select(exit);
        f.ret(None);
        let main = pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        let cfg = Cfg::new(&p, main);
        let dt = DomTree::new(&cfg);
        let blocks = p.function(main).blocks.clone();
        assert!(dt.dominates(blocks[1], blocks[2]));
        assert!(dt.dominates(blocks[1], blocks[3]));
        assert!(!dt.dominates(blocks[2], blocks[3]));
    }
}
