//! Reaching definitions for virtual registers.
//!
//! The IR is not SSA: registers are mutable. The backward slicer therefore
//! recovers definition-use chains with a classic bit-vector reaching
//! definitions analysis, per function.

use std::collections::HashMap;

use oha_ir::{FuncId, InstId, Program, Reg};

use crate::bitset::BitSet;
use crate::cfg::Cfg;

/// Where a register value may come from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DefSite {
    /// The value of a function parameter on entry.
    Param(Reg),
    /// The instruction that wrote the register.
    Inst(InstId),
}

/// Definition-use chains for one function's registers.
///
/// # Examples
///
/// ```
/// use oha_ir::{ProgramBuilder, Operand, BinOp};
/// use oha_dataflow::{Cfg, ReachingDefs, DefSite};
///
/// let mut pb = ProgramBuilder::new();
/// let mut f = pb.function("main", 0);
/// let a = f.copy(Operand::Const(1));          // def of a
/// let b = f.bin(BinOp::Add, Operand::Reg(a), Operand::Const(2)); // uses a
/// f.output(Operand::Reg(b));
/// f.ret(None);
/// let main = pb.finish_function(f);
/// let p = pb.finish(main).unwrap();
/// let cfg = Cfg::new(&p, main);
/// let rd = ReachingDefs::new(&p, main, &cfg);
///
/// let add = p.inst_ids().nth(1).unwrap();
/// assert_eq!(rd.defs_for(add, a), &[DefSite::Inst(p.inst_ids().next().unwrap())]);
/// ```
#[derive(Clone, Debug)]
pub struct ReachingDefs {
    per_use: HashMap<(InstId, Reg), Vec<DefSite>>,
    ret_defs: HashMap<oha_ir::BlockId, Vec<DefSite>>,
    empty: Vec<DefSite>,
}

impl ReachingDefs {
    /// Computes reaching definitions for every function of `program`,
    /// indexed by [`FuncId::index`], fanning the per-function fixpoints out
    /// over `pool`. Each fixpoint is a pure function of one function's
    /// body, so the result is identical to the serial loop at every pool
    /// width.
    pub fn compute_all(program: &Program, pool: oha_par::Pool) -> Vec<Self> {
        let funcs: Vec<FuncId> = program.func_ids().collect();
        pool.par_map(&funcs, |&f| Self::new(program, f, &Cfg::new(program, f)))
    }

    /// Computes reaching definitions for `func`.
    pub fn new(program: &Program, func: FuncId, cfg: &Cfg) -> Self {
        let f = program.function(func);

        // Enumerate definition sites densely: params first, then defining
        // instructions in block order.
        let mut sites: Vec<DefSite> = Vec::new();
        let mut defs_of_reg: HashMap<Reg, Vec<usize>> = HashMap::new();
        for &p in &f.params {
            defs_of_reg.entry(p).or_default().push(sites.len());
            sites.push(DefSite::Param(p));
        }
        for &bid in &f.blocks {
            for inst in &program.block(bid).insts {
                if let Some(r) = inst.kind.def() {
                    defs_of_reg.entry(r).or_default().push(sites.len());
                    sites.push(DefSite::Inst(inst.id));
                }
            }
        }
        let num_sites = sites.len();

        // Per-block GEN/KILL.
        let nblocks = f.blocks.len();
        let mut gen = vec![BitSet::with_capacity(num_sites); nblocks];
        let mut kill = vec![BitSet::with_capacity(num_sites); nblocks];
        // Map from InstId to its def-site index for quick lookup.
        let mut site_of_inst: HashMap<InstId, usize> = HashMap::new();
        for (i, s) in sites.iter().enumerate() {
            if let DefSite::Inst(id) = s {
                site_of_inst.insert(*id, i);
            }
        }
        for (bi, &bid) in f.blocks.iter().enumerate() {
            for inst in &program.block(bid).insts {
                if let Some(r) = inst.kind.def() {
                    let this = site_of_inst[&inst.id];
                    for &other in &defs_of_reg[&r] {
                        if other != this {
                            kill[bi].insert(other);
                        }
                        gen[bi].remove(other);
                    }
                    gen[bi].insert(this);
                    kill[bi].remove(this);
                }
            }
        }

        // Fixpoint on IN/OUT.
        let mut r#in = vec![BitSet::with_capacity(num_sites); nblocks];
        let mut out = vec![BitSet::with_capacity(num_sites); nblocks];
        // Entry IN = parameter defs.
        for i in 0..f.params.len() {
            r#in[0].insert(i);
        }
        // One reusable scratch set instead of two fresh clones per block
        // per pass; the analysis is monotone, so IN can grow in place.
        let mut scratch = BitSet::with_capacity(num_sites);
        let mut changed = true;
        while changed {
            changed = false;
            for &bid in cfg.rpo() {
                let bi = cfg.local(bid);
                let mut input = std::mem::take(&mut r#in[bi]);
                for p in cfg.graph().preds(bi) {
                    input.union_with(&out[p]);
                }
                scratch.clear();
                scratch.union_with(&input);
                r#in[bi] = input;
                scratch.subtract(&kill[bi]);
                scratch.union_with(&gen[bi]);
                changed |= out[bi].union_with(&scratch);
            }
        }

        // Walk blocks recording, for every use, the reaching def sites.
        let mut per_use: HashMap<(InstId, Reg), Vec<DefSite>> = HashMap::new();
        let mut ret_defs: HashMap<oha_ir::BlockId, Vec<DefSite>> = HashMap::new();
        for (bi, &bid) in f.blocks.iter().enumerate() {
            let mut live = r#in[bi].clone();
            for inst in &program.block(bid).insts {
                for r in inst.kind.uses() {
                    let reaching: Vec<DefSite> = defs_of_reg
                        .get(&r)
                        .into_iter()
                        .flatten()
                        .filter(|&&s| live.contains(s))
                        .map(|&s| sites[s])
                        .collect();
                    per_use.insert((inst.id, r), reaching);
                }
                if let Some(r) = inst.kind.def() {
                    let this = site_of_inst[&inst.id];
                    for &other in &defs_of_reg[&r] {
                        live.remove(other);
                    }
                    live.insert(this);
                }
            }
            if let oha_ir::Terminator::Return(Some(op)) = &program.block(bid).terminator {
                if let Some(r) = op.as_reg() {
                    let reaching: Vec<DefSite> = defs_of_reg
                        .get(&r)
                        .into_iter()
                        .flatten()
                        .filter(|&&s| live.contains(s))
                        .map(|&s| sites[s])
                        .collect();
                    ret_defs.insert(bid, reaching);
                }
            }
        }

        Self {
            per_use,
            ret_defs,
            empty: Vec::new(),
        }
    }

    /// The definition sites that may reach the `return` operand of `block`
    /// (empty for blocks without a value-returning terminator).
    pub fn defs_for_return(&self, block: oha_ir::BlockId) -> &[DefSite] {
        self.ret_defs
            .get(&block)
            .map(|v| v.as_slice())
            .unwrap_or(&self.empty)
    }

    /// The definition sites that may reach the use of `reg` at `use_inst`.
    ///
    /// Returns an empty slice for registers the instruction does not use or
    /// that are never defined (reads of such registers yield 0 at runtime).
    pub fn defs_for(&self, use_inst: InstId, reg: Reg) -> &[DefSite] {
        self.per_use
            .get(&(use_inst, reg))
            .map(|v| v.as_slice())
            .unwrap_or(&self.empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_ir::{BinOp, Operand, ProgramBuilder};
    use Operand::{Const, Reg as R};

    #[test]
    fn straight_line_chains() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        let a = f.copy(Const(1)); // i0
        f.copy_to(a, Const(2)); // i1 kills i0
        let b = f.bin(BinOp::Add, R(a), Const(0)); // i2 uses a
        f.output(R(b)); // i3
        f.ret(None);
        let main = pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        let cfg = Cfg::new(&p, main);
        let rd = ReachingDefs::new(&p, main, &cfg);

        let ids: Vec<InstId> = p.inst_ids().collect();
        assert_eq!(rd.defs_for(ids[2], a), &[DefSite::Inst(ids[1])]);
        assert_eq!(rd.defs_for(ids[3], b), &[DefSite::Inst(ids[2])]);
    }

    #[test]
    fn merge_points_union_defs() {
        // if (c) { x = 1 } else { x = 2 }; use x
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        let x = f.reg();
        let then_b = f.block();
        let else_b = f.block();
        let merge = f.block();
        let c = f.input(); // i0
        f.branch(R(c), then_b, else_b);
        f.select(then_b);
        f.copy_to(x, Const(1)); // i1
        f.jump(merge);
        f.select(else_b);
        f.copy_to(x, Const(2)); // i2
        f.jump(merge);
        f.select(merge);
        f.output(R(x)); // i3
        f.ret(None);
        let main = pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        let cfg = Cfg::new(&p, main);
        let rd = ReachingDefs::new(&p, main, &cfg);

        let ids: Vec<InstId> = p.inst_ids().collect();
        let mut defs = rd.defs_for(ids[3], x).to_vec();
        defs.sort_by_key(|d| match d {
            DefSite::Inst(i) => i.raw(),
            DefSite::Param(_) => u32::MAX,
        });
        assert_eq!(defs, vec![DefSite::Inst(ids[1]), DefSite::Inst(ids[2])]);
    }

    #[test]
    fn loop_carried_defs_reach_uses() {
        // x = 0; while (input) { use x; x = x + 1 }
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        let head = f.block();
        let body = f.block();
        let exit = f.block();
        let x = f.copy(Const(0)); // i0
        f.jump(head);
        f.select(head);
        let c = f.input(); // i1
        f.branch(R(c), body, exit);
        f.select(body);
        let x1 = f.bin(BinOp::Add, R(x), Const(1)); // i2 uses x
        f.copy_to(x, R(x1)); // i3 defines x
        f.jump(head);
        f.select(exit);
        f.output(R(x)); // i4
        f.ret(None);
        let main = pb.finish_function(f);
        let p = pb.finish(main).unwrap();
        let cfg = Cfg::new(&p, main);
        let rd = ReachingDefs::new(&p, main, &cfg);

        let ids: Vec<InstId> = p.inst_ids().collect();
        // The add's use of x sees both the initial def and the loop-carried
        // def.
        let defs: Vec<_> = rd.defs_for(ids[2], x).to_vec();
        assert!(defs.contains(&DefSite::Inst(ids[0])));
        assert!(defs.contains(&DefSite::Inst(ids[3])));
        // The exit output also sees both.
        let defs: Vec<_> = rd.defs_for(ids[4], x).to_vec();
        assert_eq!(defs.len(), 2);
    }

    #[test]
    fn params_are_definition_sites() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare("callee", 1);
        let mut f = pb.function("callee", 1);
        let p0 = f.param(0);
        f.output(R(p0)); // i0
        f.ret(None);
        pb.finish_function(f);
        let mut m = pb.function("main", 0);
        m.call_void(callee, vec![Const(3)]);
        m.ret(None);
        let main = pb.finish_function(m);
        let p = pb.finish(main).unwrap();
        let cfg = Cfg::new(&p, callee);
        let rd = ReachingDefs::new(&p, callee, &cfg);
        let out = p.inst_ids().find(|&i| p.func_of_inst(i) == callee).unwrap();
        assert_eq!(rd.defs_for(out, p0), &[DefSite::Param(p0)]);
    }
}
