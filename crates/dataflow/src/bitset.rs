//! Dense bit sets.
//!
//! The paper's implementation tracks visited-node and points-to sets with
//! BDDs; this reproduction uses dense 64-bit-word bit sets, which give the
//! same fixpoints with simpler code (see DESIGN.md substitutions).

use std::fmt;

/// A growable dense bit set over `usize` indices.
///
/// # Examples
///
/// ```
/// use oha_dataflow::BitSet;
///
/// let mut a = BitSet::new();
/// a.insert(3);
/// a.insert(70);
/// let mut b = BitSet::new();
/// b.insert(70);
/// assert!(a.union_with(&b) == false, "b added nothing new");
/// assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 70]);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty set with capacity for indices `< bits`.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    fn ensure(&mut self, bit: usize) {
        let word = bit / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
    }

    /// Inserts `bit`; returns `true` if it was not already present.
    pub fn insert(&mut self, bit: usize) -> bool {
        self.ensure(bit);
        let (w, m) = (bit / 64, 1u64 << (bit % 64));
        let novel = self.words[w] & m == 0;
        self.words[w] |= m;
        novel
    }

    /// Removes `bit`; returns `true` if it was present.
    pub fn remove(&mut self, bit: usize) -> bool {
        let (w, m) = (bit / 64, 1u64 << (bit % 64));
        if w >= self.words.len() || self.words[w] & m == 0 {
            return false;
        }
        self.words[w] &= !m;
        true
    }

    /// Tests membership.
    pub fn contains(&self, bit: usize) -> bool {
        let (w, m) = (bit / 64, 1u64 << (bit % 64));
        self.words.get(w).is_some_and(|&x| x & m != 0)
    }

    /// Returns `true` if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Removes all bits.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Unions `other` into `self`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Intersects `self` with `other`; returns `true` if `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (i, a) in self.words.iter_mut().enumerate() {
            let b = other.words.get(i).copied().unwrap_or(0);
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Removes every bit of `other` from `self`; returns `true` on change.
    pub fn subtract(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            let next = *a & !b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Returns `true` if `self` and `other` share at least one bit.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(&a, &b)| a & b != 0)
    }

    /// Returns `true` if every bit of `self` is also in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &a)| a & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Iterates over the set bits in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::new();
        for b in iter {
            s.insert(b);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for b in iter {
            self.insert(b);
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over the bits of a [`BitSet`], produced by [`BitSet::iter`].
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word * 64 + tz);
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5), "second insert is a no-op");
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1, 2, 64, 100].into_iter().collect();
        let b: BitSet = [2, 3, 100, 200].into_iter().collect();

        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 64, 100, 200]);
        assert!(!u.union_with(&b), "idempotent");

        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 100]);

        let mut d = a.clone();
        assert!(d.subtract(&b));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 64]);

        assert!(a.intersects(&b));
        assert!(i.is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let s: BitSet = [0, 63, 64, 127, 128, 1000].into_iter().collect();
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![0, 63, 64, 127, 128, 1000]
        );
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn empty_set_behaves() {
        let s = BitSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(0));
        assert!(s.is_subset(&BitSet::new()));
        assert!(!s.intersects(&BitSet::new()));
        assert_eq!(format!("{s:?}"), "{}");
    }

    #[test]
    fn subset_handles_longer_self() {
        let mut a = BitSet::new();
        a.insert(500);
        let b: BitSet = [1].into_iter().collect();
        assert!(!a.is_subset(&b));
        a.remove(500);
        assert!(a.is_subset(&b), "trailing zero words are ignored");
    }
}
