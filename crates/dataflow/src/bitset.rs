//! Dense bit sets.
//!
//! The paper's implementation tracks visited-node and points-to sets with
//! BDDs; this reproduction uses dense 64-bit-word bit sets, which give the
//! same fixpoints with simpler code (see DESIGN.md substitutions).

use std::fmt;

/// A growable dense bit set over `usize` indices.
///
/// # Examples
///
/// ```
/// use oha_dataflow::BitSet;
///
/// let mut a = BitSet::new();
/// a.insert(3);
/// a.insert(70);
/// let mut b = BitSet::new();
/// b.insert(70);
/// assert!(a.union_with(&b) == false, "b added nothing new");
/// assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 70]);
/// ```
#[derive(Clone, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

// Equality and hashing must ignore trailing zero words: `clear()` keeps the
// allocation (zero-filled), so two sets with the same bits may differ in
// word-vector length.
impl PartialEq for BitSet {
    fn eq(&self, other: &BitSet) -> bool {
        let (a, b) = (&self.words, &other.words);
        let shared = a.len().min(b.len());
        a[..shared] == b[..shared]
            && a[shared..].iter().all(|&w| w == 0)
            && b[shared..].iter().all(|&w| w == 0)
    }
}

impl Eq for BitSet {}

impl std::hash::Hash for BitSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let sig = self.significant_words();
        sig.len().hash(state);
        sig.hash(state);
    }
}

impl BitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty set with capacity for indices `< bits`.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    fn ensure(&mut self, bit: usize) {
        let word = bit / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
    }

    /// Inserts `bit`; returns `true` if it was not already present.
    pub fn insert(&mut self, bit: usize) -> bool {
        self.ensure(bit);
        let (w, m) = (bit / 64, 1u64 << (bit % 64));
        let novel = self.words[w] & m == 0;
        self.words[w] |= m;
        novel
    }

    /// Removes `bit`; returns `true` if it was present.
    pub fn remove(&mut self, bit: usize) -> bool {
        let (w, m) = (bit / 64, 1u64 << (bit % 64));
        if w >= self.words.len() || self.words[w] & m == 0 {
            return false;
        }
        self.words[w] &= !m;
        true
    }

    /// Tests membership.
    pub fn contains(&self, bit: usize) -> bool {
        let (w, m) = (bit / 64, 1u64 << (bit % 64));
        self.words.get(w).is_some_and(|&x| x & m != 0)
    }

    /// Returns `true` if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Removes all bits, keeping the backing allocation so the set can be
    /// reused in hot loops without reallocating.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of bits the set can hold before its word vector grows.
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }

    /// Drops trailing zero words and releases surplus heap capacity.
    pub fn shrink_to_fit(&mut self) {
        let sig = self.significant_words().len();
        self.words.truncate(sig);
        self.words.shrink_to_fit();
    }

    /// The backing 64-bit words with trailing zero words stripped — the
    /// canonical serialization form (`oha-store`'s codec writes exactly
    /// these words, so two sets that compare [`Eq`] encode identically).
    pub fn as_words(&self) -> &[u64] {
        self.significant_words()
    }

    /// Rebuilds a set from the word form produced by
    /// [`BitSet::as_words`]. Accepts trailing zero words (they do not
    /// affect equality).
    pub fn from_words(words: Vec<u64>) -> Self {
        Self { words }
    }

    /// The word-vector prefix up to and including the last nonzero word.
    fn significant_words(&self) -> &[u64] {
        let sig = self
            .words
            .iter()
            .rposition(|&w| w != 0)
            .map_or(0, |i| i + 1);
        &self.words[..sig]
    }

    /// Word-parallel difference propagation: unions `self` into `pts`, and
    /// records every bit that was new to `pts` in `delta`. Returns `true`
    /// if `pts` changed. This is the solver's hot path: one pass of 64-bit
    /// word operations replaces a per-bit insert loop.
    pub fn union_into(&self, pts: &mut BitSet, delta: &mut BitSet) -> bool {
        let src = self.significant_words();
        if src.len() > pts.words.len() {
            pts.words.resize(src.len(), 0);
        }
        let mut changed = false;
        for (i, (&s, p)) in src.iter().zip(pts.words.iter_mut()).enumerate() {
            let new = s & !*p;
            if new != 0 {
                *p |= new;
                if i >= delta.words.len() {
                    delta.words.resize(src.len(), 0);
                }
                delta.words[i] |= new;
                changed = true;
            }
        }
        changed
    }

    /// Unions `other` into `self`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Intersects `self` with `other`; returns `true` if `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (i, a) in self.words.iter_mut().enumerate() {
            let b = other.words.get(i).copied().unwrap_or(0);
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Removes every bit of `other` from `self`; returns `true` on change.
    pub fn subtract(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            let next = *a & !b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Returns `true` if `self` and `other` share at least one bit.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(&a, &b)| a & b != 0)
    }

    /// Returns `true` if every bit of `self` is also in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &a)| a & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Iterates over the set bits in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::new();
        for b in iter {
            s.insert(b);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for b in iter {
            self.insert(b);
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over the bits of a [`BitSet`], produced by [`BitSet::iter`].
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word * 64 + tz);
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }

    // Popcount-free bounds: the upper bound assumes every remaining word
    // position could be set; the lower bound only promises the bit already
    // staged in `bits`.
    fn size_hint(&self) -> (usize, Option<usize>) {
        let later_words = self.set.words.len().saturating_sub(self.word + 1);
        let current = if self.bits != 0 { 64 } else { 0 };
        let lower = usize::from(self.bits != 0);
        (lower, Some(current + later_words * 64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5), "second insert is a no-op");
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1, 2, 64, 100].into_iter().collect();
        let b: BitSet = [2, 3, 100, 200].into_iter().collect();

        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 64, 100, 200]);
        assert!(!u.union_with(&b), "idempotent");

        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 100]);

        let mut d = a.clone();
        assert!(d.subtract(&b));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 64]);

        assert!(a.intersects(&b));
        assert!(i.is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let s: BitSet = [0, 63, 64, 127, 128, 1000].into_iter().collect();
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![0, 63, 64, 127, 128, 1000]
        );
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn empty_set_behaves() {
        let s = BitSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(0));
        assert!(s.is_subset(&BitSet::new()));
        assert!(!s.intersects(&BitSet::new()));
        assert_eq!(format!("{s:?}"), "{}");
    }

    #[test]
    fn clear_keeps_capacity_and_equality_ignores_trailing_zeros() {
        let mut s: BitSet = [3, 500].into_iter().collect();
        let cap = s.capacity();
        assert!(cap >= 512);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), cap, "clear keeps the allocation");
        assert_eq!(s, BitSet::new(), "zero-filled words compare empty");

        s.insert(3);
        let fresh: BitSet = [3].into_iter().collect();
        assert_eq!(s, fresh, "trailing zero words are ignored by Eq");
        let hash = |b: &BitSet| {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            b.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&s), hash(&fresh), "equal sets hash equal");

        s.shrink_to_fit();
        assert_eq!(s.capacity(), 64, "shrink drops trailing zero words");
        assert!(s.contains(3));
    }

    #[test]
    fn union_into_extracts_the_changed_bits() {
        let src: BitSet = [1, 63, 64, 200].into_iter().collect();
        let mut pts: BitSet = [1, 200, 300].into_iter().collect();
        let mut delta = BitSet::new();
        assert!(src.union_into(&mut pts, &mut delta));
        assert_eq!(pts.iter().collect::<Vec<_>>(), vec![1, 63, 64, 200, 300]);
        assert_eq!(
            delta.iter().collect::<Vec<_>>(),
            vec![63, 64],
            "delta holds exactly the bits new to pts"
        );
        // Idempotent: a second pass changes nothing and leaves delta alone.
        assert!(!src.union_into(&mut pts, &mut delta));
        assert_eq!(delta.iter().collect::<Vec<_>>(), vec![63, 64]);
    }

    #[test]
    fn union_into_from_cleared_source_is_a_no_op() {
        let mut src: BitSet = [700].into_iter().collect();
        src.clear();
        let mut pts = BitSet::new();
        let mut delta = BitSet::new();
        assert!(!src.union_into(&mut pts, &mut delta));
        assert!(pts.is_empty() && delta.is_empty());
        assert_eq!(pts.capacity(), 0, "zero-filled source does not grow pts");
    }

    #[test]
    fn size_hint_bounds_the_remaining_bits() {
        let s: BitSet = [0, 63, 64, 1000].into_iter().collect();
        let mut it = s.iter();
        let (lo, hi) = it.size_hint();
        assert!(lo <= 4 && hi.unwrap() >= 4);
        for seen in 1..=4 {
            it.next().unwrap();
            let remaining = 4 - seen;
            let (lo, hi) = it.size_hint();
            assert!(lo <= remaining, "lower bound {lo} > {remaining} left");
            assert!(hi.unwrap() >= remaining);
        }
        assert_eq!(it.size_hint(), (0, Some(0)), "exhausted iterator");
    }

    #[test]
    fn subset_handles_longer_self() {
        let mut a = BitSet::new();
        a.insert(500);
        let b: BitSet = [1].into_iter().collect();
        assert!(!a.is_subset(&b));
        a.remove(500);
        assert!(a.is_subset(&b), "trailing zero words are ignored");
    }
}
