//! A dense directed graph with the traversals the analyses need.

use crate::bitset::BitSet;

/// A directed graph over dense `usize` node ids.
///
/// Supports duplicate-free edge insertion, forward/backward adjacency,
/// reachability closure, iterative Tarjan SCC computation and a
/// reverse-post-order traversal. This is the workhorse under the call graph,
/// the DUGs and the points-to constraint graph.
///
/// # Examples
///
/// ```
/// use oha_dataflow::DiGraph;
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.add_edge(2, 1); // cycle 1 ↔ 2
/// assert!(g.reachable_from([0]).contains(2));
/// let (comp, n) = g.sccs();
/// assert_eq!(n, 2);
/// assert_eq!(comp[1], comp[2]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DiGraph {
    succs: Vec<Vec<u32>>,
    preds: Vec<Vec<u32>>,
    num_edges: usize,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Self {
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Number of distinct edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Appends a new node and returns its id.
    pub fn add_node(&mut self) -> usize {
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        self.succs.len() - 1
    }

    /// Adds the edge `from → to`; returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize) -> bool {
        assert!(from < self.len() && to < self.len(), "edge out of range");
        if self.succs[from].contains(&(to as u32)) {
            return false;
        }
        self.succs[from].push(to as u32);
        self.preds[to].push(from as u32);
        self.num_edges += 1;
        true
    }

    /// Successors of a node.
    pub fn succs(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        self.succs[n].iter().map(|&x| x as usize)
    }

    /// Predecessors of a node.
    pub fn preds(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        self.preds[n].iter().map(|&x| x as usize)
    }

    /// The set of nodes reachable from `roots` (roots included), following
    /// forward edges.
    pub fn reachable_from(&self, roots: impl IntoIterator<Item = usize>) -> BitSet {
        self.closure(roots, false)
    }

    /// The set of nodes that can reach `roots` (roots included), following
    /// edges backwards.
    pub fn reaching(&self, roots: impl IntoIterator<Item = usize>) -> BitSet {
        self.closure(roots, true)
    }

    fn closure(&self, roots: impl IntoIterator<Item = usize>, backward: bool) -> BitSet {
        let mut seen = BitSet::with_capacity(self.len());
        let mut stack: Vec<usize> = roots.into_iter().collect();
        for &r in &stack {
            seen.insert(r);
        }
        while let Some(n) = stack.pop() {
            let adj = if backward {
                &self.preds[n]
            } else {
                &self.succs[n]
            };
            for &m in adj {
                if seen.insert(m as usize) {
                    stack.push(m as usize);
                }
            }
        }
        seen
    }

    /// Computes strongly connected components with an iterative Tarjan
    /// algorithm.
    ///
    /// Returns `(component_of, num_components)`; components are numbered in
    /// reverse topological order (i.e. if SCC `a` has an edge to SCC `b`,
    /// then `component_of[a] > component_of[b]`).
    pub fn sccs(&self) -> (Vec<u32>, usize) {
        const UNVISITED: u32 = u32::MAX;
        let n = self.len();
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut comp = vec![UNVISITED; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut num_comps = 0usize;

        // Explicit DFS state machine: (node, next-successor-position).
        let mut call_stack: Vec<(u32, usize)> = Vec::new();
        for start in 0..n {
            if index[start] != UNVISITED {
                continue;
            }
            call_stack.push((start as u32, 0));
            index[start] = next_index;
            lowlink[start] = next_index;
            next_index += 1;
            stack.push(start as u32);
            on_stack[start] = true;

            while let Some(&mut (v, ref mut pos)) = call_stack.last_mut() {
                let v = v as usize;
                if *pos < self.succs[v].len() {
                    let w = self.succs[v][*pos] as usize;
                    *pos += 1;
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w as u32);
                        on_stack[w] = true;
                        call_stack.push((w as u32, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(&(parent, _)) = call_stack.last() {
                        let p = parent as usize;
                        lowlink[p] = lowlink[p].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        loop {
                            let w = stack.pop().expect("SCC stack never empty here") as usize;
                            on_stack[w] = false;
                            comp[w] = num_comps as u32;
                            if w == v {
                                break;
                            }
                        }
                        num_comps += 1;
                    }
                }
            }
        }
        (comp, num_comps)
    }

    /// Reverse post-order of the nodes reachable from `root`.
    pub fn reverse_post_order(&self, root: usize) -> Vec<usize> {
        let mut seen = BitSet::with_capacity(self.len());
        let mut post = Vec::new();
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        seen.insert(root);
        while let Some(&mut (v, ref mut pos)) = stack.last_mut() {
            if *pos < self.succs[v].len() {
                let w = self.succs[v][*pos] as usize;
                *pos += 1;
                if seen.insert(w) {
                    stack.push((w, 0));
                }
            } else {
                post.push(v);
                stack.pop();
            }
        }
        post.reverse();
        post
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 → 1 → 3, 0 → 2 → 3
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn edges_deduplicate() {
        let mut g = DiGraph::new(2);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(0, 1));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.succs(0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(g.preds(1).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn reachability_forward_and_backward() {
        let g = diamond();
        assert_eq!(g.reachable_from([0]).len(), 4);
        assert_eq!(g.reachable_from([1]).iter().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(g.reaching([3]).len(), 4);
        assert_eq!(g.reaching([1]).iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn scc_finds_cycles() {
        // 0 → 1 → 2 → 0 (one SCC), 2 → 3 (singleton).
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(2, 3);
        let (comp, n) = g.sccs();
        assert_eq!(n, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[0], comp[3]);
        // Reverse topological numbering: the cycle points at 3, so 3's
        // component id is smaller.
        assert!(comp[3] < comp[0]);
    }

    #[test]
    fn scc_on_dag_is_identity_sized() {
        let g = diamond();
        let (_, n) = g.sccs();
        assert_eq!(n, 4);
    }

    #[test]
    fn rpo_starts_at_root_and_respects_order() {
        let g = diamond();
        let rpo = g.reverse_post_order(0);
        assert_eq!(rpo[0], 0);
        assert_eq!(*rpo.last().unwrap(), 3);
        let pos = |x: usize| rpo.iter().position(|&v| v == x).unwrap();
        assert!(pos(1) < pos(3) && pos(2) < pos(3));
    }

    #[test]
    fn deep_graph_does_not_overflow_stack() {
        // 100k-node chain; recursive Tarjan would blow the stack.
        let n = 100_000;
        let mut g = DiGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        let (_, comps) = g.sccs();
        assert_eq!(comps, n);
        assert_eq!(g.reverse_post_order(0).len(), n);
    }
}
