//! Data-flow analysis substrate for the OHA reproduction.
//!
//! The paper's static analyses (points-to, may-happen-in-parallel, lockset
//! race detection, backward slicing) are all data-flow analyses over a
//! definition-use graph (DUG, paper §3). This crate provides what they share:
//!
//! * [`BitSet`] — dense bit sets, the stand-in for the BDD-backed sets used
//!   by the paper's implementation (§5.1.1/§5.1.2);
//! * [`DiGraph`] — a generic dense directed graph with SCC computation
//!   (cycle collapsing is how points-to analyses stay fast) and traversals;
//! * [`Cfg`] — per-function control-flow graph with reverse post-order and
//!   the *may-precede* relation the flow-sensitive slicer needs;
//! * [`DomTree`] — dominator trees (Cooper–Harvey–Kennedy);
//! * [`ReachingDefs`] — register definition-use chains for the non-SSA IR;
//! * [`CallGraph`] — call graphs parameterized over an indirect-call
//!   resolver, so sound ("any address-taken function") and predicated
//!   ("profiled callee sets") variants share the construction code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod callgraph;
mod cfg;
mod domtree;
mod graph;
mod reachdefs;

pub use bitset::BitSet;
pub use callgraph::{AddressTaken, CallGraph, IndirectResolver};
pub use cfg::Cfg;
pub use domtree::DomTree;
pub use graph::DiGraph;
pub use reachdefs::{DefSite, ReachingDefs};
