//! Call graphs parameterized over indirect-call resolution.
//!
//! Sound analyses must assume an indirect call can reach any address-taken
//! function; predicated analyses plug in the likely-callee-sets invariant
//! instead (paper §5.2.2). Both share this construction code by supplying a
//! different [`IndirectResolver`].

use std::collections::HashMap;

use oha_ir::{Callee, FuncId, InstId, InstKind, Program};

use crate::graph::DiGraph;

/// Resolves the possible targets of an indirect call or spawn site.
pub trait IndirectResolver {
    /// The functions the indirect call at `site` may invoke.
    fn resolve(&self, program: &Program, site: InstId) -> Vec<FuncId>;
}

/// The sound default: any function whose address is taken anywhere in the
/// program may be the target of any indirect call.
#[derive(Clone, Copy, Debug, Default)]
pub struct AddressTaken;

impl IndirectResolver for AddressTaken {
    fn resolve(&self, program: &Program, _site: InstId) -> Vec<FuncId> {
        program
            .insts()
            .filter_map(|i| match i.kind {
                InstKind::AddrFunc { func, .. } => Some(func),
                _ => None,
            })
            .collect()
    }
}

impl<F> IndirectResolver for F
where
    F: Fn(&Program, InstId) -> Vec<FuncId>,
{
    fn resolve(&self, program: &Program, site: InstId) -> Vec<FuncId> {
        self(program, site)
    }
}

/// A whole-program call graph.
///
/// Nodes are functions; edges connect callers to possible callees, including
/// through spawn sites (spawned code is reachable code). Per-site resolved
/// target lists are retained for the analyses that need call-site precision
/// (DUG construction, MHP).
#[derive(Clone, Debug)]
pub struct CallGraph {
    graph: DiGraph,
    site_targets: HashMap<InstId, Vec<FuncId>>,
    spawn_sites: Vec<InstId>,
    call_sites: Vec<InstId>,
}

impl CallGraph {
    /// Builds the call graph of `program`, resolving indirect sites with
    /// `resolver`.
    pub fn build(program: &Program, resolver: &dyn IndirectResolver) -> Self {
        let mut graph = DiGraph::new(program.num_functions());
        let mut site_targets = HashMap::new();
        let mut spawn_sites = Vec::new();
        let mut call_sites = Vec::new();

        for inst in program.insts() {
            let (callee, is_spawn) = match &inst.kind {
                InstKind::Call { callee, .. } => (callee, false),
                InstKind::Spawn { func, .. } => (func, true),
                _ => continue,
            };
            let targets = match callee {
                Callee::Direct(f) => vec![*f],
                Callee::Indirect(_) => {
                    let mut t = resolver.resolve(program, inst.id);
                    t.sort_unstable_by_key(|f| f.index());
                    t.dedup();
                    if is_spawn {
                        t.retain(|&f| program.function(f).arity() == 1);
                    }
                    t
                }
            };
            let caller = program.func_of_inst(inst.id);
            for &t in &targets {
                graph.add_edge(caller.index(), t.index());
            }
            if is_spawn {
                spawn_sites.push(inst.id);
            } else {
                call_sites.push(inst.id);
            }
            site_targets.insert(inst.id, targets);
        }
        Self {
            graph,
            site_targets,
            spawn_sites,
            call_sites,
        }
    }

    /// The possible targets of a call or spawn site.
    ///
    /// Returns an empty slice for instructions that are not call/spawn
    /// sites.
    pub fn targets(&self, site: InstId) -> &[FuncId] {
        self.site_targets
            .get(&site)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// All non-spawn call sites in the program.
    pub fn call_sites(&self) -> &[InstId] {
        &self.call_sites
    }

    /// All spawn sites in the program.
    pub fn spawn_sites(&self) -> &[InstId] {
        &self.spawn_sites
    }

    /// Functions directly callable from `f` (including spawn targets).
    pub fn callees(&self, f: FuncId) -> Vec<FuncId> {
        self.graph
            .succs(f.index())
            .map(|i| FuncId::new(i as u32))
            .collect()
    }

    /// Functions that may (transitively) execute starting from `roots`,
    /// roots included.
    pub fn reachable_from(&self, roots: impl IntoIterator<Item = FuncId>) -> Vec<FuncId> {
        self.graph
            .reachable_from(roots.into_iter().map(|f| f.index()))
            .iter()
            .map(|i| FuncId::new(i as u32))
            .collect()
    }

    /// The underlying function-level graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_ir::{Operand, ProgramBuilder};
    use Operand::Reg as R;

    /// main calls a directly; calls through a pointer that could be b or c;
    /// spawns w.
    fn program() -> (Program, Vec<FuncId>) {
        let mut pb = ProgramBuilder::new();
        let a = pb.declare("a", 0);
        let b = pb.declare("b", 0);
        let c = pb.declare("c", 0);
        let w = pb.declare("w", 1);

        let mut m = pb.function("main", 0);
        m.call_void(a, vec![]);
        let fp = m.addr_func(b);
        let fp2 = m.addr_func(c);
        let sel = m.input();
        // Pretend to select between fp and fp2; the call site is indirect.
        m.copy_to(fp, R(fp2));
        m.call_indirect_void(R(fp), vec![]);
        m.spawn(w, R(sel));
        m.ret(None);
        let main = pb.finish_function(m);

        for (name, arity) in [("a", 0), ("b", 0), ("c", 0)] {
            let mut f = pb.function(name, arity);
            f.ret(None);
            pb.finish_function(f);
        }
        let mut f = pb.function("w", 1);
        f.ret(None);
        pb.finish_function(f);

        let p = pb.finish(main).unwrap();
        (p, vec![main, a, b, c, w])
    }

    #[test]
    fn address_taken_resolution_is_sound() {
        let (p, ids) = program();
        let cg = CallGraph::build(&p, &AddressTaken);
        let (main, a, b, c, w) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
        let mut callees = cg.callees(main);
        callees.sort_unstable_by_key(|f| f.index());
        assert_eq!(callees, vec![a, b, c, w]);
        assert_eq!(cg.spawn_sites().len(), 1);
        assert_eq!(cg.call_sites().len(), 2);
        // Only b and c are address-taken, so the indirect call resolves to
        // exactly those two.
        let icall = cg
            .call_sites()
            .iter()
            .copied()
            .find(|&s| cg.targets(s).len() > 1)
            .unwrap();
        assert_eq!(cg.targets(icall), &[b, c]);
    }

    #[test]
    fn closure_resolver_narrows_targets() {
        let (p, ids) = program();
        let b = ids[2];
        let resolver = move |_: &Program, _: InstId| vec![b];
        let cg = CallGraph::build(&p, &resolver);
        let icall = cg
            .call_sites()
            .iter()
            .copied()
            .find(|&s| {
                matches!(
                    p.inst(s).kind,
                    InstKind::Call {
                        callee: Callee::Indirect(_),
                        ..
                    }
                )
            })
            .unwrap();
        assert_eq!(cg.targets(icall), &[b]);
        // c is no longer reachable.
        let reach = cg.reachable_from([ids[0]]);
        assert!(!reach.contains(&ids[3]));
        assert!(reach.contains(&ids[4]), "spawned w is reachable code");
    }

    #[test]
    fn reachability_includes_roots() {
        let (p, ids) = program();
        let cg = CallGraph::build(&p, &AddressTaken);
        let reach = cg.reachable_from([ids[1]]);
        assert_eq!(reach, vec![ids[1]]);
    }
}
