//! Giri-style dynamic backward slicing (paper §5).
//!
//! The tool traces the dynamic definition-use relation during execution —
//! each traced event records *resolved* producer links (which trace event
//! defined each register value it consumed, which store produced the value
//! a load read) — and computes backward slices over the trace afterwards.
//!
//! The **hybrid** variant (the paper's Giri baseline) instruments only
//! instructions inside a static slice of the endpoints; the **optimistic**
//! variant uses the (much smaller) predicated static slice. Eliding an
//! instruction's tracing is safe whenever the static slice over-approximates
//! the true dynamic slice: every event on a contributing chain then has all
//! of its producers traced, so chains never pass through untraced events.
//! When the static slice was predicated on invariants that an execution
//! violates, that guarantee evaporates — which is exactly why OptSlice runs
//! speculatively and rolls back on violation.
//!
//! The fully-dynamic variant (everything traced) is the paper's "pure Giri"
//! baseline that "exhausts system resources even on modest executions": its
//! trace records every register-level event.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod tool;

pub use tool::{DynamicSlice, GiriCounters, GiriTool};
