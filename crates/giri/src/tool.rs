//! The dynamic slicing tracer and trace-based backward slice extraction.

use std::collections::HashMap;

use oha_dataflow::BitSet;
use oha_interp::{
    hooks, Addr, EventCtx, FrameId, InstrPlan, PlanElisions, ShadowMap, ThreadId, Tracer, Value,
};
use oha_ir::{InstId, InstKind, Operand, Program, Reg};

const NONE: u32 = u32::MAX;

/// One traced dynamic event with its resolved producer links.
#[derive(Clone, Copy, Debug)]
struct Event {
    inst: InstId,
    deps: [u32; 2],
}

/// A dynamic backward slice: the set of static instructions whose dynamic
/// instances contributed to the endpoint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DynamicSlice {
    insts: BitSet,
}

impl DynamicSlice {
    /// Whether an instruction contributed.
    pub fn contains(&self, inst: InstId) -> bool {
        self.insts.contains(inst.index())
    }

    /// Number of contributing static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The contributing instructions as a bit set.
    pub fn sites(&self) -> &BitSet {
        &self.insts
    }

    /// Builds a slice from a raw instruction bit set (useful for merging
    /// the slices of several endpoints).
    pub fn from_sites(insts: BitSet) -> Self {
        Self { insts }
    }

    /// Unions another slice into this one.
    pub fn union_with(&mut self, other: &DynamicSlice) {
        self.insts.union_with(&other.insts);
    }
}

/// Tracing counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GiriCounters {
    /// Events recorded in the trace.
    pub traced_events: u64,
    /// Events skipped because their site was outside the static slice.
    pub elided_events: u64,
}

/// The dynamic slicer as an interpreter [`Tracer`].
///
/// # Examples
///
/// ```
/// use oha_ir::{Operand, ProgramBuilder};
/// use oha_giri::GiriTool;
/// use oha_interp::{Machine, MachineConfig};
///
/// let mut pb = ProgramBuilder::new();
/// let mut f = pb.function("main", 0);
/// let x = f.input();
/// f.output(Operand::Reg(x));
/// f.ret(None);
/// let main = pb.finish_function(f);
/// let p = pb.finish(main).unwrap();
///
/// let mut giri = GiriTool::full(&p);
/// Machine::new(&p, MachineConfig::default()).run(&[7], &mut giri);
/// let slice = giri.slice_all_outputs();
/// assert_eq!(slice.len(), 2, "the input and the output instruction");
/// ```
#[derive(Debug)]
pub struct GiriTool<'a> {
    program: &'a Program,
    /// Sites to trace; `None` = everything (pure dynamic Giri).
    filter: Option<&'a BitSet>,
    events: Vec<Event>,
    last_def: HashMap<(u64, u32), u32>,
    /// Event index of the last store per address (`NONE` if unwritten),
    /// in dense shadow memory.
    last_store: ShadowMap<u32>,
    /// Output endpoints: (site, event index).
    outputs: Vec<(InstId, u32)>,
    pending_spawn: HashMap<ThreadId, Option<u32>>,
    counters: GiriCounters,
    /// Maximum trace events before the tool declares resource exhaustion.
    event_budget: Option<u64>,
    exhausted: bool,
}

impl<'a> GiriTool<'a> {
    /// Traces every instruction (the paper's resource-hungry pure-dynamic
    /// baseline).
    pub fn full(program: &'a Program) -> Self {
        Self::with_filter(program, None)
    }

    /// Traces only instructions inside `static_slice` — the hybrid slicer
    /// (sound static slice) or OptSlice (predicated static slice).
    pub fn hybrid(program: &'a Program, static_slice: &'a BitSet) -> Self {
        Self::with_filter(program, Some(static_slice))
    }

    fn with_filter(program: &'a Program, filter: Option<&'a BitSet>) -> Self {
        Self {
            program,
            filter,
            events: Vec::new(),
            last_def: HashMap::new(),
            last_store: ShadowMap::new(NONE),
            outputs: Vec::new(),
            pending_spawn: HashMap::new(),
            counters: GiriCounters::default(),
            event_budget: None,
            exhausted: false,
        }
    }

    /// Caps the trace at `events` entries, modelling a machine's memory
    /// limit: once exceeded the tool stops recording and
    /// [`GiriTool::is_exhausted`] reports true — the paper's "purely
    /// dynamic Giri … exhausts system resources even on modest executions".
    pub fn with_event_budget(mut self, events: u64) -> Self {
        self.event_budget = Some(events);
        self
    }

    /// Whether the event budget was exceeded (any slice computed from this
    /// trace is untrustworthy).
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Tracing counters.
    pub fn counters(&self) -> GiriCounters {
        self.counters
    }

    /// Publishes elided-vs-executed tracing work under `<prefix>.` in
    /// `registry`: `<prefix>.events` (total throughput: traced + elided),
    /// `<prefix>.traced_events`, `<prefix>.elided_events`, the
    /// in-memory `<prefix>.trace_len` and whether the event budget was
    /// `<prefix>.exhausted`.
    pub fn record_metrics(&self, registry: &oha_obs::MetricsRegistry, prefix: &str) {
        registry.add(
            &format!("{prefix}.events"),
            self.counters.traced_events + self.counters.elided_events,
        );
        registry.add(
            &format!("{prefix}.traced_events"),
            self.counters.traced_events,
        );
        registry.add(
            &format!("{prefix}.elided_events"),
            self.counters.elided_events,
        );
        registry.set_gauge(&format!("{prefix}.trace_len"), self.events.len() as f64);
        registry.set_gauge(
            &format!("{prefix}.exhausted"),
            if self.exhausted { 1.0 } else { 0.0 },
        );
    }

    /// The number of trace events held in memory.
    pub fn trace_len(&self) -> usize {
        self.events.len()
    }

    /// Compiles a trace filter into an instrumentation plan (see
    /// [`InstrPlan`]): traceable hooks (load/store/compute/input/output)
    /// at filtered-in sites only, call hooks at *every* call site and
    /// block-enter always — parameter/spawn linking is bookkeeping that
    /// ignores the filter, and `on_return` (gated by the call site's
    /// CALL bit) does its own filter check. Running under this plan is
    /// behaviourally identical to running without one; machine-side
    /// skips are absorbed via [`GiriTool::absorb_plan_elisions`].
    pub fn plan_for(program: &Program, filter: Option<&BitSet>) -> InstrPlan {
        let mut plan = InstrPlan::none(program.num_insts());
        plan.require_block_enter();
        for inst in program.insts() {
            let bits = match inst.kind {
                InstKind::Load { .. } => hooks::LOAD,
                InstKind::Store { .. } => hooks::STORE,
                InstKind::Copy { .. }
                | InstKind::BinOp { .. }
                | InstKind::Alloc { .. }
                | InstKind::AddrGlobal { .. }
                | InstKind::AddrFunc { .. }
                | InstKind::Gep { .. } => hooks::COMPUTE,
                InstKind::Input { .. } => hooks::INPUT,
                InstKind::Output { .. } => hooks::OUTPUT,
                InstKind::Call { .. } => {
                    plan.require(inst.id, hooks::CALL);
                    continue;
                }
                _ => continue,
            };
            if filter.is_none_or(|f| f.contains(inst.id.index())) {
                plan.require(inst.id, bits);
            }
        }
        plan
    }

    /// The plan matching this tool's own filter.
    pub fn plan(&self) -> InstrPlan {
        Self::plan_for(self.program, self.filter)
    }

    /// Folds the machine-side elision tally of a plan-gated run into the
    /// tool's own counters, keeping elided-event accounting exact.
    pub fn absorb_plan_elisions(&mut self, e: &PlanElisions) {
        self.counters.elided_events += e.traceable();
    }

    fn traced(&mut self, inst: InstId) -> bool {
        match self.filter {
            Some(f) if !f.contains(inst.index()) => {
                self.counters.elided_events += 1;
                false
            }
            _ => true,
        }
    }

    fn def_of(&self, frame: FrameId, r: Reg) -> u32 {
        self.last_def
            .get(&(frame.0, r.raw()))
            .copied()
            .unwrap_or(NONE)
    }

    fn operand_dep(&self, frame: FrameId, op: Operand) -> u32 {
        match op {
            Operand::Reg(r) => self.def_of(frame, r),
            Operand::Const(_) => NONE,
        }
    }

    fn record(&mut self, inst: InstId, deps: [u32; 2]) -> u32 {
        if let Some(budget) = self.event_budget {
            if self.events.len() as u64 >= budget {
                self.exhausted = true;
                // Keep the trace bounded; further events are dropped.
                return NONE;
            }
        }
        let idx = self.events.len() as u32;
        self.events.push(Event { inst, deps });
        self.counters.traced_events += 1;
        idx
    }

    fn set_def(&mut self, frame: FrameId, r: Reg, ev: u32) {
        self.last_def.insert((frame.0, r.raw()), ev);
    }

    /// Backward slice from every dynamic occurrence of `endpoint`.
    pub fn slice_of(&self, endpoint: InstId) -> DynamicSlice {
        let roots: Vec<u32> = self
            .outputs
            .iter()
            .filter(|&&(site, _)| site == endpoint)
            .map(|&(_, e)| e)
            .collect();
        self.slice_from(roots)
    }

    /// Backward slice from every output instruction instance.
    pub fn slice_all_outputs(&self) -> DynamicSlice {
        let roots: Vec<u32> = self.outputs.iter().map(|&(_, e)| e).collect();
        self.slice_from(roots)
    }

    fn slice_from(&self, roots: Vec<u32>) -> DynamicSlice {
        let mut seen = BitSet::with_capacity(self.events.len());
        let mut insts = BitSet::with_capacity(self.program.num_insts());
        let mut stack = roots;
        for &r in &stack {
            seen.insert(r as usize);
        }
        while let Some(e) = stack.pop() {
            let ev = self.events[e as usize];
            insts.insert(ev.inst.index());
            for d in ev.deps {
                if d != NONE && seen.insert(d as usize) {
                    stack.push(d);
                }
            }
        }
        DynamicSlice { insts }
    }
}

impl Tracer for GiriTool<'_> {
    fn on_compute(&mut self, ctx: EventCtx) {
        if !self.traced(ctx.inst) {
            return;
        }
        let kind = &self.program.inst(ctx.inst).kind;
        let (dst, deps) = match *kind {
            InstKind::Copy { dst, src } => (dst, [self.operand_dep(ctx.frame, src), NONE]),
            InstKind::BinOp { dst, lhs, rhs, .. } => (
                dst,
                [
                    self.operand_dep(ctx.frame, lhs),
                    self.operand_dep(ctx.frame, rhs),
                ],
            ),
            InstKind::Alloc { dst, .. }
            | InstKind::AddrGlobal { dst, .. }
            | InstKind::AddrFunc { dst, .. } => (dst, [NONE, NONE]),
            InstKind::Gep { dst, base, .. } => (dst, [self.operand_dep(ctx.frame, base), NONE]),
            _ => return,
        };
        let ev = self.record(ctx.inst, deps);
        if ev != NONE {
            self.set_def(ctx.frame, dst, ev);
        }
    }

    fn on_load(&mut self, ctx: EventCtx, addr: Addr, _value: Value) {
        if !self.traced(ctx.inst) {
            return;
        }
        let InstKind::Load { dst, addr: a, .. } = self.program.inst(ctx.inst).kind else {
            return;
        };
        let deps = [*self.last_store.get(addr), self.operand_dep(ctx.frame, a)];
        let ev = self.record(ctx.inst, deps);
        if ev != NONE {
            self.set_def(ctx.frame, dst, ev);
        }
    }

    fn on_store(&mut self, ctx: EventCtx, addr: Addr, _value: Value) {
        if !self.traced(ctx.inst) {
            return;
        }
        let InstKind::Store {
            addr: a, value: v, ..
        } = self.program.inst(ctx.inst).kind
        else {
            return;
        };
        let deps = [
            self.operand_dep(ctx.frame, v),
            self.operand_dep(ctx.frame, a),
        ];
        let ev = self.record(ctx.inst, deps);
        if ev != NONE {
            self.last_store.insert(addr, ev);
        }
    }

    fn on_call(&mut self, ctx: EventCtx, _callee: oha_ir::FuncId, callee_frame: FrameId) {
        // Parameter linking is bookkeeping, not instrumentation: it happens
        // regardless of the filter so chains through traced callee bodies
        // stay connected.
        let program = self.program;
        if let InstKind::Call { args, .. } = &program.inst(ctx.inst).kind {
            for (i, arg) in args.iter().enumerate() {
                if let Operand::Reg(r) = arg {
                    let dep = self.def_of(ctx.frame, *r);
                    if dep != NONE {
                        self.set_def(callee_frame, Reg::new(i as u32), dep);
                    }
                }
            }
        }
    }

    fn on_return(
        &mut self,
        _thread: ThreadId,
        frame: FrameId,
        _func: oha_ir::FuncId,
        value: Option<Value>,
        operand: Option<Operand>,
        caller_frame: FrameId,
        call_inst: InstId,
    ) {
        if value.is_none() || !self.traced(call_inst) {
            return;
        }
        let InstKind::Call { dst: Some(d), .. } = self.program.inst(call_inst).kind else {
            return;
        };
        let dep = match operand {
            Some(Operand::Reg(r)) => self.def_of(frame, r),
            _ => NONE,
        };
        let ev = self.record(call_inst, [dep, NONE]);
        if ev != NONE {
            self.set_def(caller_frame, d, ev);
        }
    }

    fn on_spawn(&mut self, ctx: EventCtx, child: ThreadId, _entry: oha_ir::FuncId) {
        let program = self.program;
        if let InstKind::Spawn { arg, .. } = program.inst(ctx.inst).kind {
            let dep = match arg {
                Operand::Reg(r) => {
                    let d = self.def_of(ctx.frame, r);
                    (d != NONE).then_some(d)
                }
                Operand::Const(_) => None,
            };
            self.pending_spawn.insert(child, dep);
        }
    }

    fn on_block_enter(&mut self, thread: ThreadId, frame: FrameId, _block: oha_ir::BlockId) {
        if let Some(Some(d)) = self.pending_spawn.remove(&thread) {
            self.set_def(frame, Reg::new(0), d);
        }
    }

    fn on_input(&mut self, ctx: EventCtx, _value: Value) {
        if !self.traced(ctx.inst) {
            return;
        }
        let InstKind::Input { dst } = self.program.inst(ctx.inst).kind else {
            return;
        };
        let ev = self.record(ctx.inst, [NONE, NONE]);
        if ev != NONE {
            self.set_def(ctx.frame, dst, ev);
        }
    }

    fn on_output(&mut self, ctx: EventCtx, _value: Value) {
        if !self.traced(ctx.inst) {
            return;
        }
        let InstKind::Output { value } = self.program.inst(ctx.inst).kind else {
            return;
        };
        let dep = self.operand_dep(ctx.frame, value);
        let ev = self.record(ctx.inst, [dep, NONE]);
        if ev != NONE {
            self.outputs.push((ctx.inst, ev));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oha_interp::{Machine, MachineConfig};
    use oha_ir::{BinOp, Program, ProgramBuilder};
    use oha_pointsto::{analyze, PointsToConfig};
    use oha_slicing::{slice, SliceConfig};
    use Operand::{Const, Reg as R};

    fn run_full<'p>(p: &'p Program, input: &[i64]) -> GiriTool<'p> {
        let mut g = GiriTool::full(p);
        Machine::new(p, MachineConfig::default()).run(input, &mut g);
        g
    }

    #[test]
    fn dynamic_slice_tracks_actual_flow_only() {
        // x = input; if x { y = 1 } else { y = 2 }; out y.
        // Only the taken arm is in the dynamic slice.
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main", 0);
        let y = m.reg();
        let then_b = m.block();
        let else_b = m.block();
        let end = m.block();
        let x = m.input();
        m.branch(R(x), then_b, else_b);
        m.select(then_b);
        m.copy_to(y, Const(1));
        m.jump(end);
        m.select(else_b);
        m.copy_to(y, Const(2));
        m.jump(end);
        m.select(end);
        m.output(R(y));
        m.ret(None);
        let main = pb.finish_function(m);
        let p = pb.finish(main).unwrap();
        let ids: Vec<InstId> = p.inst_ids().collect();
        let (input_i, def1, def2, out) = (ids[0], ids[1], ids[2], ids[3]);

        let g = run_full(&p, &[1]);
        let s = g.slice_all_outputs();
        assert!(s.contains(def1), "taken arm");
        assert!(!s.contains(def2), "untaken arm");
        assert!(!s.contains(input_i), "condition is a control dep, excluded");
        assert!(s.contains(out));

        let g = run_full(&p, &[0]);
        let s = g.slice_all_outputs();
        assert!(!s.contains(def1));
        assert!(s.contains(def2));
    }

    #[test]
    fn memory_and_call_chains_traced() {
        let mut pb = ProgramBuilder::new();
        let double = pb.declare("double", 1);
        let mut m = pb.function("main", 0);
        let o = m.alloc(1);
        let x = m.input();
        let d = m.call(double, vec![R(x)]);
        m.store(R(o), 0, R(d));
        let l = m.load(R(o), 0);
        let junk = m.copy(Const(9));
        m.output(R(l));
        m.ret(None);
        let main = pb.finish_function(m);
        let mut f = pb.function("double", 1);
        let s = f.bin(BinOp::Add, R(f.param(0)), R(f.param(0)));
        f.ret(Some(R(s)));
        pb.finish_function(f);
        let p = pb.finish(main).unwrap();

        let g = run_full(&p, &[21]);
        let s = g.slice_all_outputs();
        for (i, kind_check) in p.inst_ids().zip(p.insts()) {
            let expect = !matches!(kind_check.kind, InstKind::Copy { .. });
            assert_eq!(s.contains(i), expect, "inst {i} ({:?})", kind_check.kind);
        }
        let _ = junk;
    }

    #[test]
    fn spawn_arguments_flow_into_threads() {
        let mut pb = ProgramBuilder::new();
        let w = pb.declare("w", 1);
        let mut m = pb.function("main", 0);
        let x = m.input();
        let t = m.spawn(w, R(x));
        m.join(R(t));
        m.ret(None);
        let main = pb.finish_function(m);
        let mut f = pb.function("w", 1);
        f.output(R(f.param(0)));
        f.ret(None);
        pb.finish_function(f);
        let p = pb.finish(main).unwrap();

        let g = run_full(&p, &[5]);
        let s = g.slice_all_outputs();
        let input_i = p
            .inst_ids()
            .find(|&i| matches!(p.inst(i).kind, InstKind::Input { .. }))
            .unwrap();
        assert!(s.contains(input_i), "input flows through the spawn arg");
    }

    /// The headline hybrid-equivalence property: tracing only the sound
    /// static slice yields the same dynamic slice as tracing everything.
    #[test]
    fn hybrid_equals_full_on_sound_static_slice() {
        let mut pb = ProgramBuilder::new();
        let helper = pb.declare("helper", 1);
        let mut m = pb.function("main", 0);
        let o = m.alloc(2);
        let a = m.input();
        let b = m.input();
        let h = m.call(helper, vec![R(a)]);
        m.store(R(o), 0, R(h));
        m.store(R(o), 1, R(b)); // different field: not in slice
        let l = m.load(R(o), 0);
        m.output(R(l));
        m.ret(None);
        let main = pb.finish_function(m);
        let mut f = pb.function("helper", 1);
        let s = f.bin(BinOp::Mul, R(f.param(0)), Const(3));
        f.ret(Some(R(s)));
        pb.finish_function(f);
        let p = pb.finish(main).unwrap();

        let endpoint = p
            .inst_ids()
            .find(|&i| matches!(p.inst(i).kind, InstKind::Output { .. }))
            .unwrap();
        let pt = analyze(&p, &PointsToConfig::default()).unwrap();
        let static_slice = slice(&p, &pt, &[endpoint], &SliceConfig::default()).unwrap();

        for input in [[3, 4], [0, 0], [-5, 9]] {
            let full = run_full(&p, &input);
            let mut hybrid = GiriTool::hybrid(&p, static_slice.sites());
            Machine::new(&p, MachineConfig::default()).run(&input, &mut hybrid);
            assert_eq!(
                full.slice_of(endpoint),
                hybrid.slice_of(endpoint),
                "hybrid slice must match (input {input:?})"
            );
            assert!(hybrid.counters().elided_events > 0, "some work elided");
            assert!(hybrid.counters().traced_events < full.counters().traced_events);
        }
    }

    #[test]
    fn event_budget_models_resource_exhaustion() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main", 0);
        let n = m.input();
        let head = m.block();
        let body = m.block();
        let exit = m.block();
        let i = m.copy(Const(0));
        m.jump(head);
        m.select(head);
        let c = m.cmp(oha_ir::CmpOp::Lt, R(i), R(n));
        m.branch(R(c), body, exit);
        m.select(body);
        let i1 = m.bin(BinOp::Add, R(i), Const(1));
        m.copy_to(i, R(i1));
        m.jump(head);
        m.select(exit);
        m.output(R(i));
        m.ret(None);
        let main = pb.finish_function(m);
        let p = pb.finish(main).unwrap();

        let mut g = GiriTool::full(&p).with_event_budget(10);
        Machine::new(&p, MachineConfig::default()).run(&[1000], &mut g);
        assert!(
            g.is_exhausted(),
            "a 1000-iteration loop blows a 10-event trace"
        );
        assert_eq!(g.trace_len(), 10);

        let mut g = GiriTool::full(&p).with_event_budget(1_000_000);
        Machine::new(&p, MachineConfig::default()).run(&[1000], &mut g);
        assert!(!g.is_exhausted());
    }

    #[test]
    fn full_tool_traces_every_register_op() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main", 0);
        let a = m.copy(Const(1));
        let b = m.bin(BinOp::Add, R(a), Const(2));
        m.output(R(b));
        m.ret(None);
        let main = pb.finish_function(m);
        let p = pb.finish(main).unwrap();
        let g = run_full(&p, &[]);
        assert_eq!(g.trace_len(), 3);
        assert_eq!(g.counters().elided_events, 0);
    }
}
