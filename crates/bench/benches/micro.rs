//! Criterion micro-benchmarks for the analysis building blocks:
//! FastTrack metadata operations, Bloom-filter context checks, the
//! interpreter's instrumentation dispatch, the Andersen solver and the
//! static slicer, plus the end-to-end dynamic-tool comparison on one
//! benchmark input (the per-tool costs behind Figures 5 and 6).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use oha_core::Pipeline;
use oha_dataflow::BitSet;
use oha_fasttrack::{Detector, FastTrackTool};
use oha_interp::{Addr, Machine, MachineConfig, NoopTracer, ObjId, ThreadId};
use oha_invariants::Bloom;
use oha_ir::InstId;
use oha_pointsto::{analyze, PointsToConfig, Sensitivity};
use oha_races::detect;
use oha_slicing::{slice, SliceConfig};
use oha_workloads::{c_suite, java_suite, WorkloadParams};

fn bench_fasttrack_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("fasttrack");
    g.bench_function("same_epoch_write_fast_path", |b| {
        let mut d = Detector::new();
        let x = Addr::new(ObjId(0), 0);
        d.write(ThreadId(0), x, InstId::new(1));
        b.iter(|| d.write(ThreadId(0), black_box(x), InstId::new(1)));
    });
    g.bench_function("cross_thread_write_check", |b| {
        b.iter_batched(
            || {
                let mut d = Detector::new();
                d.fork(ThreadId(0), ThreadId(1));
                d
            },
            |mut d| {
                for i in 0..64u32 {
                    let x = Addr::new(ObjId(i), 0);
                    d.write(ThreadId(0), x, InstId::new(1));
                    d.write(ThreadId(1), x, InstId::new(2));
                }
                d
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("lock_handoff", |b| {
        let mut d = Detector::new();
        d.fork(ThreadId(0), ThreadId(1));
        let m = Addr::new(ObjId(9), 0);
        b.iter(|| {
            d.acquire(ThreadId(0), black_box(m));
            d.release(ThreadId(0), m);
            d.acquire(ThreadId(1), m);
            d.release(ThreadId(1), m);
        });
    });
    g.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut g = c.benchmark_group("bloom");
    let mut bloom = Bloom::for_elements(4096);
    let mut state = Bloom::seed();
    for i in 0..64u32 {
        state = Bloom::extend(state, i);
        bloom.insert_hash(state);
    }
    g.bench_function("extend_and_check", |b| {
        b.iter(|| {
            let s = Bloom::extend(black_box(state), black_box(17));
            bloom.maybe_contains_hash(s)
        });
    });
    // The naive alternative the paper found too slow: hash a whole chain.
    let chain: Vec<u32> = (0..64).collect();
    g.bench_function("naive_whole_chain_check", |b| {
        b.iter(|| bloom.maybe_contains(black_box(&chain)));
    });
    g.finish();
}

fn bench_bitset(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitset");
    let a: BitSet = (0..4096).step_by(3).collect();
    let d: BitSet = (0..4096).step_by(5).collect();
    g.bench_function("union_4k", |b| {
        b.iter_batched(
            || a.clone(),
            |mut x| {
                x.union_with(black_box(&d));
                x
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("intersects_4k", |b| {
        b.iter(|| black_box(&a).intersects(black_box(&d)));
    });
    g.finish();
}

fn bench_interpreter_dispatch(c: &mut Criterion) {
    let params = WorkloadParams::small();
    let w = c_suite::zlib(&params);
    let machine = Machine::new(&w.program, MachineConfig::default());
    let input = &w.testing_inputs[0];
    let mut g = c.benchmark_group("interpreter");
    g.bench_function("zlib_baseline", |b| {
        b.iter(|| machine.run(black_box(input), &mut NoopTracer));
    });
    g.bench_function("zlib_full_fasttrack", |b| {
        b.iter(|| {
            let mut tool = FastTrackTool::full();
            machine.run(black_box(input), &mut tool)
        });
    });
    g.finish();
}

fn bench_static_analyses(c: &mut Criterion) {
    let params = WorkloadParams::small();
    let w = c_suite::vim(&params);
    let mut g = c.benchmark_group("static");
    g.bench_function("andersen_ci_vim", |b| {
        b.iter(|| analyze(&w.program, &PointsToConfig::default()).unwrap());
    });
    let pipeline = Pipeline::new(w.program.clone());
    let (inv, _) = pipeline.profile(&w.profiling_inputs);
    g.bench_function("andersen_cs_predicated_vim", |b| {
        b.iter(|| {
            analyze(
                &w.program,
                &PointsToConfig {
                    sensitivity: Sensitivity::ContextSensitive,
                    invariants: Some(&inv),
                    ..PointsToConfig::default()
                },
            )
            .unwrap()
        });
    });
    let pt = analyze(&w.program, &PointsToConfig::default()).unwrap();
    g.bench_function("slice_ci_vim", |b| {
        b.iter(|| slice(&w.program, &pt, &w.endpoints, &SliceConfig::default()).unwrap());
    });
    g.bench_function("race_detect_lusearch", |b| {
        let wj = java_suite::lusearch(&params);
        let ptj = analyze(&wj.program, &PointsToConfig::default()).unwrap();
        b.iter(|| detect(&wj.program, &ptj, None));
    });
    g.finish();
}

fn bench_end_to_end_tools(c: &mut Criterion) {
    let params = WorkloadParams::small();
    let w = java_suite::lusearch(&params);
    let pt = analyze(&w.program, &PointsToConfig::default()).unwrap();
    let races_sound = detect(&w.program, &pt, None);
    let pipeline = Pipeline::new(w.program.clone());
    let (inv, _) = pipeline.profile(&w.profiling_inputs);
    let pt_pred = analyze(
        &w.program,
        &PointsToConfig {
            invariants: Some(&inv),
            ..PointsToConfig::default()
        },
    )
    .unwrap();
    let races_pred = detect(&w.program, &pt_pred, Some(&inv));
    let machine = Machine::new(&w.program, MachineConfig::default());
    let input = &w.testing_inputs[0];

    let mut g = c.benchmark_group("tools_lusearch");
    g.bench_function("baseline", |b| {
        b.iter(|| machine.run(black_box(input), &mut NoopTracer));
    });
    g.bench_function("full_fasttrack", |b| {
        b.iter(|| {
            let mut t = FastTrackTool::full();
            machine.run(black_box(input), &mut t)
        });
    });
    g.bench_function("hybrid_fasttrack", |b| {
        b.iter(|| {
            let mut t = FastTrackTool::hybrid(races_sound.racy_sites());
            machine.run(black_box(input), &mut t)
        });
    });
    g.bench_function("optimistic_fasttrack", |b| {
        let elidable = Default::default();
        b.iter(|| {
            let mut t = FastTrackTool::optimistic(races_pred.racy_sites(), &elidable);
            machine.run(black_box(input), &mut t)
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fasttrack_ops, bench_bloom, bench_bitset, bench_interpreter_dispatch, bench_static_analyses, bench_end_to_end_tools
}
criterion_main!(benches);
