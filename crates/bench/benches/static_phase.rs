//! Criterion benchmarks for the static-analysis phase the tentpole
//! optimization targets: the Andersen solver fixpoint (word-parallel
//! difference propagation vs. the naive per-bit reference engine), the
//! backward slicer's transitive closure, and the FastTrack epoch inner
//! loop that consumes the shrunken instrumentation set.
//!
//! Run via `scripts/bench_static.sh` (or `cargo bench --bench
//! static_phase`); `OHA_SMOKE=1` shrinks the workloads for CI.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use oha_core::Pipeline;
use oha_fasttrack::Detector;
use oha_interp::{Addr, ObjId, ThreadId};
use oha_ir::InstId;
use oha_pointsto::{analyze, analyze_reference, PointsToConfig, Sensitivity};
use oha_slicing::{slice, SliceConfig};
use oha_workloads::{c_suite, WorkloadParams};

fn small_params() -> WorkloadParams {
    // Criterion iterates each body many times; unit-test scale keeps a
    // full run under a few minutes while preserving the solver's shape.
    WorkloadParams::small()
}

fn bench_solver_fixpoint(c: &mut Criterion) {
    let params = small_params();
    let mut g = c.benchmark_group("solver_fixpoint");
    for w in [c_suite::vim(&params), c_suite::go(&params)] {
        let (inv, _) = Pipeline::new(w.program.clone()).profile(&w.profiling_inputs);
        let pred = PointsToConfig {
            sensitivity: Sensitivity::ContextSensitive,
            invariants: Some(&inv),
            ..PointsToConfig::default()
        };
        g.bench_function(&format!("optimized_sound_ci_{}", w.name), |b| {
            b.iter(|| analyze(black_box(&w.program), &PointsToConfig::default()).unwrap());
        });
        g.bench_function(&format!("reference_sound_ci_{}", w.name), |b| {
            b.iter(|| {
                analyze_reference(black_box(&w.program), &PointsToConfig::default()).unwrap()
            });
        });
        g.bench_function(&format!("optimized_pred_cs_{}", w.name), |b| {
            b.iter(|| analyze(black_box(&w.program), &pred).unwrap());
        });
        g.bench_function(&format!("reference_pred_cs_{}", w.name), |b| {
            b.iter(|| analyze_reference(black_box(&w.program), &pred).unwrap());
        });
    }
    g.finish();
}

fn bench_slicer_closure(c: &mut Criterion) {
    let params = small_params();
    let w = c_suite::vim(&params);
    let pt = analyze(&w.program, &PointsToConfig::default()).unwrap();
    let mut g = c.benchmark_group("slicer_closure");
    g.bench_function("transitive_closure_vim", |b| {
        b.iter(|| {
            slice(
                &w.program,
                &pt,
                black_box(&w.endpoints),
                &SliceConfig::default(),
            )
            .unwrap()
        });
    });
    g.finish();
}

fn bench_fasttrack_epoch_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("fasttrack_epoch");
    g.bench_function("same_epoch_rw_loop", |b| {
        let mut d = Detector::new();
        d.fork(ThreadId(0), ThreadId(1));
        let addrs: Vec<Addr> = (0..256u32).map(|i| Addr::new(ObjId(i), 0)).collect();
        for &a in &addrs {
            d.write(ThreadId(0), a, InstId::new(1));
        }
        b.iter(|| {
            for &a in &addrs {
                d.write(ThreadId(0), black_box(a), InstId::new(1));
                d.read(ThreadId(0), black_box(a), InstId::new(2));
            }
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_solver_fixpoint, bench_slicer_closure, bench_fasttrack_epoch_loop
}
criterion_main!(benches);
