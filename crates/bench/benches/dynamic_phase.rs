//! Criterion benchmarks for the dynamic-phase fast path: the interpreter
//! step loop (pre-decoded operand/callee resolution, plan-gated dispatch),
//! FastTrack's same-epoch fast path over dense vs spill-map shadow memory,
//! and Giri's per-event append path.
//!
//! Run via `cargo bench --bench dynamic_phase`; `OHA_SMOKE=1` shrinks the
//! workloads for CI. The fast/reference pairs force the process-global
//! toggle around construction only — layouts are fixed at construction
//! time, so the measured loops never consult the toggle.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use oha_fasttrack::{Detector, FastTrackTool};
use oha_giri::GiriTool;
use oha_interp::{fastpath, Addr, Machine, MachineConfig, NoopTracer, ObjId, ThreadId};
use oha_ir::InstId;
use oha_workloads::{c_suite, java_suite, WorkloadParams};

fn small_params() -> WorkloadParams {
    // Criterion iterates each body many times; unit-test scale keeps a
    // full run under a few minutes while preserving the loop shapes.
    WorkloadParams::small()
}

/// Runs `f` with the fast path forced, clearing the override after.
fn forced<T>(fast: bool, f: impl FnOnce() -> T) -> T {
    fastpath::force(Some(fast));
    let out = f();
    fastpath::force(None);
    out
}

fn bench_step_loop(c: &mut Criterion) {
    let params = small_params();
    let mut g = c.benchmark_group("step_loop");
    for w in [java_suite::lusearch(&params), c_suite::vim(&params)] {
        let machine = Machine::new(&w.program, MachineConfig::default());
        let input = &w.testing_inputs[0];
        // Uninstrumented interpretation: the floor every analysis pays.
        g.bench_function(&format!("noop_{}", w.name), |b| {
            b.iter(|| machine.run(black_box(input), &mut NoopTracer));
        });
        // Full FastTrack with and without a (dispatch-everything) plan:
        // the plan's per-site mask load is the only difference.
        let plan = FastTrackTool::plan_for(&w.program, None, None);
        g.bench_function(&format!("fasttrack_planned_{}", w.name), |b| {
            b.iter(|| {
                let mut tool = FastTrackTool::full();
                machine.run_with_plan(black_box(input), &mut tool, Some(&plan));
                plan.take_elisions();
            });
        });
        g.bench_function(&format!("fasttrack_unplanned_{}", w.name), |b| {
            b.iter(|| {
                let mut tool = FastTrackTool::full();
                machine.run(black_box(input), &mut tool);
            });
        });
    }
    g.finish();
}

fn bench_fasttrack_epoch_fast_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("fasttrack_shadow");
    for (label, fast) in [("dense", true), ("spill", false)] {
        g.bench_function(&format!("same_epoch_rw_{label}"), |b| {
            let mut d = forced(fast, Detector::new);
            d.fork(ThreadId(0), ThreadId(1));
            let addrs: Vec<Addr> = (0..256u32).map(|i| Addr::new(ObjId(i), 0)).collect();
            for &a in &addrs {
                d.write(ThreadId(0), a, InstId::new(1));
            }
            b.iter(|| {
                for &a in &addrs {
                    d.write(ThreadId(0), black_box(a), InstId::new(1));
                    d.read(ThreadId(0), black_box(a), InstId::new(2));
                }
            });
        });
    }
    g.finish();
}

fn bench_giri_event_append(c: &mut Criterion) {
    let params = small_params();
    let w = c_suite::go(&params);
    let machine = Machine::new(&w.program, MachineConfig::default());
    let input = &w.testing_inputs[0];
    let mut g = c.benchmark_group("giri_append");
    for (label, fast) in [("dense", true), ("spill", false)] {
        g.bench_function(&format!("full_trace_{label}_{}", w.name), |b| {
            b.iter(|| {
                let mut tool = forced(fast, || GiriTool::full(&w.program));
                machine.run(black_box(input), &mut tool);
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_step_loop, bench_fasttrack_epoch_fast_path, bench_giri_event_append
}
criterion_main!(benches);
