//! Shared harness code for regenerating the paper's tables and figures.
//!
//! Each `src/bin/figN_*.rs` / `src/bin/tableN_*.rs` binary reproduces one
//! table or figure; see DESIGN.md's experiment index. This library holds
//! the pieces they share: suite configuration, duration formatting,
//! plain-text table rendering, and the `--json <path>` report plumbing
//! ([`Reporter`]) that turns each binary's output into a machine-readable
//! [`RunReport`].

use std::path::{Path, PathBuf};
use std::time::Duration;

use oha_core::{Pipeline, PipelineConfig};
use oha_interp::MachineConfig;
use oha_obs::{Json, RunReport, TableArtifact, TraceLog, DEFAULT_TRACE_CAPACITY};
use oha_par::Pool;
use oha_workloads::{Workload, WorkloadParams};

/// Whether the `OHA_SMOKE` environment variable selects the small
/// CI-smoke workload scale (any non-empty value other than `0`).
pub fn smoke_mode() -> bool {
    std::env::var("OHA_SMOKE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// The workload scale used by every figure/table binary: the benchmark
/// scale, or the sub-second unit-test scale under `OHA_SMOKE` (the CI
/// bench-smoke stage in `ci.sh`).
pub fn params() -> WorkloadParams {
    if smoke_mode() {
        WorkloadParams::small()
    } else {
        WorkloadParams::benchmark()
    }
}

/// Host metadata recorded in every benchmark artifact, collected once
/// here so the bench binaries and the `scripts/bench_*.sh` aggregators
/// can never disagree: the thread budget
/// [`std::thread::available_parallelism`] actually reports (the
/// process's affinity mask, not the machine's raw core count), the
/// OS/architecture pair, and the cargo profile this binary was built
/// with — a `debug`-profile timing artifact is a bug worth catching.
pub fn host_meta() -> Vec<(&'static str, String)> {
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    vec![
        (
            "available_parallelism",
            oha_par::hardware_threads().to_string(),
        ),
        ("os", std::env::consts::OS.to_string()),
        ("arch", std::env::consts::ARCH.to_string()),
        ("cargo_profile", profile.to_string()),
    ]
}

/// [`host_meta`] as the `"host"` object benchmark artifacts embed.
/// `available_parallelism` stays numeric; the rest are strings.
pub fn host_json() -> Json {
    Json::Obj(
        host_meta()
            .into_iter()
            .map(|(key, value)| {
                let json = match value.parse::<f64>() {
                    Ok(n) if key == "available_parallelism" => Json::num(n),
                    _ => Json::str(value),
                };
                (key.to_string(), json)
            })
            .collect(),
    )
}

/// The pipeline configuration used by the OptFT experiments.
pub fn optft_config() -> PipelineConfig {
    PipelineConfig {
        machine: MachineConfig::default(),
        ..PipelineConfig::default()
    }
}

/// The pipeline configuration used by the OptSlice experiments.
///
/// The context budget models the paper's fixed memory/time limit: analyses
/// whose clone count exceeds it "fail to complete" and fall back to the
/// context-insensitive variant. It is sized between the predicated and
/// sound context-space sizes of the `vim`/`nginx`-class benchmarks (see
/// `probe_contexts`).
pub fn optslice_config() -> PipelineConfig {
    PipelineConfig {
        machine: MachineConfig::default(),
        ctx_budget: optslice_ctx_budget(),
        ..PipelineConfig::default()
    }
}

/// The OptSlice context budget (kept visible for the probe binary).
///
/// Calibrated by `probe_contexts`: sound CS analyses of nginx/redis/perl/
/// vim/go materialize 750–4200 contexts, their predicated counterparts
/// 5–280 — except `go`, whose realized context space (~380) is nearly as
/// wide as its static one, so even the predicated analysis falls back to
/// CI (Table 2's go row).
pub fn optslice_ctx_budget() -> u32 {
    320
}

/// Builds a [`Pipeline`] for a workload with the given config.
pub fn pipeline(w: &oha_workloads::Workload, config: PipelineConfig) -> Pipeline {
    Pipeline::new(w.program.clone()).with_config(config)
}

/// Builds a [`Pipeline`] that records into `trace` (a no-op when the log
/// is disabled), minting a fresh trace ID so each workload's spans form
/// their own causally-linked tree in the exported file.
pub fn traced_pipeline(
    w: &oha_workloads::Workload,
    config: PipelineConfig,
    trace: &TraceLog,
) -> Pipeline {
    let mut p = pipeline(w, config);
    if trace.is_enabled() {
        p = p.with_trace(trace.clone());
        p.metrics().begin_trace();
    }
    p
}

/// Formats a duration in adaptive units.
pub fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

/// Formats an optional break-even time (`None` = the paper's "–").
pub fn fmt_break_even(t: Option<f64>) -> String {
    match t {
        None => "–".to_string(),
        Some(t) if t <= 0.0 => "0s".to_string(),
        Some(t) => format!("{t:.2}s"),
    }
}

/// Renders rows as a fixed-width text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(ncols) {
            widths[c] = widths[c].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (c, cell) in cells.iter().enumerate() {
            if c > 0 {
                line.push_str("  ");
            }
            line.push_str(cell);
            for _ in cell.chars().count()..widths[c] {
                line.push(' ');
            }
        }
        line.trim_end().to_string()
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Command-line options shared by every figure/table binary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BenchArgs {
    /// Destination for the machine-readable run report (`--json <path>`).
    pub json: Option<PathBuf>,
    /// Destination for the Chrome trace-event export (`--trace-out <path>`).
    pub trace_out: Option<PathBuf>,
}

/// Parses the shared options from an explicit argument list. Accepts
/// `--json <path>`/`--json=<path>` and `--trace-out <path>`/
/// `--trace-out=<path>`; anything else is ignored so the binaries keep
/// working under external harnesses that add flags.
pub fn parse_args_from(args: impl IntoIterator<Item = String>) -> BenchArgs {
    let mut parsed = BenchArgs::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        for (flag, slot) in [
            ("--json", &mut parsed.json),
            ("--trace-out", &mut parsed.trace_out),
        ] {
            if arg == flag {
                match it.next() {
                    Some(path) => *slot = Some(PathBuf::from(path)),
                    None => {
                        eprintln!("{flag} requires a path argument");
                        std::process::exit(2);
                    }
                }
            } else if let Some(path) = arg.strip_prefix(&format!("{flag}=")) {
                *slot = Some(PathBuf::from(path));
            }
        }
    }
    parsed
}

/// Parses the shared options from the process arguments.
pub fn bench_args() -> BenchArgs {
    parse_args_from(std::env::args().skip(1))
}

/// Collects one binary's output — tables, metadata, per-workload child
/// reports — and writes it as stable JSON when `--json` was given.
///
/// Typical shape: create one per `main`, call [`Reporter::table`] instead
/// of a bare [`render_table`] (it both records the table artifact and
/// returns the rendered text), attach each workload's
/// [`RunReport`] via [`Reporter::child`], and end with
/// [`Reporter::finish`].
#[derive(Debug)]
pub struct Reporter {
    report: RunReport,
    json: Option<PathBuf>,
    trace: TraceLog,
    trace_out: Option<PathBuf>,
}

impl Reporter {
    /// A reporter named after the experiment, honoring the process's
    /// `--json` and `--trace-out` flags.
    pub fn new(name: &str) -> Self {
        Self::with_args(name, &bench_args())
    }

    /// A reporter with explicit options (for tests).
    pub fn with_args(name: &str, args: &BenchArgs) -> Self {
        // $OHA_TRACE sizes the ring; --trace-out alone also turns
        // tracing on so the flag is sufficient by itself.
        let mut trace = TraceLog::from_env();
        if args.trace_out.is_some() && !trace.is_enabled() {
            trace = TraceLog::enabled(DEFAULT_TRACE_CAPACITY);
        }
        let mut report = RunReport::new(name);
        // Every artifact self-describes the machine it ran on.
        for (key, value) in host_meta() {
            report.meta.insert(format!("host.{key}"), value);
        }
        Self {
            report,
            json: args.json.clone(),
            trace,
            trace_out: args.trace_out.clone(),
        }
    }

    /// The event log experiment pipelines should record into (disabled —
    /// and free — unless `--trace-out` or `$OHA_TRACE` asked for it).
    /// Pass it to [`traced_pipeline`].
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Records a metadata key/value pair.
    pub fn meta(&mut self, key: &str, value: impl ToString) {
        self.report.meta.insert(key.to_string(), value.to_string());
    }

    /// Fans the per-workload experiment out over the `OHA_THREADS`-sized
    /// pool. `run` executes once per workload on a worker thread and
    /// returns the workload's child [`RunReport`] plus whatever payload
    /// the caller needs for its table rows; children are attached and
    /// `(workload, payload)` pairs returned **in suite order** regardless
    /// of completion order, so the rendered table and the `--json`
    /// artifact are byte-identical to a serial run (timings aside).
    pub fn run_workloads_parallel<R, F>(
        &mut self,
        workloads: Vec<Workload>,
        run: F,
    ) -> Vec<(Workload, R)>
    where
        R: Send,
        F: Fn(&Workload) -> (RunReport, R) + Sync,
    {
        let results = Pool::from_env().par_map(&workloads, run);
        workloads
            .into_iter()
            .zip(results)
            .map(|(w, (report, payload))| {
                self.child(w.name, report);
                (w, payload)
            })
            .collect()
    }

    /// Records a table artifact and returns its plain-text rendering.
    pub fn table(&mut self, title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
        self.report.tables.push(TableArtifact {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: rows.to_vec(),
        });
        render_table(headers, rows)
    }

    /// Attaches a per-workload child report (phase spans, counters, …),
    /// renamed to the workload for a stable lookup key.
    pub fn child(&mut self, name: &str, mut child: RunReport) {
        child.name = name.to_string();
        self.report.children.push(child);
    }

    /// The report built so far.
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// Writes the JSON artifact if `--json` was given, creating missing
    /// parent directories. A path that still cannot be written is a
    /// clear diagnostic and exit code 1, never a panic.
    pub fn finish(self) {
        if let Some(path) = self.json {
            if let Err(message) = write_json_report(&path, &self.report.to_json_string()) {
                eprintln!("error: {message}");
                std::process::exit(1);
            }
            eprintln!("wrote JSON report to {}", path.display());
        }
        if let Some(path) = self.trace_out {
            if let Err(e) = self.trace.write_chrome_json(&path) {
                eprintln!("error: cannot write trace {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!(
                "wrote Chrome trace ({} events, {} dropped) to {}",
                self.trace.events().len(),
                self.trace.dropped(),
                path.display()
            );
        }
    }
}

/// Writes a `--json` artifact, creating missing parent directories.
/// Shared by [`Reporter::finish`] and the non-`Reporter` binaries so
/// every `--json` flag behaves identically.
///
/// # Errors
///
/// Returns a human-readable message naming the path and the failing
/// step (directory creation vs. file write).
pub fn write_json_report(path: &Path, json: &str) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| {
                format!(
                    "cannot create report directory {} for {}: {e}",
                    parent.display(),
                    path.display()
                )
            })?;
        }
    }
    std::fs::write(path, json)
        .map_err(|e| format!("cannot write JSON report {}: {e}", path.display()))
}

/// Mean of an iterator of f64 (0.0 when empty).
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_dur(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_dur(Duration::from_micros(7)), "7µs");
        assert_eq!(fmt_break_even(None), "–");
        assert_eq!(fmt_break_even(Some(0.0)), "0s");
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean([]), 0.0);
        assert_eq!(mean([2.0, 4.0]), 3.0);
    }

    #[test]
    fn break_even_formats_positive_times() {
        assert_eq!(fmt_break_even(Some(1.5)), "1.50s");
        assert_eq!(fmt_break_even(Some(-3.0)), "0s");
    }

    #[test]
    fn json_flag_parses_in_both_spellings() {
        let args = |v: &[&str]| parse_args_from(v.iter().map(|s| s.to_string()));
        assert_eq!(args(&[]).json, None);
        assert_eq!(
            args(&["--json", "out.json"]).json,
            Some(PathBuf::from("out.json"))
        );
        assert_eq!(
            args(&["--json=x/y.json"]).json,
            Some(PathBuf::from("x/y.json"))
        );
        assert_eq!(args(&["--bench", "--verbose"]).json, None);
        assert_eq!(
            args(&["--trace-out", "t.json"]).trace_out,
            Some(PathBuf::from("t.json"))
        );
        assert_eq!(
            args(&["--trace-out=t.json", "--json", "r.json"]),
            BenchArgs {
                json: Some(PathBuf::from("r.json")),
                trace_out: Some(PathBuf::from("t.json")),
            }
        );
    }

    #[test]
    fn trace_out_enables_the_reporters_trace_log() {
        let env_traced = std::env::var(oha_obs::TRACE_ENV).is_ok_and(|v| !v.is_empty() && v != "0");
        let off = Reporter::with_args("t", &BenchArgs::default());
        if !env_traced {
            assert!(!off.trace().is_enabled(), "tracing is opt-in");
        }
        let args = BenchArgs {
            trace_out: Some(PathBuf::from("t.json")),
            ..BenchArgs::default()
        };
        let on = Reporter::with_args("t", &args);
        assert!(on.trace().is_enabled(), "--trace-out alone enables tracing");
    }

    #[test]
    fn parallel_workloads_keep_suite_order() {
        use oha_workloads::c_suite;
        let params = WorkloadParams::small();
        let names: Vec<&str> = c_suite::all(&params).iter().map(|w| w.name).collect();
        let mut rep = Reporter::with_args("t", &BenchArgs::default());
        let results = rep.run_workloads_parallel(c_suite::all(&params), |w| {
            (RunReport::new("child"), w.name.to_string())
        });
        assert_eq!(
            results.iter().map(|(w, _)| w.name).collect::<Vec<_>>(),
            names,
            "workload order must match the suite"
        );
        assert_eq!(
            results.iter().map(|(_, p)| p.as_str()).collect::<Vec<_>>(),
            names,
            "payloads must stay aligned with their workloads"
        );
        assert_eq!(
            rep.report()
                .children
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            names,
            "child report order must match the suite"
        );
    }

    #[test]
    fn host_meta_names_the_machine_and_profile() {
        let meta = host_meta();
        let get = |key: &str| {
            meta.iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("host_meta missing {key}"))
        };
        assert!(get("available_parallelism").parse::<usize>().unwrap() >= 1);
        assert_eq!(get("os"), std::env::consts::OS);
        assert_eq!(get("arch"), std::env::consts::ARCH);
        // Tests build with debug assertions in every profile this repo's
        // CI uses, so pin only the value set, not the value.
        assert!(["debug", "release"].contains(&get("cargo_profile").as_str()));

        let json = host_json();
        assert_eq!(
            json.get("available_parallelism").and_then(Json::as_u64),
            Some(get("available_parallelism").parse().unwrap()),
            "parallelism must stay numeric in the JSON form"
        );
        assert_eq!(
            json.get("os").and_then(Json::as_str),
            Some(std::env::consts::OS)
        );
        // The object round-trips through the parser.
        assert_eq!(Json::parse(&json.to_string_compact()).unwrap(), json);
    }

    #[test]
    fn reporter_records_host_meta_automatically() {
        let rep = Reporter::with_args("t", &BenchArgs::default());
        for (key, value) in host_meta() {
            assert_eq!(
                rep.report().meta.get(&format!("host.{key}")),
                Some(&value),
                "reporter must carry host.{key}"
            );
        }
    }

    #[test]
    fn json_reports_create_missing_parent_dirs() {
        let root = std::env::temp_dir().join(format!("oha-bench-json-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let nested = root.join("a/b/report.json");
        write_json_report(&nested, "{}").unwrap();
        assert_eq!(std::fs::read_to_string(&nested).unwrap(), "{}");
        // A path whose parent is an existing *file* cannot be created:
        // the error names the path instead of panicking.
        let blocked = nested.join("under-a-file.json");
        let message = write_json_report(&blocked, "{}").unwrap_err();
        assert!(message.contains("under-a-file.json"), "{message}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn reporter_accumulates_tables_and_children() {
        let mut rep = Reporter::with_args("fig0", &BenchArgs::default());
        rep.meta("suite", "test");
        let text = rep.table("t", &["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(text.starts_with("a"));
        rep.child("w1", RunReport::new("inner"));
        let r = rep.report();
        assert_eq!(r.name, "fig0");
        assert_eq!(r.meta["suite"], "test");
        assert_eq!(r.tables.len(), 1);
        assert_eq!(r.children[0].name, "w1");
        // The artifact round-trips through the stable JSON form.
        let json = r.to_json_string();
        assert_eq!(&RunReport::from_json_str(&json).unwrap(), r);
    }
}
