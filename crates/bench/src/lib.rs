//! Shared harness code for regenerating the paper's tables and figures.
//!
//! Each `src/bin/figN_*.rs` / `src/bin/tableN_*.rs` binary reproduces one
//! table or figure; see DESIGN.md's experiment index. This library holds
//! the pieces they share: suite configuration, duration formatting and
//! plain-text table rendering.

use std::time::Duration;

use oha_core::{Pipeline, PipelineConfig};
use oha_interp::MachineConfig;
use oha_workloads::WorkloadParams;

/// The workload scale used by every figure/table binary.
pub fn params() -> WorkloadParams {
    WorkloadParams::benchmark()
}

/// The pipeline configuration used by the OptFT experiments.
pub fn optft_config() -> PipelineConfig {
    PipelineConfig {
        machine: MachineConfig::default(),
        ..PipelineConfig::default()
    }
}

/// The pipeline configuration used by the OptSlice experiments.
///
/// The context budget models the paper's fixed memory/time limit: analyses
/// whose clone count exceeds it "fail to complete" and fall back to the
/// context-insensitive variant. It is sized between the predicated and
/// sound context-space sizes of the `vim`/`nginx`-class benchmarks (see
/// `probe_contexts`).
pub fn optslice_config() -> PipelineConfig {
    PipelineConfig {
        machine: MachineConfig::default(),
        ctx_budget: optslice_ctx_budget(),
        ..PipelineConfig::default()
    }
}

/// The OptSlice context budget (kept visible for the probe binary).
///
/// Calibrated by `probe_contexts`: sound CS analyses of nginx/redis/perl/
/// vim/go materialize 750–4200 contexts, their predicated counterparts
/// 5–280 — except `go`, whose realized context space (~380) is nearly as
/// wide as its static one, so even the predicated analysis falls back to
/// CI (Table 2's go row).
pub fn optslice_ctx_budget() -> u32 {
    320
}

/// Builds a [`Pipeline`] for a workload with the given config.
pub fn pipeline(w: &oha_workloads::Workload, config: PipelineConfig) -> Pipeline {
    Pipeline::new(w.program.clone()).with_config(config)
}

/// Formats a duration in adaptive units.
pub fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

/// Formats an optional break-even time (`None` = the paper's "–").
pub fn fmt_break_even(t: Option<f64>) -> String {
    match t {
        None => "–".to_string(),
        Some(t) if t <= 0.0 => "0s".to_string(),
        Some(t) => format!("{t:.2}s"),
    }
}

/// Renders rows as a fixed-width text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(ncols) {
            widths[c] = widths[c].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (c, cell) in cells.iter().enumerate() {
            if c > 0 {
                line.push_str("  ");
            }
            line.push_str(cell);
            for _ in cell.chars().count()..widths[c] {
                line.push(' ');
            }
        }
        line.trim_end().to_string()
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Mean of an iterator of f64 (0.0 when empty).
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_dur(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_dur(Duration::from_micros(7)), "7µs");
        assert_eq!(fmt_break_even(None), "–");
        assert_eq!(fmt_break_even(Some(0.0)), "0s");
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean([]), 0.0);
        assert_eq!(mean([2.0, 4.0]), 3.0);
    }
}
