//! Solver probe: times the static points-to phase per workload and prints
//! one JSON object with wall times and solver statistics. This is the
//! driver behind `scripts/bench_static.sh` (which wraps the output with
//! host metadata into `BENCH_static.json`).
//!
//! Two configurations per workload, matching the phases the paper's
//! pipeline actually runs:
//!
//! * `sound_ci` — context-insensitive analysis with no invariants;
//! * `pred_cs` — the predicated context-sensitive analysis (profile-derived
//!   invariants), the phase the tentpole optimization targets.
//!
//! Each configuration is probed once per pool width in `THREAD_SWEEP`, so
//! the report carries per-thread-count rows (the `threads` field). The
//! adaptive serial cutoff stays live: micro workloads route through the
//! serial path at every width (`sharded_solves == 0`), which is exactly
//! the regression guard the cutoff exists for.
//!
//! With `--reference`, the 1-thread row of each configuration is also
//! solved by the naive iterate-to-fixpoint reference solver
//! (`analyze_reference`) — the seed's per-bit propagation strategy — so
//! the word-parallel speedup is measured against a live baseline rather
//! than asserted from memory.

use std::time::Instant;

use oha_core::Pipeline;
use oha_par::Pool;
use oha_pointsto::{analyze, analyze_reference, PointsTo, PointsToConfig, Sensitivity};
use oha_workloads::{c_suite, java_suite, Workload};

/// Pool widths probed per configuration. The reference engine is serial,
/// so it only accompanies the 1-thread row.
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

struct Sample {
    config: &'static str,
    threads: usize,
    optimized_s: f64,
    reference_s: Option<f64>,
    iterations: u64,
    cycle_collapses: u64,
    scc_collapses: u64,
    words_unioned: u64,
    worklist_pops: u64,
    serial_solves: u64,
    sharded_solves: u64,
    shard_rounds: u64,
}

/// Times `run` with adaptive repetition: slow calls are timed once, but a
/// call that finishes in microseconds is re-run (warm) enough times to
/// fill ~4 ms, each rep timed individually, and the *minimum* reported —
/// single-shot timings at that scale measure allocator and cache luck,
/// and block averages absorb scheduler/contention spikes wholesale. The
/// fastest rep is the run least perturbed by the host, which is the
/// estimator the optimized-vs-reference ratio needs on a shared machine.
fn timed<T>(mut run: impl FnMut() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = run();
    let first = start.elapsed().as_secs_f64();
    if first >= 2e-3 {
        return (first, out);
    }
    let reps = ((4e-3 / first.max(1e-7)) as u32).clamp(3, 500);
    let mut best = first;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(run());
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, out)
}

/// Times the optimized and reference engines *interleaved*, rep by rep,
/// each reported as its own minimum. Timing the two in separate blocks
/// lets a host slowdown land entirely inside one engine's window and
/// masquerade as a 10–20% engine difference; alternating reps makes both
/// engines sample the same noise, so the ratio reflects the engines.
fn timed_pair<T>(mut opt: impl FnMut() -> T, mut reference: impl FnMut() -> T) -> (f64, f64, T) {
    let start = Instant::now();
    let out = opt();
    let mut best_opt = start.elapsed().as_secs_f64();
    let start = Instant::now();
    std::hint::black_box(reference());
    let mut best_ref = start.elapsed().as_secs_f64();
    let pair = best_opt + best_ref;
    if pair >= 4e-3 {
        return (best_opt, best_ref, out);
    }
    let reps = ((8e-3 / pair.max(1e-7)) as u32).clamp(3, 500);
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(opt());
        best_opt = best_opt.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        std::hint::black_box(reference());
        best_ref = best_ref.min(start.elapsed().as_secs_f64());
    }
    (best_opt, best_ref, out)
}

fn time_analyze(
    w: &Workload,
    config: &PointsToConfig<'_>,
    reference: bool,
) -> (f64, Option<f64>, PointsTo) {
    if reference {
        let (optimized_s, reference_s, pt) = timed_pair(
            || analyze(&w.program, config).expect("solver budget"),
            || analyze_reference(&w.program, config).expect("reference solver budget"),
        );
        (optimized_s, Some(reference_s), pt)
    } else {
        let (optimized_s, pt) = timed(|| analyze(&w.program, config).expect("solver budget"));
        (optimized_s, None, pt)
    }
}

fn probe(w: &Workload, reference: bool) -> Vec<Sample> {
    let mut samples = Vec::new();

    // The predicated phase's inputs: profile-derived invariants.
    let (inv, _) = Pipeline::new(w.program.clone()).profile(&w.profiling_inputs);

    for threads in THREAD_SWEEP {
        let pool = Pool::new(threads);

        let sound = PointsToConfig {
            pool,
            ..PointsToConfig::default()
        };
        let (optimized_s, reference_s, pt) = time_analyze(w, &sound, reference && threads == 1);
        samples.push(sample("sound_ci", threads, optimized_s, reference_s, &pt));

        // The predicated phase: invariants + bottom-up cloning.
        let pred = PointsToConfig {
            sensitivity: Sensitivity::ContextSensitive,
            invariants: Some(&inv),
            pool,
            ..PointsToConfig::default()
        };
        let (optimized_s, reference_s, pt) = time_analyze(w, &pred, reference && threads == 1);
        samples.push(sample("pred_cs", threads, optimized_s, reference_s, &pt));
    }
    samples
}

fn sample(
    config: &'static str,
    threads: usize,
    optimized_s: f64,
    reference_s: Option<f64>,
    pt: &PointsTo,
) -> Sample {
    let stats = pt.stats();
    Sample {
        config,
        threads,
        optimized_s,
        reference_s,
        iterations: stats.solver_iterations,
        cycle_collapses: stats.cycle_collapses,
        scc_collapses: stats.scc_collapses,
        words_unioned: stats.words_unioned,
        worklist_pops: stats.worklist_pops,
        serial_solves: stats.serial_solves,
        sharded_solves: stats.sharded_solves,
        shard_rounds: stats.shard_rounds,
    }
}

fn main() {
    let reference = std::env::args().any(|a| a == "--reference");
    let json = oha_bench::bench_args().json;
    let params = oha_bench::params();
    let workloads: Vec<Workload> = java_suite::all(&params)
        .into_iter()
        .chain(c_suite::all(&params))
        .collect();

    let mut entries = Vec::new();
    for w in &workloads {
        eprintln!("probe: {}", w.name);
        for s in probe(w, reference) {
            let reference_s = match s.reference_s {
                Some(t) => format!("{t:.6}"),
                None => "null".to_string(),
            };
            entries.push(format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"config\": \"{}\", ",
                    "\"threads\": {}, ",
                    "\"optimized_s\": {:.6}, \"reference_s\": {}, ",
                    "\"iterations\": {}, \"cycle_collapses\": {}, ",
                    "\"scc_collapses\": {}, \"words_unioned\": {}, ",
                    "\"worklist_pops\": {}, \"serial_solves\": {}, ",
                    "\"sharded_solves\": {}, \"shard_rounds\": {}}}"
                ),
                w.name,
                s.config,
                s.threads,
                s.optimized_s,
                reference_s,
                s.iterations,
                s.cycle_collapses,
                s.scc_collapses,
                s.words_unioned,
                s.worklist_pops,
                s.serial_solves,
                s.sharded_solves,
                s.shard_rounds,
            ));
        }
    }
    let report = format!(
        "{{\n  \"samples\": [\n{}\n  ],\n  \"host\": {}\n}}",
        entries.join(",\n"),
        oha_bench::host_json().to_string_compact()
    );
    println!("{report}");
    // `--json` mirrors the stdout object to a file with the same
    // parent-dir creation and diagnostics as every Reporter-based bin.
    if let Some(path) = json {
        if let Err(message) = oha_bench::write_json_report(&path, &report) {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
        eprintln!("wrote JSON report to {}", path.display());
    }
}
