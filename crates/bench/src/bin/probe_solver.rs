//! Solver probe: times the static points-to phase per workload and prints
//! one JSON object with wall times and solver statistics. This is the
//! driver behind `scripts/bench_static.sh` (which wraps the output with
//! host metadata into `BENCH_static.json`).
//!
//! Two configurations per workload, matching the phases the paper's
//! pipeline actually runs:
//!
//! * `sound_ci` — context-insensitive analysis with no invariants;
//! * `pred_cs` — the predicated context-sensitive analysis (profile-derived
//!   invariants), the phase the tentpole optimization targets.
//!
//! With `--reference`, each configuration is also solved by the naive
//! iterate-to-fixpoint reference solver (`analyze_reference`) — the seed's
//! per-bit propagation strategy — so the word-parallel speedup is measured
//! against a live baseline rather than asserted from memory.

use std::time::Instant;

use oha_core::Pipeline;
use oha_pointsto::{analyze, analyze_reference, PointsTo, PointsToConfig, Sensitivity};
use oha_workloads::{c_suite, java_suite, Workload};

struct Sample {
    config: &'static str,
    optimized_s: f64,
    reference_s: Option<f64>,
    iterations: u64,
    cycle_collapses: u64,
    scc_collapses: u64,
    words_unioned: u64,
    worklist_pops: u64,
}

fn time_analyze(
    w: &Workload,
    config: &PointsToConfig<'_>,
    reference: bool,
) -> (f64, Option<f64>, PointsTo) {
    let start = Instant::now();
    let pt = analyze(&w.program, config).expect("solver budget");
    let optimized_s = start.elapsed().as_secs_f64();
    let reference_s = reference.then(|| {
        let start = Instant::now();
        let _ = analyze_reference(&w.program, config).expect("reference solver budget");
        start.elapsed().as_secs_f64()
    });
    (optimized_s, reference_s, pt)
}

fn probe(w: &Workload, reference: bool) -> Vec<Sample> {
    let mut samples = Vec::new();

    let sound = PointsToConfig::default();
    let (optimized_s, reference_s, pt) = time_analyze(w, &sound, reference);
    samples.push(sample("sound_ci", optimized_s, reference_s, &pt));

    // The predicated phase: profile-derived invariants + bottom-up cloning.
    let (inv, _) = Pipeline::new(w.program.clone()).profile(&w.profiling_inputs);
    let pred = PointsToConfig {
        sensitivity: Sensitivity::ContextSensitive,
        invariants: Some(&inv),
        ..PointsToConfig::default()
    };
    let (optimized_s, reference_s, pt) = time_analyze(w, &pred, reference);
    samples.push(sample("pred_cs", optimized_s, reference_s, &pt));
    samples
}

fn sample(
    config: &'static str,
    optimized_s: f64,
    reference_s: Option<f64>,
    pt: &PointsTo,
) -> Sample {
    let stats = pt.stats();
    Sample {
        config,
        optimized_s,
        reference_s,
        iterations: stats.solver_iterations,
        cycle_collapses: stats.cycle_collapses,
        scc_collapses: stats.scc_collapses,
        words_unioned: stats.words_unioned,
        worklist_pops: stats.worklist_pops,
    }
}

fn main() {
    let reference = std::env::args().any(|a| a == "--reference");
    let json = oha_bench::bench_args().json;
    let params = oha_bench::params();
    let workloads: Vec<Workload> = java_suite::all(&params)
        .into_iter()
        .chain(c_suite::all(&params))
        .collect();

    let mut entries = Vec::new();
    for w in &workloads {
        eprintln!("probe: {}", w.name);
        for s in probe(w, reference) {
            let reference_s = match s.reference_s {
                Some(t) => format!("{t:.6}"),
                None => "null".to_string(),
            };
            entries.push(format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"config\": \"{}\", ",
                    "\"optimized_s\": {:.6}, \"reference_s\": {}, ",
                    "\"iterations\": {}, \"cycle_collapses\": {}, ",
                    "\"scc_collapses\": {}, \"words_unioned\": {}, ",
                    "\"worklist_pops\": {}}}"
                ),
                w.name,
                s.config,
                s.optimized_s,
                reference_s,
                s.iterations,
                s.cycle_collapses,
                s.scc_collapses,
                s.words_unioned,
                s.worklist_pops,
            ));
        }
    }
    let report = format!(
        "{{\n  \"samples\": [\n{}\n  ],\n  \"host\": {}\n}}",
        entries.join(",\n"),
        oha_bench::host_json().to_string_compact()
    );
    println!("{report}");
    // `--json` mirrors the stdout object to a file with the same
    // parent-dir creation and diagnostics as every Reporter-based bin.
    if let Some(path) = json {
        if let Err(message) = oha_bench::write_json_report(&path, &report) {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
        eprintln!("wrote JSON report to {}", path.display());
    }
}
