//! Calibration probe: context-space sizes of the C-suite benchmarks.
//!
//! Prints the number of contexts a context-sensitive points-to analysis
//! materializes with an effectively unlimited budget, sound vs. predicated.
//! Used to size the Table 2 context budget (`oha_bench::optslice_ctx_budget`).

use oha_bench::{params, Reporter};
use oha_core::Pipeline;
use oha_pointsto::{analyze, PointsToConfig, Sensitivity};
use oha_workloads::c_suite;

fn main() {
    let params = params();
    let mut reporter = Reporter::new("probe_contexts");
    let mut rows = Vec::new();
    for w in c_suite::all(&params) {
        let pipeline = Pipeline::new(w.program.clone());
        let (inv, _) = pipeline.profile(&w.profiling_inputs);
        let count = |invariants| match analyze(
            &w.program,
            &PointsToConfig {
                sensitivity: Sensitivity::ContextSensitive,
                invariants,
                clone_budget: 1_000_000,
                solver_budget: 200_000_000,
                ..Default::default()
            },
        ) {
            Ok(pt) => pt.stats().contexts.to_string(),
            Err(e) => format!("exhausted ({e})"),
        };
        rows.push(vec![
            w.name.to_string(),
            w.program.num_insts().to_string(),
            count(None),
            count(Some(&inv)),
        ]);
    }
    println!(
        "{}",
        reporter.table(
            "Context-space sizes (sound vs predicated CS points-to)",
            &["bench", "insts", "sound CS ctxs", "pred CS ctxs"],
            &rows
        )
    );
    reporter.finish();
}
