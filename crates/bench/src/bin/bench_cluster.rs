//! Cluster probe: warm-store throughput through `oha-router` at fleet
//! size 1 vs 3, over one shared front socket. This is the driver behind
//! `scripts/bench_cluster.sh` (which wraps repeated runs into
//! `BENCH_cluster.json`).
//!
//! Workers are real `oha-serve` processes resolved from this binary's
//! own directory, so run it from `target/release/` with `oha-serve`
//! built alongside (the script does both). Every measured response is
//! byte-compared against an in-process single-pipeline oracle — the
//! throughput number only counts requests that honored the cluster's
//! identity contract.
//!
//! Honesty note: the fleet multiplies *processes*, not cores. On a host
//! where `available_parallelism` is 1 (the committed artifact's case),
//! the 3-worker figure measures routing + supervision overhead under
//! contention, not scaling — expect speedup near or below 1.0 there,
//! and read the numbers together with the recorded `host` block.

use std::path::Path;
use std::thread;
use std::time::{Duration, Instant};

use oha_bench::Reporter;
use oha_cluster::{Router, RouterConfig, SupervisorConfig, WorkerSpec};
use oha_core::{optft_canonical_json, Pipeline};
use oha_ir::print_program;
use oha_serve::{Client, Tool};
use oha_workloads::c_suite;

/// One distinct request corpus: its inputs and the oracle bytes any
/// worker must return for them.
struct Variant {
    profiling: Vec<Vec<i64>>,
    testing: Vec<Vec<i64>>,
    expected: String,
}

struct FleetResult {
    workers: usize,
    requests: usize,
    elapsed_s: f64,
    rps: f64,
}

fn variants(smoke: bool) -> (String, Vec<Variant>) {
    let params = oha_bench::params();
    let workload = c_suite::all(&params).remove(0);
    let text = print_program(&workload.program);
    let count = if smoke { 4 } else { 8 };
    let variants = (0..count as i64)
        .map(|v| {
            // Perturb the profiling corpus so each variant has a distinct
            // cache key (and therefore its own home shard) while staying
            // in-distribution for the analysis.
            let mut profiling = workload.profiling_inputs.clone();
            profiling.push(vec![1000 + v]);
            let testing = workload.testing_inputs.clone();
            let expected = optft_canonical_json(
                &Pipeline::new(workload.program.clone()).run_optft(&profiling, &testing),
            );
            Variant {
                profiling,
                testing,
                expected,
            }
        })
        .collect();
    (text, variants)
}

fn router_config(workers: usize, dir: &Path) -> RouterConfig {
    RouterConfig {
        socket: dir.join("router.sock"),
        supervisor: SupervisorConfig {
            workers,
            dir: dir.join("fleet"),
            spec: WorkerSpec {
                store_dir: Some(dir.join("store")),
                threads: 2,
                ..WorkerSpec::default()
            },
            health_interval: Duration::from_millis(200),
            ..SupervisorConfig::default()
        },
        ..RouterConfig::default()
    }
}

fn measure_fleet(
    workers: usize,
    text: &str,
    variants: &[Variant],
    clients: usize,
    requests_per_client: usize,
) -> FleetResult {
    let dir = std::env::temp_dir().join(format!(
        "oha-bench-cluster-{}-{workers}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");

    let config = router_config(workers, &dir);
    let socket = config.socket.clone();
    let router = Router::bind(config).expect("start cluster");
    let router_thread = thread::spawn(move || router.run().expect("router loop"));

    // Warm phase: one pass over the corpus fills the shared store and
    // each home worker's LRU, so the timed loop measures the steady
    // state a long-lived fleet serves from. Scoped so the connection
    // closes before drain.
    {
        let mut warm = Client::connect(&socket).expect("connect");
        for v in variants {
            let response = warm
                .analyze(Tool::OptFt, text, &v.profiling, &v.testing, &[])
                .expect("warm request");
            assert!(response.ok, "warm request failed: {}", response.body);
            assert_eq!(&response.body, &v.expected, "warm bytes diverged");
        }
    }

    let start = Instant::now();
    thread::scope(|scope| {
        for c in 0..clients {
            let socket = &socket;
            scope.spawn(move || {
                let mut client = Client::connect(socket).expect("connect");
                for i in 0..requests_per_client {
                    let v = &variants[(c * requests_per_client + i) % variants.len()];
                    let response = client
                        .analyze(Tool::OptFt, text, &v.profiling, &v.testing, &[])
                        .expect("request");
                    assert!(response.ok, "request failed: {}", response.body);
                    assert_eq!(
                        &response.body, &v.expected,
                        "cluster bytes diverged from the oracle"
                    );
                }
            });
        }
    });
    let elapsed_s = start.elapsed().as_secs_f64();

    {
        let mut client = Client::connect(&socket).expect("connect");
        let shutdown = client.shutdown().expect("shutdown");
        assert!(shutdown.ok);
    }
    let stats = router_thread.join().expect("router thread");
    assert_eq!(stats.router_errors, 0, "router recorded errors");

    let _ = std::fs::remove_dir_all(&dir);
    let requests = clients * requests_per_client;
    FleetResult {
        workers,
        requests,
        elapsed_s,
        rps: requests as f64 / elapsed_s,
    }
}

fn main() {
    let smoke = oha_bench::smoke_mode();
    let (clients, requests_per_client) = if smoke { (4, 6) } else { (8, 40) };
    let (text, variants) = variants(smoke);

    let mut reporter = Reporter::new("bench_cluster");
    reporter.meta("clients", clients);
    reporter.meta("requests_per_client", requests_per_client);
    reporter.meta("variants", variants.len());
    reporter.meta(
        "comparison",
        "warm-store OptFT requests through oha-router, fleet of 1 vs 3 \
         oha-serve workers over one shared store; every response is \
         byte-compared against an in-process pipeline oracle",
    );
    reporter.meta(
        "caveat",
        format!(
            "fleet size multiplies processes, not cores; with \
             available_parallelism={} the 3-worker figure measures routing \
             and supervision overhead under contention, not scaling",
            oha_par::hardware_threads()
        ),
    );

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for workers in [1usize, 3] {
        eprintln!("bench_cluster: fleet of {workers}");
        let r = measure_fleet(workers, &text, &variants, clients, requests_per_client);
        rows.push(vec![
            r.workers.to_string(),
            r.requests.to_string(),
            format!("{:.4}", r.elapsed_s),
            format!("{:.1}", r.rps),
        ]);
        results.push(r);
    }

    let (one, three) = (&results[0], &results[1]);
    reporter.meta("cluster.one_worker_rps", format!("{:.1}", one.rps));
    reporter.meta("cluster.three_worker_rps", format!("{:.1}", three.rps));
    reporter.meta("cluster.speedup", format!("{:.3}", three.rps / one.rps));

    let table = reporter.table(
        "Warm-store throughput through oha-router",
        &["workers", "requests", "elapsed_s", "rps"],
        &rows,
    );
    print!("{table}");
    println!(
        "3-worker vs 1-worker speedup: {:.3}x (see the caveat meta)",
        three.rps / one.rps
    );
    reporter.finish();
}
