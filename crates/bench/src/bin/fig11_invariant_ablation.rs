//! Figure 11: the effect of adding likely invariants one at a time on
//! static slice size — base (sound), +likely-unreachable-code, +likely
//! callee sets, +likely-unused call contexts. The context invariant is the
//! one that unlocks context-sensitive analysis for the vim/nginx class.

use std::collections::BTreeMap;

use oha_bench::{optslice_config, params, Reporter};
use oha_core::Pipeline;
use oha_invariants::InvariantSet;
use oha_ir::{Callee, InstKind, Program};
use oha_pointsto::{analyze, PointsTo, PointsToConfig, Sensitivity};
use oha_slicing::{slice, SliceConfig};
use oha_workloads::c_suite;

/// The sound resolution of every indirect call site, used to neutralize
/// the callee-set predication in ablation steps that exclude it.
fn sound_callees(
    program: &Program,
    pt: &PointsTo,
) -> BTreeMap<oha_ir::InstId, std::collections::BTreeSet<oha_ir::FuncId>> {
    program
        .insts()
        .filter(|i| {
            matches!(
                i.kind,
                InstKind::Call {
                    callee: Callee::Indirect(_),
                    ..
                } | InstKind::Spawn {
                    func: Callee::Indirect(_),
                    ..
                }
            )
        })
        .map(|i| (i.id, pt.callees(i.id).clone()))
        .collect()
}

fn best_slice(
    program: &Program,
    inv: Option<&InvariantSet>,
    cfg: &oha_core::PipelineConfig,
    endpoints: &[oha_ir::InstId],
) -> (usize, &'static str) {
    let pt_cfg = |sens| PointsToConfig {
        sensitivity: sens,
        invariants: inv,
        clone_budget: cfg.ctx_budget,
        solver_budget: cfg.solver_budget,
        ..Default::default()
    };
    let (pt, _pt_at) = match analyze(program, &pt_cfg(Sensitivity::ContextSensitive)) {
        Ok(pt) => (pt, "CS"),
        Err(_) => (
            analyze(program, &pt_cfg(Sensitivity::ContextInsensitive)).expect("CI completes"),
            "CI",
        ),
    };
    let s_cfg = |sens| SliceConfig {
        sensitivity: sens,
        invariants: inv,
        ctx_budget: cfg.ctx_budget,
        visit_budget: cfg.visit_budget,
        ..Default::default()
    };
    match slice(
        program,
        &pt,
        endpoints,
        &s_cfg(Sensitivity::ContextSensitive),
    ) {
        Ok(s) => (s.len(), "CS"),
        Err(_) => (
            slice(
                program,
                &pt,
                endpoints,
                &s_cfg(Sensitivity::ContextInsensitive),
            )
            .expect("CI completes")
            .len(),
            "CI",
        ),
    }
}

fn main() {
    let params = params();
    let cfg = optslice_config();
    let mut reporter = Reporter::new("fig11_invariant_ablation");
    let results = reporter.run_workloads_parallel(c_suite::all(&params), |w| {
        let pipeline = Pipeline::new(w.program.clone()).with_config(cfg.clone());
        let (full_inv, _) = pipeline.profile(&w.profiling_inputs);

        // Base: fully sound.
        let (base, base_at) = best_slice(&w.program, None, &cfg, &w.endpoints);

        // The sound indirect resolution, to isolate LUC from callee sets.
        let pt_sound = analyze(
            &w.program,
            &PointsToConfig {
                clone_budget: cfg.ctx_budget,
                solver_budget: cfg.solver_budget,
                ..PointsToConfig::default()
            },
        )
        .expect("CI completes");
        let sound_sets = sound_callees(&w.program, &pt_sound);

        // +LUC: visited blocks only; indirect calls keep their sound
        // targets; no context assumptions (CI-sized context set defeats CS
        // cloning, so only measure with everything-allowed contexts — we
        // emulate "no context invariant" by inserting every observed AND
        // statically possible context is impossible to enumerate, so the
        // +LUC and +callee steps run context-insensitively, like the
        // paper's pre-context bars).
        let mut luc = InvariantSet {
            visited_blocks: full_inv.visited_blocks.clone(),
            callee_sets: sound_sets.clone(),
            ..InvariantSet::default()
        };
        let (with_luc, _) = best_slice_ci(&w.program, &luc, &cfg, &w.endpoints);

        // +callee sets.
        luc.callee_sets = full_inv.callee_sets.clone();
        let (with_callees, _) = best_slice_ci(&w.program, &luc, &cfg, &w.endpoints);

        // +contexts (the full invariant set): CS becomes possible.
        let (with_ctx, ctx_at) = best_slice(&w.program, Some(&full_inv), &cfg, &w.endpoints);

        let row = vec![
            w.name.to_string(),
            format!("{base} ({base_at})"),
            with_luc.to_string(),
            with_callees.to_string(),
            format!("{with_ctx} ({ctx_at})"),
        ];
        (pipeline.metrics().report(w.name), row)
    });
    let rows: Vec<Vec<String>> = results.into_iter().map(|(_, row)| row).collect();
    println!("Figure 11 — static slice size as invariants are added\n");
    println!(
        "{}",
        reporter.table(
            "Figure 11 — static slice size as invariants are added",
            &[
                "bench",
                "base static",
                "+unreachable-code",
                "+callee-sets",
                "+call-contexts",
            ],
            &rows
        )
    );
    reporter.finish();
}

/// Context-insensitive measurement for the pre-context ablation steps.
fn best_slice_ci(
    program: &Program,
    inv: &InvariantSet,
    cfg: &oha_core::PipelineConfig,
    endpoints: &[oha_ir::InstId],
) -> (usize, &'static str) {
    let pt = analyze(
        program,
        &PointsToConfig {
            sensitivity: Sensitivity::ContextInsensitive,
            invariants: Some(inv),
            clone_budget: cfg.ctx_budget,
            solver_budget: cfg.solver_budget,
            ..Default::default()
        },
    )
    .expect("CI completes");
    let s = slice(
        program,
        &pt,
        endpoints,
        &SliceConfig {
            sensitivity: Sensitivity::ContextInsensitive,
            invariants: Some(inv),
            ctx_budget: cfg.ctx_budget,
            visit_budget: cfg.visit_budget,
            ..Default::default()
        },
    )
    .expect("CI completes");
    (s.len(), "CI")
}
