//! Table 2: OptSlice end-to-end analysis costs — the most accurate
//! analysis type (CS/CI) that completes for the sound and predicated sides,
//! their times, profiling time, break-even baseline-time and dynamic
//! speedup.

use std::time::Duration;

use oha_bench::{fmt_break_even, fmt_dur, optslice_config, params, pipeline, Reporter};
use oha_core::{break_even_seconds, CostModel};
use oha_pointsto::Sensitivity;
use oha_workloads::c_suite;

fn at(s: Sensitivity) -> &'static str {
    match s {
        Sensitivity::ContextSensitive => "CS",
        Sensitivity::ContextInsensitive => "CI",
    }
}

fn main() {
    let params = params();
    let mut reporter = Reporter::new("table2_optslice_endtoend");
    let mut rows = Vec::new();
    let results = reporter.run_workloads_parallel(c_suite::all(&params), |w| {
        let outcome = pipeline(w, optslice_config()).run_optslice(
            &w.profiling_inputs,
            &w.testing_inputs,
            &w.endpoints,
        );
        (outcome.report.clone(), outcome)
    });
    for (w, outcome) in &results {
        let sum = |f: &dyn Fn(&oha_core::OptSliceRun) -> Duration| -> Duration {
            outcome.runs.iter().map(f).sum()
        };
        let baseline = sum(&|r| r.baseline);
        let hybrid = CostModel::new(
            outcome.sound.points_to_time + outcome.sound.slice_time,
            sum(&|r| r.hybrid),
            baseline,
        );
        let opt = CostModel::new(
            outcome.profile_time + outcome.pred.points_to_time + outcome.pred.slice_time,
            sum(&|r| r.optimistic + r.rollback),
            baseline,
        );
        rows.push(vec![
            format!("{} ({})", w.name, w.program.num_insts()),
            at(outcome.sound.points_to_at).into(),
            fmt_dur(outcome.sound.points_to_time),
            at(outcome.sound.slice_at).into(),
            fmt_dur(outcome.sound.slice_time),
            fmt_dur(outcome.profile_time),
            at(outcome.pred.points_to_at).into(),
            fmt_dur(outcome.pred.points_to_time),
            at(outcome.pred.slice_at).into(),
            fmt_dur(outcome.pred.slice_time),
            fmt_break_even(break_even_seconds(&opt, &hybrid)),
            format!("{:.1}x", outcome.speedup_vs_hybrid()),
        ]);
    }
    println!("Table 2 — OptSlice end-to-end analysis times\n");
    println!(
        "{}",
        reporter.table(
            "Table 2 — OptSlice end-to-end analysis times",
            &[
                "bench (insts)",
                "trad-pt AT",
                "time",
                "trad-slice AT",
                "time",
                "profiling",
                "opt-pt AT",
                "time",
                "opt-slice AT",
                "time",
                "break-even",
                "dyn speedup",
            ],
            &rows,
        )
    );
    reporter.finish();
}
