//! Figure 7: mis-speculation rate as a function of profiling effort.
//!
//! For growing prefixes of the profiling corpus, merge the likely
//! invariants, then check every testing execution against them; a run with
//! any violation would roll back. Most benchmarks converge to ~0% quickly;
//! `go` (long-tailed move distribution) and `vim` converge slowly — the
//! paper's observation.

use oha_bench::{optslice_config, params, Reporter};
use oha_core::Pipeline;
use oha_interp::Machine;
use oha_invariants::{ChecksEnabled, InvariantChecker};
use oha_workloads::{c_suite, WorkloadParams};

fn main() {
    let params = WorkloadParams {
        num_profiling: 32,
        ..params()
    };
    let ks = [1usize, 2, 4, 8, 16, 32];
    let mut reporter = Reporter::new("fig7_misspeculation");
    let results = reporter.run_workloads_parallel(c_suite::all(&params), |w| {
        let pipeline = Pipeline::new(w.program.clone()).with_config(optslice_config());
        let machine = Machine::new(&w.program, optslice_config().machine);
        let mut row = vec![w.name.to_string()];
        for &k in &ks {
            let (inv, ptime) = pipeline.profile(&w.profiling_inputs[..k]);
            let missed = w
                .testing_inputs
                .iter()
                .filter(|input| {
                    let mut checker =
                        InvariantChecker::new(&w.program, &inv, ChecksEnabled::for_optslice());
                    machine.run(input, &mut checker);
                    checker.is_violated()
                })
                .count();
            let rate = missed as f64 / w.testing_inputs.len() as f64;
            pipeline.metrics().push_series("misspec_rate", rate * 100.0);
            row.push(format!(
                "{:.0}% ({:.0}ms)",
                rate * 100.0,
                ptime.as_secs_f64() * 1e3
            ));
        }
        (pipeline.metrics().report(w.name), row)
    });
    let rows: Vec<Vec<String>> = results.into_iter().map(|(_, row)| row).collect();
    println!("Figure 7 — mis-speculation rate vs profiling runs (profiling time in parens)\n");
    let headers: Vec<String> = std::iter::once("bench".to_string())
        .chain(ks.iter().map(|k| format!("{k} runs")))
        .collect();
    let href: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!(
        "{}",
        reporter.table(
            "Figure 7 — mis-speculation rate vs profiling runs",
            &href,
            &rows
        )
    );
    reporter.finish();
}
