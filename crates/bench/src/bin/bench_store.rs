//! Store and daemon benchmark (the tentpole's headline numbers, written
//! to `BENCH_store.json` by `scripts/bench_store.sh`).
//!
//! Two experiments:
//!
//! * **cold vs. warm** — each workload's pipeline end-to-end, first
//!   against an empty artifact store (profiling + predicated static
//!   analysis paid in full), then again with the store populated (static
//!   phases loaded from disk, only the speculative dynamic phase runs).
//!   Measured twice per workload: over the full testing corpus
//!   (`corpus=full`, the cache amortized across every dynamic run) and
//!   over a single testing input (`corpus=single`) — the interactive
//!   re-analysis case the store exists for, where time-to-answer is
//!   profiling + static cold but only one speculative run warm.
//! * **daemon** — N concurrent clients against one `oha-serve` instance:
//!   a first round where every client pays for (or piggybacks on) the
//!   cold compute, and a second round answered from the in-memory LRU
//!   front.
//!
//! Both experiments assert nothing; the numbers land in the report and
//! `ci.sh`'s store-smoke stage enforces the byte-identity contract.

use std::fs;
use std::path::Path;
use std::thread;
use std::time::{Duration, Instant};

use oha_bench::{fmt_dur, optslice_config, params, smoke_mode, Reporter};
use oha_core::{Pipeline, PipelineConfig, StoreConfig};
use oha_ir::print_program;
use oha_serve::{Client, Server, ServerConfig, Tool};
use oha_workloads::{c_suite, java_suite, Workload};

/// Concurrent daemon clients (the CI smoke uses the same count).
const CLIENTS: usize = 8;

struct ColdWarm {
    workload: &'static str,
    tool: &'static str,
    corpus: &'static str,
    cold: Duration,
    warm: Duration,
}

impl ColdWarm {
    fn speedup(&self) -> f64 {
        if self.warm.is_zero() {
            0.0
        } else {
            self.cold.as_secs_f64() / self.warm.as_secs_f64()
        }
    }
}

fn store_config(dir: &Path) -> PipelineConfig {
    PipelineConfig {
        store: Some(StoreConfig::new(dir.to_path_buf())),
        ..optslice_config()
    }
}

/// Runs one workload's pipeline end-to-end against `dir`, returning the
/// wall time.
fn run_once(w: &Workload, tool: &str, testing: &[Vec<i64>], dir: &Path) -> Duration {
    let pipeline = Pipeline::new(w.program.clone()).with_config(store_config(dir));
    let start = Instant::now();
    match tool {
        "optft" => {
            pipeline.run_optft(&w.profiling_inputs, testing);
        }
        _ => {
            pipeline.run_optslice(&w.profiling_inputs, testing, &w.endpoints);
        }
    }
    start.elapsed()
}

fn cold_warm(w: &Workload, tool: &'static str, corpus: &'static str, scratch: &Path) -> ColdWarm {
    let testing: &[Vec<i64>] = if corpus == "single" {
        &w.testing_inputs[..1]
    } else {
        &w.testing_inputs
    };
    let dir = scratch.join(format!("{}-{tool}-{corpus}", w.name));
    let _ = fs::remove_dir_all(&dir);
    let cold = run_once(w, tool, testing, &dir);
    let warm = run_once(w, tool, testing, &dir);
    let _ = fs::remove_dir_all(&dir);
    ColdWarm {
        workload: w.name,
        tool,
        corpus,
        cold,
        warm,
    }
}

/// One daemon, `CLIENTS` concurrent clients, two rounds of the same
/// OptSlice request: round 1 is the cold compute, round 2 the LRU front.
fn daemon_rounds(w: &Workload, scratch: &Path) -> (Duration, Duration) {
    let dir = scratch.join("daemon");
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let server = Server::bind(ServerConfig {
        socket: dir.join("bench.sock"),
        store_dir: Some(dir.join("store")),
        ..ServerConfig::default()
    })
    .expect("bind bench daemon");
    let socket = server.socket().to_path_buf();
    let server_thread = thread::spawn(move || server.run().expect("daemon run"));
    let text = print_program(&w.program);
    let endpoints: Vec<u32> = w.endpoints.iter().map(|e| e.raw()).collect();

    let round = || {
        let start = Instant::now();
        thread::scope(|scope| {
            for _ in 0..CLIENTS {
                let (socket, text, w, endpoints) = (&socket, &text, w, &endpoints);
                scope.spawn(move || {
                    let mut client = Client::connect(socket).expect("connect");
                    let response = client
                        .analyze(
                            Tool::OptSlice,
                            text,
                            &w.profiling_inputs,
                            &w.testing_inputs,
                            endpoints,
                        )
                        .expect("analyze");
                    assert!(response.ok, "{}", response.body);
                });
            }
        });
        start.elapsed()
    };
    let cold_round = round();
    let lru_round = round();

    Client::connect(&socket)
        .expect("connect")
        .shutdown()
        .expect("shutdown");
    server_thread.join().unwrap();
    let _ = fs::remove_dir_all(&dir);
    (cold_round, lru_round)
}

fn main() {
    let mut reporter = Reporter::new("bench_store");
    let params = params();
    reporter.meta("smoke", smoke_mode());
    reporter.meta("clients", CLIENTS);

    let scratch = std::env::temp_dir().join(format!("oha-bench-store-{}", std::process::id()));
    let _ = fs::remove_dir_all(&scratch);
    fs::create_dir_all(&scratch).unwrap();

    // The store pays off where the static phase dominates: the wide-
    // context C-suite workloads, plus one Java workload for breadth.
    let picks: Vec<(Workload, &[&'static str])> = vec![
        (c_suite::vim(&params), &["optslice", "optft"]),
        (c_suite::nginx(&params), &["optslice"]),
        (c_suite::redis(&params), &["optslice"]),
        (java_suite::all(&params).swap_remove(0), &["optft"]),
    ];

    let mut rows = Vec::new();
    let mut qualifying = 0usize;
    for (w, tools) in &picks {
        for tool in *tools {
            for corpus in ["full", "single"] {
                eprintln!("bench_store: {} {tool} ({corpus})", w.name);
                let sample = cold_warm(w, tool, corpus, &scratch);
                if corpus == "single" && sample.speedup() >= 5.0 {
                    qualifying += 1;
                }
                rows.push(vec![
                    sample.workload.to_string(),
                    sample.tool.to_string(),
                    sample.corpus.to_string(),
                    fmt_dur(sample.cold),
                    fmt_dur(sample.warm),
                    format!("{:.2}x", sample.speedup()),
                ]);
                let stem = format!("{}.{}.{}", sample.workload, sample.tool, sample.corpus);
                reporter.meta(
                    &format!("{stem}.cold_s"),
                    format!("{:.6}", sample.cold.as_secs_f64()),
                );
                reporter.meta(
                    &format!("{stem}.warm_s"),
                    format!("{:.6}", sample.warm.as_secs_f64()),
                );
                reporter.meta(
                    &format!("{stem}.speedup"),
                    format!("{:.3}", sample.speedup()),
                );
            }
        }
    }
    reporter.meta("workloads_at_or_above_5x", qualifying);
    print!(
        "{}",
        reporter.table(
            "Cold vs. warm artifact store (end-to-end pipeline)",
            &["workload", "tool", "corpus", "cold", "warm", "speedup"],
            &rows,
        )
    );

    let daemon_w = c_suite::zlib(&params);
    eprintln!("bench_store: daemon {} x{CLIENTS} clients", daemon_w.name);
    let (cold_round, lru_round) = daemon_rounds(&daemon_w, &scratch);
    let daemon_speedup = if lru_round.is_zero() {
        0.0
    } else {
        cold_round.as_secs_f64() / lru_round.as_secs_f64()
    };
    reporter.meta(
        "daemon.cold_round_s",
        format!("{:.6}", cold_round.as_secs_f64()),
    );
    reporter.meta(
        "daemon.lru_round_s",
        format!("{:.6}", lru_round.as_secs_f64()),
    );
    reporter.meta("daemon.speedup", format!("{:.3}", daemon_speedup));
    print!(
        "{}",
        reporter.table(
            "Daemon: 8 concurrent clients, same request twice",
            &["workload", "round 1 (cold)", "round 2 (LRU)", "speedup"],
            &[vec![
                daemon_w.name.to_string(),
                fmt_dur(cold_round),
                fmt_dur(lru_round),
                format!("{daemon_speedup:.2}x"),
            ]],
        )
    );

    let _ = fs::remove_dir_all(&scratch);
    reporter.finish();
}
