//! Figure 1 (quantified): the state-space containment O ⊆ P ⊆ S.
//!
//! The paper's figure is conceptual; here we measure the analysis state
//! space (points-to constraint nodes/edges, constraint-bearing
//! instructions) for the sound analysis (S) and the predicated analysis
//! (O), plus the dynamically exercised instruction count across the whole
//! testing corpus as the proxy for P.

use oha_bench::{params, Reporter};
use oha_core::{state_space, Pipeline};
use oha_interp::{EventCtx, Machine, MachineConfig, Tracer};
use oha_workloads::c_suite;

#[derive(Default)]
struct TouchedInsts(std::collections::HashSet<u32>);

impl Tracer for TouchedInsts {
    fn on_compute(&mut self, ctx: EventCtx) {
        self.0.insert(ctx.inst.raw());
    }
    fn on_load(&mut self, ctx: EventCtx, _a: oha_interp::Addr, _v: oha_interp::Value) {
        self.0.insert(ctx.inst.raw());
    }
    fn on_store(&mut self, ctx: EventCtx, _a: oha_interp::Addr, _v: oha_interp::Value) {
        self.0.insert(ctx.inst.raw());
    }
    fn on_call(&mut self, ctx: EventCtx, _f: oha_ir::FuncId, _fr: oha_interp::FrameId) {
        self.0.insert(ctx.inst.raw());
    }
}

fn main() {
    let params = params();
    let mut reporter = Reporter::new("fig1_statespace");
    let results = reporter.run_workloads_parallel(c_suite::all(&params), |w| {
        let pipeline = Pipeline::new(w.program.clone());
        let (inv, _) = pipeline.profile(&w.profiling_inputs);
        let sound = state_space(&w.program, None);
        let pred = state_space(&w.program, Some(&inv));
        // P-proxy: instructions exercised anywhere in the testing corpus.
        let mut touched = TouchedInsts::default();
        for input in &w.testing_inputs {
            Machine::new(&w.program, MachineConfig::default()).run(input, &mut touched);
        }
        let row = vec![
            w.name.to_string(),
            format!("{} nodes / {} edges", sound.nodes, sound.edges),
            format!("{} insts", w.program.num_insts()),
            format!("{} insts", touched.0.len()),
            format!("{} nodes / {} edges", pred.nodes, pred.edges),
            format!("{} insts", pred.reachable_insts),
        ];
        (pipeline.metrics().report(w.name), row)
    });
    let rows: Vec<Vec<String>> = results.into_iter().map(|(_, row)| row).collect();
    println!("Figure 1 — analysis state spaces: S (sound) ⊇ P (observed) ⊇ O (predicated)\n");
    println!(
        "{}",
        reporter.table(
            "Figure 1 — analysis state spaces",
            &[
                "bench",
                "S: constraint graph",
                "S: insts",
                "P: exercised insts",
                "O: constraint graph",
                "O: insts",
            ],
            &rows
        )
    );
    reporter.finish();
}
