//! Figure 6: normalized runtimes of the traditional hybrid slicer versus
//! OptSlice over the C-suite stand-ins, with the OptSlice bar decomposed
//! into baseline execution / invariant checks / slicing instrumentation /
//! rollbacks.

use oha_bench::{mean, optslice_config, params, pipeline, Reporter};
use oha_workloads::c_suite;

fn main() {
    let params = params();
    let mut reporter = Reporter::new("fig6_optslice_runtimes");
    let mut rows = Vec::new();
    let mut unequal = 0usize;
    let results = reporter.run_workloads_parallel(c_suite::all(&params), |w| {
        let outcome = pipeline(w, optslice_config()).run_optslice(
            &w.profiling_inputs,
            &w.testing_inputs,
            &w.endpoints,
        );
        (outcome.report.clone(), outcome)
    });
    for (w, outcome) in &results {
        if !outcome.all_slices_equal() {
            unequal += 1;
        }
        let norm = |f: &dyn Fn(&oha_core::OptSliceRun) -> f64| -> f64 {
            mean(outcome.runs.iter().map(|r| f(r) / r.baseline.as_secs_f64()))
        };
        let hybrid = norm(&|r| r.hybrid.as_secs_f64());
        let opt_total = norm(&|r| (r.optimistic + r.rollback).as_secs_f64());
        let inv_checks = norm(&|r| r.checker_only.saturating_sub(r.baseline).as_secs_f64());
        let rollbacks = norm(&|r| r.rollback.as_secs_f64());
        let tracing = (opt_total - 1.0 - inv_checks - rollbacks).max(0.0);
        let speedup = outcome.speedup_vs_hybrid();
        rows.push(vec![
            w.name.to_string(),
            format!("{hybrid:.2}"),
            format!("{opt_total:.2}"),
            format!("{inv_checks:.2}"),
            format!("{tracing:.2}"),
            format!("{rollbacks:.2}"),
            format!("{:.0}%", outcome.misspeculation_rate() * 100.0),
            format!("{speedup:.1}x"),
        ]);
    }
    println!("Figure 6 — normalized runtimes (baseline execution = 1.0)\n");
    println!(
        "{}",
        reporter.table(
            "Figure 6 — normalized runtimes (baseline execution = 1.0)",
            &[
                "bench",
                "Trad. Hybrid",
                "OptSlice",
                "  inv-checks",
                "  tracing",
                "  rollbacks",
                "misspec",
                "dyn speedup",
            ],
            &rows,
        )
    );
    println!(
        "soundness: final slices equal on {}/{} benchmarks",
        rows.len() - unequal,
        rows.len()
    );
    reporter.meta("suite", "c");
    reporter.meta("unequal_slices", unequal);
    reporter.finish();
    assert_eq!(unequal, 0, "OptSlice diverged from the hybrid slicer");
}
