//! Figure 10: static slice sizes (in instructions), sound versus
//! predicated slicer — the paper reports one to two orders of magnitude of
//! reduction.

use oha_bench::{optslice_config, params, pipeline, Reporter};
use oha_workloads::c_suite;

fn main() {
    let params = params();
    let mut reporter = Reporter::new("fig10_slice_sizes");
    let mut rows = Vec::new();
    let results = reporter.run_workloads_parallel(c_suite::all(&params), |w| {
        let outcome =
            pipeline(w, optslice_config()).run_optslice(&w.profiling_inputs, &[], &w.endpoints);
        (outcome.report.clone(), outcome)
    });
    for (w, outcome) in &results {
        rows.push(vec![
            w.name.to_string(),
            w.program.num_insts().to_string(),
            outcome.sound.slice_size.to_string(),
            outcome.pred.slice_size.to_string(),
            format!(
                "{:.1}x",
                outcome.sound.slice_size as f64 / (outcome.pred.slice_size.max(1)) as f64
            ),
        ]);
    }
    println!("Figure 10 — static slice sizes (instructions)\n");
    println!(
        "{}",
        reporter.table(
            "Figure 10 — static slice sizes (instructions)",
            &[
                "bench",
                "program",
                "base static",
                "optimistic static",
                "reduction"
            ],
            &rows
        )
    );
    reporter.finish();
}
