//! Extension experiment (paper §2.1's untaken trade-off): *aggressive*
//! likely invariants that assume away behaviour seen in only a small
//! fraction of profiling runs. "This stronger, but less stable invariant
//! may result in significant reduction in dynamic checks, but increase the
//! chance of invariant violations."
//!
//! For each support threshold we report the predicated static slice size
//! (strength) and the testing-corpus mis-speculation rate (stability).

use oha_bench::{optslice_config, params, Reporter};
use oha_interp::Machine;
use oha_invariants::{ChecksEnabled, InvariantChecker, InvariantSet, ProfileTracer};
use oha_pointsto::{analyze, PointsToConfig, Sensitivity};
use oha_slicing::{slice, SliceConfig};
use oha_workloads::{c_suite, WorkloadParams};

fn main() {
    let params = WorkloadParams {
        num_profiling: 32,
        ..params()
    };
    let cfg = optslice_config();
    let thresholds = [0.0, 0.1, 0.25, 0.5];
    let mut reporter = Reporter::new("ext_aggressive_invariants");
    let mut rows = Vec::new();
    for w in c_suite::all(&params) {
        let machine = Machine::new(&w.program, cfg.machine);
        let profiles: Vec<_> = w
            .profiling_inputs
            .iter()
            .map(|input| {
                let mut t = ProfileTracer::new(&w.program);
                machine.run(input, &mut t);
                t.into_profile()
            })
            .collect();
        let mut row = vec![w.name.to_string()];
        for &th in &thresholds {
            let inv = InvariantSet::from_profiles_with_threshold(&profiles, th);
            let pt = analyze(
                &w.program,
                &PointsToConfig {
                    sensitivity: Sensitivity::ContextInsensitive,
                    invariants: Some(&inv),
                    clone_budget: cfg.ctx_budget,
                    solver_budget: cfg.solver_budget,
                    ..Default::default()
                },
            )
            .expect("CI completes");
            let sl = slice(
                &w.program,
                &pt,
                &w.endpoints,
                &SliceConfig {
                    sensitivity: Sensitivity::ContextInsensitive,
                    invariants: Some(&inv),
                    ctx_budget: cfg.ctx_budget,
                    visit_budget: cfg.visit_budget,
                    ..Default::default()
                },
            )
            .expect("CI completes");
            let missed = w
                .testing_inputs
                .iter()
                .filter(|input| {
                    let mut checker =
                        InvariantChecker::new(&w.program, &inv, ChecksEnabled::for_optslice());
                    machine.run(input, &mut checker);
                    checker.is_violated()
                })
                .count();
            let rate = 100.0 * missed as f64 / w.testing_inputs.len() as f64;
            let reachable = w
                .program
                .inst_ids()
                .filter(|&i| inv.is_visited(w.program.loc(i).block))
                .count();
            row.push(format!("{reachable} / {} / {rate:.0}%", sl.len()));
        }
        rows.push(row);
    }
    println!("Extension — aggressive invariants: slice size / mis-speculation rate per support threshold\n");
    let headers: Vec<String> = std::iter::once("bench".to_string())
        .chain(thresholds.iter().map(|t| format!("support>{t}")))
        .collect();
    let href: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!(
        "{}",
        reporter.table("Extension — aggressive invariants", &href, &rows)
    );
    println!("(cells: assumed-reachable insts / predicated slice size / mis-speculation rate)");
    println!("Strength grows (reachable insts shrink) with the threshold; stability decays.");
    reporter.finish();
}
