//! Fault-injection overhead benchmark (written to `BENCH_faults.json`
//! by `scripts/bench_faults.sh`).
//!
//! Three configurations of the same warm-store OptSlice run:
//!
//! * **off** — `FaultPlan::disabled()`, the production default. Every
//!   fault site is a single `Option` branch.
//! * **armed-zero** — a plan parsed from `seed=1; rate=0.0`: every site
//!   rolls the deterministic hash but nothing ever fires. The gap to
//!   *off* is the full cost of arming the substrate.
//! * **1% faults** — read/write errors, short writes, and corruption
//!   each at 1%. The store detects every injected failure and falls
//!   back to recompute, so results stay byte-identical; the slowdown is
//!   the price of the recovery paths.
//!
//! The bench asserts nothing (CI's chaos stage enforces the
//! correctness contract); it reports wall times, the off→armed
//! overhead, the 1% slowdown, per-site injection counters, and whether
//! the faulty runs stayed byte-identical to the clean oracle.

use std::fs;
use std::path::Path;
use std::time::{Duration, Instant};

use oha_bench::{fmt_dur, optslice_config, params, smoke_mode, Reporter};
use oha_core::{optslice_canonical_json, Pipeline, PipelineConfig, StoreConfig};
use oha_faults::FaultPlan;
use oha_workloads::{c_suite, Workload};

/// Timed warm iterations per configuration.
fn iters() -> usize {
    if smoke_mode() {
        3
    } else {
        12
    }
}

fn config(dir: &Path, faults: FaultPlan) -> PipelineConfig {
    PipelineConfig {
        store: Some(StoreConfig::new(dir.to_path_buf())),
        faults,
        ..optslice_config()
    }
}

/// One OptSlice run against `dir` under `plan`; returns (wall time,
/// canonical result JSON).
fn run_once(w: &Workload, dir: &Path, plan: FaultPlan) -> (Duration, String) {
    let pipeline = Pipeline::new(w.program.clone()).with_config(config(dir, plan));
    let start = Instant::now();
    let out = pipeline.run_optslice(&w.profiling_inputs, &w.testing_inputs, &w.endpoints);
    (start.elapsed(), optslice_canonical_json(&out))
}

/// Warm-run mean under `plan`, plus whether every run matched `oracle`.
fn measure(w: &Workload, dir: &Path, plan: &FaultPlan, oracle: &str) -> (Duration, bool) {
    let n = iters();
    let mut total = Duration::ZERO;
    let mut identical = true;
    for _ in 0..n {
        let (elapsed, json) = run_once(w, dir, plan.clone());
        total += elapsed;
        identical &= json == oracle;
    }
    (total / n as u32, identical)
}

fn ratio(num: Duration, den: Duration) -> f64 {
    if den.is_zero() {
        0.0
    } else {
        num.as_secs_f64() / den.as_secs_f64()
    }
}

fn main() {
    let mut reporter = Reporter::new("bench_faults");
    let params = params();
    reporter.meta("smoke", smoke_mode());
    reporter.meta("iters", iters());

    let scratch = std::env::temp_dir().join(format!("oha-bench-faults-{}", std::process::id()));
    let _ = fs::remove_dir_all(&scratch);
    fs::create_dir_all(&scratch).unwrap();

    let w = c_suite::zlib(&params);
    let dir = scratch.join(w.name);

    // Populate the store once (cold), then take the oracle from a clean
    // warm run: every timed iteration below is the warm read path.
    let (cold, _) = run_once(&w, &dir, FaultPlan::disabled());
    let (_, oracle) = run_once(&w, &dir, FaultPlan::disabled());
    reporter.meta("cold_s", format!("{:.6}", cold.as_secs_f64()));

    let armed_zero = FaultPlan::parse("seed=1; rate=0.0").expect("zero-rate plan");
    let one_percent = FaultPlan::parse(
        "seed=7; delay_ms=1; \
         store.read.error=0.01; store.read.corrupt=0.01; \
         store.write.error=0.01; store.write.short=0.01",
    )
    .expect("1% plan");

    eprintln!(
        "bench_faults: {} x{} warm iterations per config",
        w.name,
        iters()
    );
    let (off, off_ok) = measure(&w, &dir, &FaultPlan::disabled(), &oracle);
    let (zero, zero_ok) = measure(&w, &dir, &armed_zero, &oracle);
    let (faulty, faulty_ok) = measure(&w, &dir, &one_percent, &oracle);

    let armed_overhead = ratio(zero, off);
    let faulty_slowdown = ratio(faulty, off);
    reporter.meta("off_warm_s", format!("{:.6}", off.as_secs_f64()));
    reporter.meta("armed_zero_warm_s", format!("{:.6}", zero.as_secs_f64()));
    reporter.meta("faulty_1pct_warm_s", format!("{:.6}", faulty.as_secs_f64()));
    reporter.meta("armed_zero_overhead", format!("{armed_overhead:.3}"));
    reporter.meta("faulty_1pct_slowdown", format!("{faulty_slowdown:.3}"));
    reporter.meta("bytes_identical", off_ok && zero_ok && faulty_ok);
    reporter.meta("rolls_total", one_percent.rolls().values().sum::<u64>());
    reporter.meta("injected_total", one_percent.total_injected());
    for (site, count) in one_percent.injected() {
        reporter.meta(&format!("injected.{site}"), count);
    }

    print!(
        "{}",
        reporter.table(
            "Warm-store OptSlice latency under fault injection",
            &["config", "warm mean", "vs off", "bytes identical"],
            &[
                vec![
                    "off".into(),
                    fmt_dur(off),
                    "1.00x".into(),
                    off_ok.to_string(),
                ],
                vec![
                    "armed (rate=0)".into(),
                    fmt_dur(zero),
                    format!("{armed_overhead:.2}x"),
                    zero_ok.to_string(),
                ],
                vec![
                    "1% store faults".into(),
                    fmt_dur(faulty),
                    format!("{faulty_slowdown:.2}x"),
                    faulty_ok.to_string(),
                ],
            ],
        )
    );

    let _ = fs::remove_dir_all(&scratch);
    reporter.finish();
}
