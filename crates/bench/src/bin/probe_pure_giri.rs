//! Why the paper "does not compare to purely dynamic Giri": its trace grows
//! with every register-level event. This probe runs the fully-dynamic
//! slicer under a fixed trace budget on each C benchmark and reports how
//! little of each execution fits, versus what the hybrid tools trace.

use oha_bench::{params, Reporter};
use oha_giri::GiriTool;
use oha_interp::{Machine, MachineConfig};
use oha_workloads::c_suite;

fn main() {
    let params = params();
    const BUDGET: u64 = 10_000;
    let mut reporter = Reporter::new("probe_pure_giri");
    let mut rows = Vec::new();
    for w in c_suite::all(&params) {
        let machine = Machine::new(&w.program, MachineConfig::default());
        let input = &w.testing_inputs[0];
        let mut unbounded = GiriTool::full(&w.program);
        let r = machine.run(input, &mut unbounded);
        let mut bounded = GiriTool::full(&w.program).with_event_budget(BUDGET);
        machine.run(input, &mut bounded);
        rows.push(vec![
            w.name.to_string(),
            r.steps.to_string(),
            unbounded.trace_len().to_string(),
            if bounded.is_exhausted() {
                format!("exhausted at {BUDGET}")
            } else {
                "fits".to_string()
            },
        ]);
    }
    println!("Pure dynamic Giri: trace events per execution (one testing input each)\n");
    println!(
        "{}",
        reporter.table(
            "Pure dynamic Giri: trace events per execution",
            &[
                "bench",
                "steps",
                "trace events (unbounded)",
                "10k-event budget"
            ],
            &rows
        )
    );
    println!("\nThe trace grows linearly with execution length — at the paper's");
    println!("weeks-of-computation scale this is the \"exhausts system resources\"");
    println!("baseline; the hybrid tools bound tracing by the static slice instead.");
    reporter.finish();
}
