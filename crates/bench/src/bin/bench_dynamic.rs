//! Dynamic-phase probe: times OptFT's dynamic phase with the fast path
//! (compiled instrumentation plans + dense shadow memory) against the
//! reference configuration (plan-off dispatch, spill-map-only shadow
//! state), per workload. This is the driver behind
//! `scripts/bench_dynamic.sh` (which wraps the output with host metadata
//! into `BENCH_dynamic.json`).
//!
//! Both configurations run in the same process on the same inputs, and the
//! canonical (timing-free) OptFT results must be byte-identical — the
//! probe aborts otherwise, so every committed measurement doubles as an
//! equivalence check.
//!
//! Per workload the probe reports the total hook events the speculative
//! machine observed (dispatched + plan-elided — a property of the
//! execution, identical across modes) and the per-mode dynamic times
//! summed over the testing corpus: full FastTrack, hybrid FastTrack, the
//! optimistic speculative run, and the end-to-end dynamic-phase span.
//!
//! The dynamic phases run in tens of milliseconds, so a single
//! back-to-back pair is at the mercy of scheduler noise. Each workload
//! therefore runs `OHA_DYN_REPS` (default 5) *interleaved*
//! reference/fast repetitions — interleaving exposes both modes to the
//! same thermal and cache drift — and reports the per-mode minimum,
//! the standard estimator for the noise floor of short benchmarks.

use std::time::Duration;

use oha_core::{optft_canonical_json, OptFtRun, Pipeline};
use oha_interp::fastpath;
use oha_workloads::{c_suite, java_suite, Workload};

/// Every hook counter the machine publishes under `optft.spec.hook.*`.
const HOOKS: [&str; 13] = [
    "load",
    "store",
    "lock",
    "unlock",
    "spawn",
    "join",
    "thread_exit",
    "block_enter",
    "call",
    "return",
    "input",
    "output",
    "compute",
];

struct ModeSample {
    events: u64,
    full_s: f64,
    hybrid_s: f64,
    optimistic_s: f64,
    dynamic_s: f64,
    canonical: String,
}

fn sum_runs(runs: &[OptFtRun], f: impl Fn(&OptFtRun) -> Duration) -> f64 {
    runs.iter().map(f).sum::<Duration>().as_secs_f64()
}

/// One full OptFT pipeline pass with the fast path forced on or off.
fn run_mode(w: &Workload, fast: bool) -> ModeSample {
    fastpath::force(Some(fast));
    let pipeline = Pipeline::new(w.program.clone());
    let outcome = pipeline.run_optft(&w.profiling_inputs, &w.testing_inputs);
    let registry = pipeline.metrics();
    let events = HOOKS
        .iter()
        .map(|h| registry.counter_value(&format!("optft.spec.hook.{h}")))
        .sum();
    let dynamic_s = registry
        .span_stat("optft/dynamic")
        .map(|s| s.total.as_secs_f64())
        .unwrap_or(0.0);
    let sample = ModeSample {
        events,
        full_s: sum_runs(&outcome.runs, |r| r.full),
        hybrid_s: sum_runs(&outcome.runs, |r| r.hybrid),
        optimistic_s: sum_runs(&outcome.runs, |r| r.optimistic + r.rollback),
        dynamic_s,
        canonical: optft_canonical_json(&outcome),
    };
    fastpath::force(None);
    sample
}

/// Folds repetitions into their per-field minimum — times only; events
/// and canonical bytes are asserted identical across repetitions first.
fn min_over(samples: &[ModeSample]) -> ModeSample {
    let min = |f: fn(&ModeSample) -> f64| samples.iter().map(f).fold(f64::INFINITY, f64::min);
    ModeSample {
        events: samples[0].events,
        full_s: min(|s| s.full_s),
        hybrid_s: min(|s| s.hybrid_s),
        optimistic_s: min(|s| s.optimistic_s),
        dynamic_s: min(|s| s.dynamic_s),
        canonical: samples[0].canonical.clone(),
    }
}

fn main() {
    let json = oha_bench::bench_args().json;
    let params = oha_bench::params();
    let reps: usize = std::env::var("OHA_DYN_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(5);
    let workloads: Vec<Workload> = java_suite::all(&params)
        .into_iter()
        .chain(c_suite::all(&params))
        .collect();

    let mut entries = Vec::new();
    for w in &workloads {
        eprintln!("bench_dynamic: {} ({reps} interleaved reps)", w.name);
        let mut ref_samples = Vec::with_capacity(reps);
        let mut fast_samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let reference = run_mode(w, false);
            let fast = run_mode(w, true);
            if reference.canonical != fast.canonical
                || ref_samples
                    .first()
                    .is_some_and(|first: &ModeSample| first.canonical != reference.canonical)
            {
                eprintln!(
                    "error: {}: fast path diverged from the reference (canonical JSON mismatch)",
                    w.name
                );
                std::process::exit(1);
            }
            if reference.events != fast.events {
                eprintln!(
                    "error: {}: hook event totals diverged ({} reference vs {} fast)",
                    w.name, reference.events, fast.events
                );
                std::process::exit(1);
            }
            ref_samples.push(reference);
            fast_samples.push(fast);
        }
        let reference = min_over(&ref_samples);
        let fast = min_over(&fast_samples);
        entries.push(format!(
            concat!(
                "    {{\"workload\": \"{}\", \"events\": {}, ",
                "\"full_ref_s\": {:.6}, \"full_fast_s\": {:.6}, ",
                "\"hybrid_ref_s\": {:.6}, \"hybrid_fast_s\": {:.6}, ",
                "\"optimistic_ref_s\": {:.6}, \"optimistic_fast_s\": {:.6}, ",
                "\"dynamic_ref_s\": {:.6}, \"dynamic_fast_s\": {:.6}}}"
            ),
            w.name,
            reference.events,
            reference.full_s,
            fast.full_s,
            reference.hybrid_s,
            fast.hybrid_s,
            reference.optimistic_s,
            fast.optimistic_s,
            reference.dynamic_s,
            fast.dynamic_s,
        ));
    }
    let report = format!(
        "{{\n  \"samples\": [\n{}\n  ],\n  \"host\": {}\n}}",
        entries.join(",\n"),
        oha_bench::host_json().to_string_compact()
    );
    println!("{report}");
    // `--json` mirrors the stdout object to a file with the same
    // parent-dir creation and diagnostics as every Reporter-based bin.
    if let Some(path) = json {
        if let Err(message) = oha_bench::write_json_report(&path, &report) {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
        eprintln!("wrote JSON report to {}", path.display());
    }
}
