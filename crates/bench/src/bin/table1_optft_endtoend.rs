//! Table 1: OptFT end-to-end analysis costs — static/profiling times,
//! break-even baseline-time versus hybrid and traditional FastTrack, and
//! dynamic speedups. Benchmarks the sound detector proves race-free are
//! skipped, as in the paper.

use std::time::Duration;

use oha_bench::{fmt_break_even, fmt_dur, optft_config, params, traced_pipeline, Reporter};
use oha_core::{break_even_seconds, CostModel};
use oha_workloads::java_suite;

fn main() {
    let params = params();
    let mut reporter = Reporter::new("table1_optft_endtoend");
    let trace = reporter.trace().clone();
    let mut rows = Vec::new();
    let results = reporter.run_workloads_parallel(java_suite::all(&params), |w| {
        let outcome = traced_pipeline(w, optft_config(), &trace)
            .run_optft(&w.profiling_inputs, &w.testing_inputs);
        (outcome.report.clone(), outcome)
    });
    for (w, outcome) in &results {
        if outcome.statically_race_free {
            continue;
        }
        let sum = |f: &dyn Fn(&oha_core::OptFtRun) -> Duration| -> Duration {
            outcome.runs.iter().map(f).sum()
        };
        let baseline = sum(&|r| r.baseline);
        let trad = CostModel::new(Duration::ZERO, sum(&|r| r.full), baseline);
        let hybrid = CostModel::new(outcome.sound_static_time, sum(&|r| r.hybrid), baseline);
        let opt = CostModel::new(
            outcome.profile_time + outcome.pred_static_time,
            sum(&|r| r.optimistic + r.rollback),
            baseline,
        );
        rows.push(vec![
            w.name.to_string(),
            fmt_dur(outcome.sound_static_time),
            fmt_dur(outcome.profile_time),
            fmt_dur(outcome.pred_static_time),
            fmt_break_even(break_even_seconds(&opt, &hybrid)),
            fmt_break_even(break_even_seconds(&opt, &trad)),
            format!("{:.1}x", outcome.speedup_vs_hybrid()),
            format!("{:.1}x", outcome.speedup_vs_full()),
        ]);
    }
    println!("Table 1 — OptFT end-to-end analysis times\n");
    println!(
        "{}",
        reporter.table(
            "Table 1 — OptFT end-to-end analysis times",
            &[
                "bench",
                "trad static",
                "profile",
                "opt static",
                "break-even/hybrid",
                "break-even/trad",
                "speedup/hybrid",
                "speedup/trad",
            ],
            &rows,
        )
    );
    reporter.finish();
}
