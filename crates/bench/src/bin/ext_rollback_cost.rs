//! Rollback-cost experiment: the paper reports roll-back overheads
//! "ranging from 0.0% to 21.9% and averaging 5.7%" (§6.2) on corpora whose
//! executions occasionally violate the assumed invariants. Here each
//! benchmark's testing corpus is salted with its out-of-distribution
//! inputs (cold modes, dead commands, error storms), forcing real
//! mis-speculations, and we report the rollback share of OptFT/OptSlice
//! runtime — and verify the answers still match the baselines.

use oha_bench::{optft_config, optslice_config, params, pipeline, Reporter};
use oha_workloads::{c_suite, java_suite};

fn main() {
    let params = params();
    let mut reporter = Reporter::new("ext_rollback_cost");
    println!("OptFT under adversarial testing inputs\n");
    let mut rows = Vec::new();
    for w in java_suite::all(&params) {
        if w.adversarial_inputs.is_empty() {
            continue;
        }
        let mut testing = w.testing_inputs.clone();
        testing.extend(w.adversarial_inputs.iter().cloned());
        let outcome = pipeline(&w, optft_config()).run_optft(&w.profiling_inputs, &testing);
        reporter.child(&format!("optft/{}", w.name), outcome.report.clone());
        assert_eq!(
            outcome.optimistic_races, outcome.baseline_races,
            "{}: rollback must preserve race equivalence",
            w.name
        );
        let total: f64 = outcome
            .runs
            .iter()
            .map(|r| (r.optimistic + r.rollback).as_secs_f64())
            .sum();
        let rb: f64 = outcome.runs.iter().map(|r| r.rollback.as_secs_f64()).sum();
        rows.push(vec![
            w.name.to_string(),
            format!("{:.0}%", outcome.misspeculation_rate() * 100.0),
            format!("{:.1}%", 100.0 * rb / total.max(1e-12)),
            format!("{:.1}x", outcome.speedup_vs_hybrid()),
            "races equal".into(),
        ]);
    }
    println!(
        "{}",
        reporter.table(
            "OptFT under adversarial testing inputs",
            &[
                "bench",
                "misspec",
                "rollback share",
                "speedup/hybrid",
                "soundness"
            ],
            &rows
        )
    );

    println!("\nOptSlice under adversarial testing inputs\n");
    let mut rows = Vec::new();
    for w in c_suite::all(&params) {
        if w.adversarial_inputs.is_empty() {
            continue;
        }
        let mut testing = w.testing_inputs.clone();
        testing.extend(w.adversarial_inputs.iter().cloned());
        let outcome = pipeline(&w, optslice_config()).run_optslice(
            &w.profiling_inputs,
            &testing,
            &w.endpoints,
        );
        reporter.child(&format!("optslice/{}", w.name), outcome.report.clone());
        assert!(
            outcome.all_slices_equal(),
            "{}: rollback must preserve slice equality",
            w.name
        );
        let total: f64 = outcome
            .runs
            .iter()
            .map(|r| (r.optimistic + r.rollback).as_secs_f64())
            .sum();
        let rb: f64 = outcome.runs.iter().map(|r| r.rollback.as_secs_f64()).sum();
        rows.push(vec![
            w.name.to_string(),
            format!("{:.0}%", outcome.misspeculation_rate() * 100.0),
            format!("{:.1}%", 100.0 * rb / total.max(1e-12)),
            format!("{:.1}x", outcome.speedup_vs_hybrid()),
            "slices equal".into(),
        ]);
    }
    println!(
        "{}",
        reporter.table(
            "OptSlice under adversarial testing inputs",
            &[
                "bench",
                "misspec",
                "rollback share",
                "speedup/hybrid",
                "soundness"
            ],
            &rows
        )
    );
    println!("\nEvery rolled-back run reproduced the baseline answer exactly");
    println!("(replayed schedule + traditional hybrid analysis).");
    reporter.finish();
}
