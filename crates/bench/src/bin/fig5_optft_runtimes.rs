//! Figure 5: normalized runtimes of FastTrack, hybrid FastTrack and OptFT
//! over the Java-suite stand-ins, with the OptFT bar decomposed into
//! framework / invariant checks / FastTrack checks / rollbacks.
//!
//! Benchmarks proven race-free by the *sound* static detector are flagged —
//! they need no dynamic analysis at all (the right side of the paper's
//! figure).

use oha_bench::{mean, optft_config, params, traced_pipeline, Reporter};
use oha_workloads::java_suite;

fn main() {
    let params = params();
    let mut reporter = Reporter::new("fig5_optft_runtimes");
    let trace = reporter.trace().clone();
    let mut rows = Vec::new();
    let mut sound_violations = 0usize;
    let results = reporter.run_workloads_parallel(java_suite::all(&params), |w| {
        let outcome = traced_pipeline(w, optft_config(), &trace)
            .run_optft(&w.profiling_inputs, &w.testing_inputs);
        (outcome.report.clone(), outcome)
    });
    for (w, outcome) in &results {
        if outcome.optimistic_races != outcome.baseline_races {
            sound_violations += 1;
        }
        let norm = |f: &dyn Fn(&oha_core::OptFtRun) -> f64| -> f64 {
            mean(outcome.runs.iter().map(|r| f(r) / r.baseline.as_secs_f64()))
        };
        let full = norm(&|r| r.full.as_secs_f64());
        let hybrid = norm(&|r| r.hybrid.as_secs_f64());
        let opt_total = norm(&|r| (r.optimistic + r.rollback).as_secs_f64());
        // Decomposition of the OptFT bar (all normalized to baseline=1.0).
        let inv_checks = norm(&|r| r.checker_only.saturating_sub(r.baseline).as_secs_f64());
        let rollbacks = norm(&|r| r.rollback.as_secs_f64());
        let ft_checks = (opt_total - 1.0 - inv_checks - rollbacks).max(0.0);

        rows.push(vec![
            w.name.to_string(),
            format!("{full:.2}"),
            format!("{hybrid:.2}"),
            format!("{opt_total:.2}"),
            format!("{inv_checks:.2}"),
            format!("{ft_checks:.2}"),
            format!("{rollbacks:.2}"),
            format!("{:.0}%", outcome.misspeculation_rate() * 100.0),
            if outcome.statically_race_free {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    println!("Figure 5 — normalized runtimes (baseline execution = 1.0)\n");
    println!(
        "{}",
        reporter.table(
            "Figure 5 — normalized runtimes (baseline execution = 1.0)",
            &[
                "bench",
                "FastTrack",
                "Hybrid FT",
                "OptFT",
                "  inv-checks",
                "  FT-checks",
                "  rollbacks",
                "misspec",
                "race-free(static)",
            ],
            &rows,
        )
    );
    println!(
        "soundness: optimistic races == FastTrack races on {}/{} benchmarks",
        rows.len() - sound_violations,
        rows.len()
    );
    reporter.meta("suite", "java");
    reporter.meta("sound_violations", sound_violations);
    reporter.finish();
    assert_eq!(sound_violations, 0, "OptFT diverged from FastTrack");
}
