//! Figure 9: whole-program load/store alias rates, sound ("Base Static")
//! versus predicated ("Optimistic Static") points-to analysis — each side
//! using its most accurate completing configuration.

use oha_bench::{optslice_config, params, pipeline, Reporter};
use oha_workloads::c_suite;

fn main() {
    let params = params();
    let mut reporter = Reporter::new("fig9_alias_rates");
    let mut rows = Vec::new();
    let results = reporter.run_workloads_parallel(c_suite::all(&params), |w| {
        // Static-only invocation: an empty testing corpus skips the dynamic
        // phase but still produces both static side reports.
        let outcome =
            pipeline(w, optslice_config()).run_optslice(&w.profiling_inputs, &[], &w.endpoints);
        (outcome.report.clone(), outcome)
    });
    for (w, outcome) in &results {
        rows.push(vec![
            w.name.to_string(),
            format!("{:.4}", outcome.sound.alias_rate),
            format!("{:.4}", outcome.pred.alias_rate),
            format!(
                "{:.2}x",
                outcome.sound.alias_rate / outcome.pred.alias_rate.max(1e-9)
            ),
        ]);
    }
    println!("Figure 9 — load/store alias rates (probability a load-store pair may alias)\n");
    println!(
        "{}",
        reporter.table(
            "Figure 9 — load/store alias rates",
            &["bench", "base static", "optimistic static", "improvement"],
            &rows
        )
    );
    reporter.finish();
}
