//! Figure 8: predicated static slice size as a function of the number of
//! profiling runs. Sizes grow (more behaviour observed ⇒ fewer assumptions)
//! and flatten once the invariants stabilize; `go`'s long-tailed inputs
//! keep growing longest.
//!
//! Profiling runs once per workload: each run folds into an
//! [`InvariantAccumulator`] whose fact count lands in the registry's
//! `profile.fact_count` series (the same curve
//! `Pipeline::profile_until_stable` records), and the slicer measures the
//! snapshot at the checkpoint run counts — no re-profiling per checkpoint.

use oha_bench::{optslice_config, params, Reporter};
use oha_interp::Machine;
use oha_invariants::{InvariantAccumulator, InvariantSet, ProfileTracer};
use oha_obs::MetricsRegistry;
use oha_par::Pool;
use oha_pointsto::{analyze, PointsToConfig, Sensitivity};
use oha_slicing::{slice, SliceConfig};
use oha_workloads::{c_suite, WorkloadParams};

fn pred_slice_size(w: &oha_workloads::Workload, inv: &InvariantSet) -> usize {
    let cfg = optslice_config();
    // Best-completing predicated analyses, as in the pipeline.
    let pt = analyze(
        &w.program,
        &PointsToConfig {
            sensitivity: Sensitivity::ContextSensitive,
            invariants: Some(inv),
            clone_budget: cfg.ctx_budget,
            solver_budget: cfg.solver_budget,
            ..Default::default()
        },
    )
    .or_else(|_| {
        analyze(
            &w.program,
            &PointsToConfig {
                sensitivity: Sensitivity::ContextInsensitive,
                invariants: Some(inv),
                clone_budget: cfg.ctx_budget,
                solver_budget: cfg.solver_budget,
                ..Default::default()
            },
        )
    })
    .expect("CI points-to completes");
    slice(
        &w.program,
        &pt,
        &w.endpoints,
        &SliceConfig {
            sensitivity: Sensitivity::ContextSensitive,
            invariants: Some(inv),
            ctx_budget: cfg.ctx_budget,
            visit_budget: cfg.visit_budget,
            ..Default::default()
        },
    )
    .or_else(|_| {
        slice(
            &w.program,
            &pt,
            &w.endpoints,
            &SliceConfig {
                sensitivity: Sensitivity::ContextInsensitive,
                invariants: Some(inv),
                ctx_budget: cfg.ctx_budget,
                visit_budget: cfg.visit_budget,
                ..Default::default()
            },
        )
    })
    .expect("CI slicing completes")
    .len()
}

fn main() {
    let params = WorkloadParams {
        num_profiling: 32,
        ..params()
    };
    let cfg = optslice_config();
    let ks = [1usize, 2, 4, 8, 16, 32];
    let mut reporter = Reporter::new("fig8_slice_convergence");
    let results = reporter.run_workloads_parallel(c_suite::all(&params), |w| {
        let registry = MetricsRegistry::new();
        // Profiling runs are independent seeded executions: fan them out on
        // the pool, then fold the profiles into the accumulator in input
        // order (identical curve at any thread count).
        let (program, machine_cfg) = (&w.program, cfg.machine);
        let profiles = Pool::from_env().par_map(&w.profiling_inputs, |input| {
            let mut tracer = ProfileTracer::new(program);
            Machine::new(program, machine_cfg).run(input, &mut tracer);
            tracer.into_profile()
        });
        let mut acc = InvariantAccumulator::new();
        let mut row = vec![w.name.to_string()];
        for (i, profile) in profiles.iter().enumerate() {
            acc.add(profile);
            registry.push_series("profile.fact_count", acc.fact_count() as f64);
            if ks.contains(&(i + 1)) {
                row.push(pred_slice_size(w, &acc.snapshot()).to_string());
            }
        }
        // The convergence curve itself, read back through the registry.
        registry.set_gauge(
            "profile.final_fact_count",
            registry
                .series_values("profile.fact_count")
                .last()
                .copied()
                .unwrap_or(0.0),
        );
        (registry.report(w.name), row)
    });
    let rows: Vec<Vec<String>> = results.into_iter().map(|(_, row)| row).collect();
    println!("Figure 8 — predicated static slice size vs profiling runs\n");
    let headers: Vec<String> = std::iter::once("bench".to_string())
        .chain(ks.iter().map(|k| format!("{k} runs")))
        .collect();
    let href: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!(
        "{}",
        reporter.table(
            "Figure 8 — predicated static slice size vs profiling runs",
            &href,
            &rows
        )
    );
    reporter.finish();
}
