//! Figure 8: predicated static slice size as a function of the number of
//! profiling runs. Sizes grow (more behaviour observed ⇒ fewer assumptions)
//! and flatten once the invariants stabilize; `go`'s long-tailed inputs
//! keep growing longest.

use oha_bench::{optslice_config, params, render_table};
use oha_core::Pipeline;
use oha_pointsto::{analyze, PointsToConfig, Sensitivity};
use oha_slicing::{slice, SliceConfig};
use oha_workloads::{c_suite, WorkloadParams};

fn main() {
    let params = WorkloadParams {
        num_profiling: 32,
        ..params()
    };
    let cfg = optslice_config();
    let ks = [1usize, 2, 4, 8, 16, 32];
    let mut rows = Vec::new();
    for w in c_suite::all(&params) {
        let pipeline = Pipeline::new(w.program.clone()).with_config(cfg);
        let mut row = vec![w.name.to_string()];
        for &k in &ks {
            let (inv, _) = pipeline.profile(&w.profiling_inputs[..k]);
            // Best-completing predicated analyses, as in the pipeline.
            let pt = analyze(
                &w.program,
                &PointsToConfig {
                    sensitivity: Sensitivity::ContextSensitive,
                    invariants: Some(&inv),
                    clone_budget: cfg.ctx_budget,
                    solver_budget: cfg.solver_budget,
                },
            )
            .or_else(|_| {
                analyze(
                    &w.program,
                    &PointsToConfig {
                        sensitivity: Sensitivity::ContextInsensitive,
                        invariants: Some(&inv),
                        clone_budget: cfg.ctx_budget,
                        solver_budget: cfg.solver_budget,
                    },
                )
            })
            .expect("CI points-to completes");
            let sl = slice(
                &w.program,
                &pt,
                &w.endpoints,
                &SliceConfig {
                    sensitivity: Sensitivity::ContextSensitive,
                    invariants: Some(&inv),
                    ctx_budget: cfg.ctx_budget,
                    visit_budget: cfg.visit_budget,
                },
            )
            .or_else(|_| {
                slice(
                    &w.program,
                    &pt,
                    &w.endpoints,
                    &SliceConfig {
                        sensitivity: Sensitivity::ContextInsensitive,
                        invariants: Some(&inv),
                        ctx_budget: cfg.ctx_budget,
                        visit_budget: cfg.visit_budget,
                    },
                )
            })
            .expect("CI slicing completes");
            row.push(sl.len().to_string());
        }
        rows.push(row);
    }
    println!("Figure 8 — predicated static slice size vs profiling runs\n");
    let headers: Vec<String> = std::iter::once("bench".to_string())
        .chain(ks.iter().map(|k| format!("{k} runs")))
        .collect();
    let href: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("{}", render_table(&href, &rows));
}
